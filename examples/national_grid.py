#!/usr/bin/env python3
"""The national-grid test bed: six clusters, one grid-wide fairshare.

Reproduces (by default at reduced scale) the paper's baseline convergence
test: six SLURM-like clusters, each with its own full Aequus stack,
exchanging usage only through their USS services, fed by a submission host
with stochastic dispatch.  Prints a timeline of usage shares and priorities
converging toward the policy targets.

Run:  python examples/national_grid.py [--full]

``--full`` runs the paper's exact scale (43,200 jobs, 6 h, 240 hosts;
takes a few minutes).
"""

import sys

from repro.experiments.scenarios import baseline
from repro.workload.reference import GRID_IDENTITIES


def main() -> None:
    full = "--full" in sys.argv
    if full:
        result = baseline()
    else:
        result = baseline(n_jobs=6000, span=5400.0, seed=7,
                          n_sites=3, hosts_per_site=20)

    print(f"== Scenario: {result.name} ==")
    for row in result.summary_rows():
        print(row)
    print()

    # convergence timeline: share deviation + per-user priorities
    deviation = result.series("share_deviation")
    print("== Timeline (minutes : share deviation : per-user priority) ==")
    labels = list(GRID_IDENTITIES.items())
    header = f"{'min':>5}  {'deviation':>9}  " + "  ".join(
        f"{name:>6}" for name, _ in labels)
    print(header)
    step = max(1, len(deviation.times) // 15)
    for i in range(0, len(deviation.times), step):
        t = deviation.times[i]
        prios = [result.priority_series(dn).at(t) for _, dn in labels]
        print(f"{t / 60:>5.0f}  {deviation.values[i]:>9.4f}  "
              + "  ".join(f"{p:>6.3f}" for p in prios))
    print()
    print("Underserved users carry high priority early; as their usage")
    print("approaches the policy share, priorities settle around balance.")


if __name__ == "__main__":
    main()
