#!/usr/bin/env python3
"""Fleet telemetry: cross-daemon traces, the grid collector, and `top`.

Boots the testbed-in-a-box (three real ``aequus-repro grid-node``
processes exchanging usage over loopback TCP) with the fleet collector
attached, then walks the telemetry plane (DESIGN.md §14) end to end:

* the collector scraping METRICS + INFO + TRACE_EXPORT from every
  daemon each second, merging the Prometheus families under a ``site``
  label and deriving fleet gauges (max cross-site staleness, aggregate
  QPS, per-link frame backlog);
* the **merged Chrome trace**: every daemon's spans drained exactly
  once, shifted onto the shared virtual-epoch timeline, so one
  ``chrome://tracing`` view shows an origin's ``uss.publish`` flowing
  over the framed wire into a remote daemon's ``uss.apply`` →
  ``fcs.refresh`` → ``snapshot.publish`` — a cross-process causal
  chain reconstructed purely from trace-context on the wire;
* a **partition fault** injected through the harness proxies, stamped
  into the same trace as an instant event, with the staleness gauge
  ramping next to it;
* the per-site table behind ``aequus-repro top``, and the JSONL/CSV/
  trace artifacts ``report --grid`` and CI consume.

Run:  python examples/fleet_observability.py
"""

import json
import tempfile
import time
from pathlib import Path

from repro.grid.harness import GridHarness, GridSpec

OUT = Path(tempfile.mkdtemp(prefix="aequus-fleet-"))

spec = GridSpec(sites=3, users=18, usage_jobs=4,
                exchange_interval=0.5, refresh_interval=0.5,
                histogram_interval=5.0)

print(f"booting {spec.sites} grid-node daemons with a fleet collector...")
with GridHarness(spec, collector=True, collector_interval=0.5) as grid:
    grid.wait_converged(max_staleness=5.0, timeout=30.0)
    collector = grid.collector

    # -----------------------------------------------------------------
    # 1. Let the collector watch a healthy fleet for a few beats.
    # -----------------------------------------------------------------
    time.sleep(3.0)
    print("\n== healthy fleet (aequus-repro top view) ==")
    for row in collector.table():
        print(f"  {row['site']}: up={row['up']} "
              f"qps={row['qps']:.1f} frames/s={row['frames_out']:.1f} "
              f"staleness now {row['staleness_now']:.2f}s "
              f"p99 {row['staleness_p99']:.2f}s")
    worst = collector.store["fleet/max_staleness"].last()
    print(f"  fleet max cross-site staleness: {worst[1]:.2f}s")

    # -----------------------------------------------------------------
    # 2. Cut one link; the gauge ramps and the cut lands in the trace.
    # -----------------------------------------------------------------
    print("\npartitioning s0 <-> s1 for a few seconds...")
    grid.partition("s0", "s1")
    time.sleep(3.0)
    ramped = collector.store["fleet/max_staleness"].last()
    grid.heal("s0", "s1")
    print(f"  staleness under partition: {ramped[1]:.2f}s "
          f"(was {worst[1]:.2f}s)")
    grid.wait_converged(max_staleness=5.0, timeout=30.0)
    time.sleep(1.0)

    # -----------------------------------------------------------------
    # 3. The merged trace: one timeline, many processes, causal chains.
    # -----------------------------------------------------------------
    events = collector.events()
    pids = {e["pid"] for e in events if e.get("ph") == "X"}
    faults = [e["name"] for e in events if e.get("ph") == "i"]
    print(f"\n== merged trace: {len(events)} events from "
          f"{len(pids)} processes ==")
    print(f"  fault instants recorded: {faults}")

    # find one complete cross-daemon causal chain by its trace id
    published = {}
    for e in events:
        args = e.get("args") or {}
        if e.get("name") == "uss.publish" and args.get("trace"):
            published[args["trace"]] = e
    for e in events:
        args = e.get("args") or {}
        trace_id = args.get("trace")
        if e.get("name") == "uss.apply" and trace_id in published \
                and e["pid"] != published[trace_id]["pid"]:
            origin = published[trace_id]
            print(f"  causal chain {trace_id}:")
            print(f"    uss.publish   on {origin['args']['site']} "
                  f"(pid {origin['pid']}) at t={origin['ts'] / 1e6:.2f}s")
            print(f"    uss.apply     on {args['site']} "
                  f"(pid {e['pid']}) at t={e['ts'] / 1e6:.2f}s")
            hops = [x for x in events
                    if trace_id in ((x.get("args") or {}).get("traces")
                                    or []) and x["pid"] == e["pid"]]
            for hop in hops[:2]:
                print(f"    {hop['name']:<13} on {hop['args']['site']} "
                      f"(pid {hop['pid']}) at t={hop['ts'] / 1e6:.2f}s")
            break

    # -----------------------------------------------------------------
    # 4. Snapshot the artifacts report --grid and CI upload.
    # -----------------------------------------------------------------
    paths = collector.snapshot(str(OUT / "fleet"))
    print("\n== artifacts ==")
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")
    doc = json.loads(Path(paths["trace"]).read_text())
    print(f"  trace events on the shared timeline: "
          f"{len(doc['traceEvents'])}")
    print(f"\nopen {paths['trace']} in chrome://tracing (or Perfetto) "
          f"to see the fleet flame view.")
