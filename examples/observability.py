#!/usr/bin/env python3
"""Observability: the metrics registry, span tracing, and the METRICS op.

Boots a demo site behind aequusd, drives a little traffic, then shows the
three faces of the obs layer (DESIGN.md Section 9):

* the shared site registry, scraped over the socket with the ``METRICS``
  op (Prometheus text exposition — what ``aequus-repro metrics`` prints);
* the span tracer, whose ring buffer holds every FCS refresh phase as a
  Chrome ``trace_event`` record (load the exported file in Perfetto /
  ``chrome://tracing`` for a flame view);
* the old stats surfaces, which are now *views* over registry metrics —
  same numbers, one source of truth.

Run:  python examples/observability.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import trace
from repro.serve.client import SyncAequusClient
from repro.serve.daemon import build_demo_site, serve_site

# ---------------------------------------------------------------------------
# 1. One site, one registry: build_demo_site wires the network, the five
#    services, and (through serve_site) the TCP server onto a single shared
#    registry, so one scrape covers the whole stack.
# ---------------------------------------------------------------------------
tracer = trace.default_tracer()
tracer.clear()

engine, site = build_demo_site(n_users=2000, site_name="demo", seed=7)
thread = serve_site(site)
print(f"== aequusd serving site {site.name!r} on "
      f"{thread.host}:{thread.port} ==")

client = SyncAequusClient(thread.host, thread.port)
for i in range(50):
    client.lookup_fairshare(f"u{i}")
client.batch([{"op": "GET_FAIRSHARE", "user": f"u{i}"} for i in range(20)])
engine.run_until(engine.now + 2 * site.config.fcs_refresh_interval)

# ---------------------------------------------------------------------------
# 2. Scrape. The METRICS op returns Prometheus text exposition 0.0.4 —
#    server series (requests, latency, connections) and service series
#    (refreshes, exchanges, cache hits) side by side, one label scheme.
# ---------------------------------------------------------------------------
text = client.metrics()
interesting = ("aequus_requests_total", "aequus_fcs_refreshes_total",
               "aequus_uss_exchanges_total", "aequus_cache_lookups_total",
               "aequus_connections_active")
print(f"\n-- scrape excerpt ({len(text.splitlines())} lines total) --")
for line in text.splitlines():
    if line.startswith(interesting):
        print(line)
bucket_lines = [l for l in text.splitlines()
                if l.startswith("aequus_request_seconds_bucket")
                and 'op="GET_FAIRSHARE"' in l]
print(f'... plus {len(bucket_lines)} latency buckets for GET_FAIRSHARE alone')

# ---------------------------------------------------------------------------
# 3. Spans. Every refresh recorded compile/rollup/project children under a
#    fcs.refresh parent; the export is a Chrome-loadable trace document.
# ---------------------------------------------------------------------------
events = tracer.events()
names = sorted({e["name"] for e in events})
print(f"\n-- tracer: {len(events)} spans buffered, names {names} --")
refresh = next(e for e in reversed(events) if e["name"] == "fcs.refresh")
print(f"last fcs.refresh: {refresh['dur']:.0f} us, "
      f"cache={refresh['args'].get('cache')}, id={refresh['args']['id']}")

out = Path(tempfile.gettempdir()) / "aequus_trace.json"
tracer.export_chrome(str(out))
doc = json.loads(out.read_text())
print(f"exported {len(doc['traceEvents'])} events to {out} "
      f"(open in chrome://tracing)")

# ---------------------------------------------------------------------------
# 4. Views. The historical stats APIs read the same registry the scrape
#    renders — no double accounting anywhere.
# ---------------------------------------------------------------------------
print(f"\nfcs.refreshes = {site.fcs.refreshes}  "
      f"(cache: {site.fcs.refresh_stats.hits} hits / "
      f"{site.fcs.refresh_stats.misses} misses)")
print(f"network: {site.network.stats.sent} messages sent, "
      f"{site.network.stats.payload_bytes} payload bytes")

client.close()
thread.stop()
site.stop()
print("\nstopped cleanly")
