#!/usr/bin/env python3
"""Evaluation plane: freshness watermarks and the fairness recorder.

Builds a small 3-site collaboration, lets it reach steady state, injects a
one-sided usage burst, and watches the evaluation plane (DESIGN.md §10)
tell the story:

* per-origin **usage horizons** on every site — how far behind each remote
  site's usage the local fairshare state is (the paper's update delay,
  Fig. 11, live instead of post-hoc);
* **cross-site divergence** — the same user's projected value disagreeing
  across sites right after the burst, then converging as exchanges drain
  the staleness;
* the **convergence half-life** of that disagreement, plus the markdown
  report `aequus-repro report --from` renders from the recorded series.

Run:  python examples/evaluation.py
"""

import tempfile
from pathlib import Path

from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.obs.evaluate import FairnessRecorder, convergence_half_life
from repro.obs.timeseries import SeriesStore
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine

# ---------------------------------------------------------------------------
# 1. A small grid: 3 sites, one shared policy, full-mesh usage exchange.
# ---------------------------------------------------------------------------
engine = SimulationEngine()
network = Network(engine, base_latency=0.1)
policy = PolicyTree.from_dict({
    "hpc": {"alice": 3, "bob": 1},
    "astro": {"carol": 2, "dave": 2},
})
config = SiteConfig(histogram_interval=60.0, uss_exchange_interval=30.0,
                    ums_refresh_interval=10.0, fcs_refresh_interval=10.0)
sites = [AequusSite(f"site{i}", engine, network, policy=policy,
                    config=config) for i in range(3)]
connect_sites(sites)

recorder = FairnessRecorder(sites, interval=10.0)
recorder.attach(engine)
print(f"== {len(sites)} sites, exchange every "
      f"{config.uss_exchange_interval:.0f}s, recorder sampling every "
      f"{recorder.interval:.0f}s ==")

# some balanced background usage, then steady state
for site, user in zip(sites, ("alice", "carol", "dave")):
    site.uss.record_job(UsageRecord(user=user, site=site.name,
                                    start=0.0, end=3600.0))
engine.run_for(600.0)

print("\n-- steady state: per-origin usage horizons at site0 --")
for origin, staleness in sorted(
        sites[0].uss.usage_staleness().items()):
    print(f"  {origin:<6} {staleness:6.1f}s behind "
          f"(bounded by one exchange interval)")

# ---------------------------------------------------------------------------
# 2. Burst: site1 suddenly accounts a huge alice job. Until the next
#    exchanges propagate it, the other sites serve values computed from
#    stale usage — visible as cross-site divergence.
# ---------------------------------------------------------------------------
t_burst = engine.now
sites[1].uss.record_job(UsageRecord(user="alice", site="site1",
                                    start=t_burst, end=t_burst + 50_000.0))
print(f"\n-- t={t_burst:.0f}: 50k core-seconds burst for alice at site1 --")
for step in range(6):
    engine.run_for(20.0)
    div = recorder.divergence().last()[1]
    stale = max(s for site in sites
                for s in site.uss.usage_staleness().values())
    print(f"  t={engine.now:6.0f}  divergence_max={div:.4f}  "
          f"worst_staleness={stale:5.1f}s")
engine.run_for(200.0)

div = recorder.divergence()
half_life = convergence_half_life(div, t_burst)
print(f"\ndivergence peaked at {div.max():.4f}, now {div.last()[1]:.4f}; "
      f"convergence half-life {half_life:.0f}s" if half_life is not None
      else "\nstill converging")

# ---------------------------------------------------------------------------
# 3. The recorded series render as the same report the CLI produces:
#    aequus-repro report --from <file.jsonl>
# ---------------------------------------------------------------------------
out = Path(tempfile.gettempdir()) / "aequus_fairness.jsonl"
rows = recorder.store.to_jsonl(str(out))
print(f"\nexported {rows} samples to {out}")

from repro.obs.evaluate import render_report  # noqa: E402

report = render_report(SeriesStore.from_jsonl(str(out)),
                       title="Example fairness report")
print("\n-- report excerpt --")
for line in report.splitlines():
    if line.startswith(("#", "| divergence", "| distance_mean/site0",
                        "| staleness/site0")):
        print(line)

for site in sites:
    site.stop()
print("\ndone")
