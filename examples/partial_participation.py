#!/usr/bin/env python3
"""Partial cluster participation (paper Section IV-A.4).

One of the sites only *reads* global usage data without contributing
(READ_ONLY — "due to misconfiguration, local policies, or legislation");
another contributes its data but prioritizes on local history only
(LOCAL_ONLY).  The paper's findings, checked here:

* the read-only site's priorities stay well aligned with the fully
  participating sites,
* the local-only site converges toward the same priority levels, but
  slower and with more fluctuation,
* the local-only site's data acts as noise for the others without a
  noticeable impact on global prioritization.

Run:  python examples/partial_participation.py [--full]
"""

import sys

from repro.experiments.scenarios import partial_participation
from repro.workload.reference import GRID_IDENTITIES


def main() -> None:
    if "--full" in sys.argv:
        outcome = partial_participation()
    else:
        outcome = partial_participation(n_jobs=8000, span=7200.0, seed=5,
                                        n_sites=4, hosts_per_site=20)

    result = outcome.result
    print(f"== Scenario: {result.name} ==")
    for row in result.summary_rows():
        print(row)
    print()
    print(f"read-only site : {outcome.read_only_site}")
    print(f"local-only site: {outcome.local_only_site}")
    print(f"full sites     : {', '.join(outcome.full_sites)}")
    print()

    print("== Priority alignment with full sites (mean absolute gap) ==")
    print(f"{'user':<6} {'read-only':>10} {'local-only':>11}")
    for name, dn in GRID_IDENTITIES.items():
        ro = outcome.priority_alignment(dn, outcome.read_only_site)
        lo = outcome.priority_alignment(dn, outcome.local_only_site)
        print(f"{name:<6} {ro:>10.4f} {lo:>11.4f}")
    print()

    print("== Priority fluctuation (mean sample-to-sample change) ==")
    print(f"{'user':<6} {'read-only':>10} {'local-only':>11} {'full-mean':>10}")
    for name, dn in GRID_IDENTITIES.items():
        ro = outcome.fluctuation(dn, outcome.read_only_site)
        lo = outcome.fluctuation(dn, outcome.local_only_site)
        full = sum(outcome.fluctuation(dn, s) for s in outcome.full_sites) \
            / len(outcome.full_sites)
        print(f"{name:<6} {ro:>10.4f} {lo:>11.4f} {full:>10.4f}")
    print()
    print("Expected: read-only gaps ~ full-site noise floor; local-only gaps")
    print("larger, with more fluctuation — but global shares still converge.")


if __name__ == "__main__":
    main()
