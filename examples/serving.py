#!/usr/bin/env python3
"""Serving: aequusd, the query client, and socket-transport libaequus.

Boots a complete site stack (policy, seeded usage, the five services),
puts the aequusd TCP server in front of it, and exercises the serve plane
end to end: single-key reads, atomic batches, identity resolution, usage
reporting that lands at the next exchange tick, snapshot sequence numbers
advancing across an FCS refresh — and finally the unmodified RMS plugin
seams running over the socket through ``LibAequus.over_socket``, plus the
sharded mode: snapshots published into shared memory and served by forked
SO_REUSEPORT workers speaking the binary protocol.

Run:  python examples/serving.py [--workers N]
"""

import argparse
import time

from repro.client.libaequus import LibAequus
from repro.rms.job import Job
from repro.rms.plugins import AequusJobCompletionPlugin, AequusPriorityPlugin
from repro.serve.client import SyncAequusClient
from repro.serve.daemon import build_demo_site, serve_site
from repro.serve.shm import ShmSnapshotWriter
from repro.serve.workers import WorkerPool

args = argparse.ArgumentParser(description=__doc__)
args.add_argument("--workers", type=int, default=2,
                  help="worker processes for the sharded section (default 2)")
args = args.parse_args()

# ---------------------------------------------------------------------------
# 1. A site with 2000 users under a VO -> project -> user hierarchy, usage
#    seeded and refreshed, served on an ephemeral loopback port.
# ---------------------------------------------------------------------------
engine, site = build_demo_site(n_users=2000, site_name="demo", seed=7)
thread = serve_site(site)
print(f"== aequusd serving site {site.name!r} on "
      f"{thread.host}:{thread.port} ==")

client = SyncAequusClient(thread.host, thread.port)

info = client.info()["info"]
print(f"protocol v{client.info()['protocol']}, snapshot seq "
      f"{info['snapshot']['seq']} covering {info['snapshot']['users']} users")

# ---------------------------------------------------------------------------
# 2. Reads: single keys (one round trip each) and a batch (one round trip,
#    one snapshot — items can never straddle an FCS refresh).
# ---------------------------------------------------------------------------
value, known = client.lookup_fairshare("u0")
print(f"\nfairshare(u0) = {value:.6f} (known={known})")
value, known = client.lookup_fairshare("nobody-here")
print(f"fairshare(nobody-here) = {value:.6f} (known={known})  # fallback")

batch = client.batch([{"op": "GET_FAIRSHARE", "user": f"u{i}"}
                      for i in range(5)])
seqs = {item["seq"] for item in batch}
print(f"batch of 5: values {[round(b['value'], 4) for b in batch]} "
      f"all from snapshot seq {seqs}")

# ---------------------------------------------------------------------------
# 3. Writes: REPORT_USAGE enqueues into the USS ingress; the next exchange
#    tick drains it, and the refresh after that publishes a new snapshot.
# ---------------------------------------------------------------------------
seq_before = client.batch([{"op": "GET_FAIRSHARE", "user": "u0"}])[0]["seq"]
client.report_usage("u0", start=engine.now, end=engine.now + 3600.0)
engine.run_until(engine.now + site.config.fcs_refresh_interval + 1.0)
seq_after = client.batch([{"op": "GET_FAIRSHARE", "user": "u0"}])[0]["seq"]
print(f"\nreported 1h of usage for u0: snapshot seq {seq_before} -> "
      f"{seq_after}")

# ---------------------------------------------------------------------------
# 4. The RMS plugin seams, unchanged, over the socket: the same LibAequus
#    facade the in-process experiments use, with the client as transport.
# ---------------------------------------------------------------------------
site.irs.store_mapping("scheduler-uid-17", "u17")
lib = LibAequus.over_socket(client, site=site.name, engine=engine)
prio = AequusPriorityPlugin(lib)
jobcomp = AequusJobCompletionPlugin(lib)

job = Job(system_user="scheduler-uid-17", duration=600.0, submit_time=0.0)
print(f"\npriority plugin factor for u17's job: "
      f"{prio.fairshare_factor(job, engine.now):.6f}")
job.mark_started(engine.now)
job.mark_completed(engine.now + 600.0)
jobcomp.job_completed(job, engine.now)
print(f"completion plugin reported {job.charge:.0f} core-seconds; "
      f"cache stats: {lib.cache_stats()['fairshare']}")

client.close()
thread.stop()

# ---------------------------------------------------------------------------
# 5. Serving at scale: the same site, sharded.  Every snapshot epoch is
#    published into double-buffered shared memory; N forked workers accept
#    on one SO_REUSEPORT port and answer from the mapped arrays — no parent
#    heap.  Clients negotiate the binary protocol per connection and fall
#    back to JSON transparently.
# ---------------------------------------------------------------------------
print(f"\n== sharded: {args.workers} workers over shared memory ==")
writer = ShmSnapshotWriter(site.name)
writer.attach_fcs(site.fcs, irs=site.irs)
with WorkerPool(writer.name, args.workers, site=site.name) as pool:
    assert pool.wait_ready(30.0)
    with SyncAequusClient(port=pool.port) as shard:
        server = shard.info()["server"]
        print(f"answered by worker {server['worker']}/{server['workers']} "
              f"(pid {server['pid']}, mode {server['mode']}, "
              f"binary v{server['binary']})")
        value, known = shard.lookup_fairshare("u0")
        print(f"fairshare(u0) = {value:.6f} (known={known}) "
              f"over binary protocol "
              f"(upgrades={shard.stats['binary_upgrades']})")
        batch = shard.batch_lookup_fairshare([f"u{i}" for i in range(5)])
        print(f"binary batch of 5: "
              f"{[round(v, 4) for v, _ in batch.values()]}")
    time.sleep(0.6)  # let the workers' stats heartbeat flush their rows
    totals = pool.aggregate()
    print(f"fleet totals: {totals['requests']} requests across "
          f"{totals['workers']} workers "
          f"({totals['binary_requests']} binary)")
writer.close()
site.stop()
print("\nstopped cleanly")
