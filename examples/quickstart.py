#!/usr/bin/env python3
"""Quickstart: the Aequus fairshare pipeline on a small hierarchy.

Walks the three constituents of Figure 1 — a hierarchical usage policy,
historical usage data, and the fairshare algorithm — then extracts
fairshare vectors (Figure 3) and projects them to scheduler-ready scalars
with all three projection algorithms (Table I).

Run:  python examples/quickstart.py
"""

from repro.core import (
    ExponentialDecay,
    FairshareParameters,
    PolicyTree,
    UsageHistogram,
    UsageRecord,
    build_usage_tree,
    compute_fairshare_tree,
    make_projection,
)

# ---------------------------------------------------------------------------
# 1. The usage policy: a site keeps 60% local and grants 40% to a grid VO,
#    whose internal subdivision is managed remotely and *mounted* in.
# ---------------------------------------------------------------------------
local_policy = PolicyTree.from_dict({
    "local": (60, {"alice": 2, "bob": 1}),
})

grid_vo_policy = PolicyTree.from_dict({
    "climate": (3, {"carol": 1, "dave": 1}),
    "physics": (1, {"erin": 1}),
})

local_policy.set_share("/grid", 40)
local_policy.mount("/grid", grid_vo_policy, source="vo-pds.example.org")

print("== Effective policy tree (local + mounted) ==")
print(local_policy.render(lambda n: f"{n.name or '/'}"
                          + (f"  share={n.normalized_share:.2f}" if n.parent else "")))
print()

# ---------------------------------------------------------------------------
# 2. Usage data: per-job records aggregated into per-user histograms
#    (what the USS maintains), decayed with a half-life.
# ---------------------------------------------------------------------------
histogram = UsageHistogram(interval=3600.0)
for user, hours in [("alice", 30), ("bob", 5), ("carol", 50), ("erin", 2)]:
    histogram.add_record(UsageRecord(user=user, site="site-a",
                                     start=0.0, end=hours * 3600.0))

now = 24 * 3600.0
decay = ExponentialDecay(half_life=7 * 24 * 3600.0)
per_user = histogram.decayed_totals(now, decay)
print("== Decayed per-user usage (core-seconds) ==")
for user, usage in sorted(per_user.items()):
    print(f"  {user:<6} {usage:>12.0f}")
print()

# ---------------------------------------------------------------------------
# 3. The fairshare calculation: policy x usage -> fairshare tree.
# ---------------------------------------------------------------------------
params = FairshareParameters(k=0.5, resolution=9999)
tree = compute_fairshare_tree(local_policy, per_user_usage=per_user,
                              parameters=params)

print("== Fairshare vectors (resolution 0-9999, balance point 5000) ==")
for path, vector in tree.vectors().items():
    print(f"  {path:<18} {vector!r}   priority={tree.priority(path):.3f}")
print()

# ---------------------------------------------------------------------------
# 4. Projection to a scalar in [0, 1] - three algorithms, three trade-offs.
# ---------------------------------------------------------------------------
print("== Projected fairshare values ==")
header = f"  {'user':<18}" + "".join(f"{name:>12}" for name in
                                     ("dictionary", "bitwise", "percental"))
print(header)
values = {name: make_projection(name).project(tree)
          for name in ("dictionary", "bitwise", "percental")}
for path in tree.vectors():
    row = f"  {path:<18}"
    for name in ("dictionary", "bitwise", "percental"):
        row += f"{values[name][path]:>12.4f}"
    print(row)
print()
print("Higher = more underserved; a scheduler plugs these into its")
print("multifactor priority in place of locally computed fairshare.")
