#!/usr/bin/env python3
"""The workload-modeling pipeline end to end (paper Section IV-1/2/3).

Generates the reference national-grid trace (the documented stand-in for
the proprietary 2012 accounting data), then runs the paper's methodology:

1. clean: drop admin/monitoring and zero-duration jobs,
2. categorize: isolate the dominating users U65/U30/U3, group the rest,
3. detect U65's quarterly experiment phases,
4. fit 18 candidate distributions per data set, select by BIC,
   validate by Kolmogorov-Smirnov — the regenerated Tables II and III,
5. build the phase-weighted composite (Equation 1),
6. sample a fresh synthetic trace from the fitted model and verify that it
   retains the key statistical properties of the original.

Run:  python examples/workload_modeling.py [n_jobs]
"""

import sys

import numpy as np

from repro.experiments.modeling import (
    figure7_series,
    prepare_dataset,
    regenerate_table2,
    regenerate_table3,
)
from repro.workload import (
    ArrivalModel,
    SyntheticWorkloadGenerator,
    TruncatedICDFSampler,
    UserWorkloadModel,
    DurationModel,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000
    print(f"generating reference trace with ~{n_jobs} clean jobs ...")
    dataset = prepare_dataset(n_jobs=n_jobs, seed=0)

    print(f"\n== Cleaning (paper: ~15% of jobs, 1.5% of usage removed) ==")
    print(f"removed {dataset.removed_job_fraction:.1%} of jobs, "
          f"{dataset.removed_usage_fraction:.2%} of usage")

    print("\n== User categories (paper: 65.25/30.49/2.86/1.40 % of usage) ==")
    for label in dataset.categories.category_names():
        print(f"  {label:<5} usage {dataset.categories.usage_shares[label]:.2%}"
              f"  jobs {dataset.categories.job_shares[label]:.2%}")

    print("\n== U65 phases (paper: four ~3-month experiment cycles) ==")
    for i, (lo, hi) in enumerate(dataset.u65_phases, start=1):
        print(f"  p{i}: day {lo / 86400:.0f} .. {hi / 86400:.0f}")

    print("\n== Table II - job arrival fits ==")
    table2 = regenerate_table2(dataset, subsample=5000)
    for row in table2:
        print(" ", row.render())

    print("\n== Table III - job duration fits ==")
    table3 = regenerate_table3(dataset, subsample=5000)
    for row in table3:
        print(" ", row.render())

    print("\n== Figure 7 - duration tails ==")
    fig7 = figure7_series(dataset)
    for user, data in fig7.items():
        print(f"  {user:<5} below 6e5 s: {data['fraction_below_6e5']:.1%}   "
              f"p99: {data['p99']:.3g} s")

    # -- resample from the *fitted* model and check key properties ---------
    print("\n== Synthesis from the fitted model ==")
    rng = np.random.default_rng(42)
    models = {}
    by_label = {r.label: r for r in table2}
    for t3row in table3:
        user = t3row.label
        times = dataset.labeled.arrival_times(user)
        if user == "U65":
            from repro.experiments.modeling import figure5_series
            arrival_dist = figure5_series(dataset, table2=table2)["composite"]
        else:
            arrival_dist = by_label[user].fit.fitted
        sampler = TruncatedICDFSampler(arrival_dist, times.min(), times.max())
        models[user] = UserWorkloadModel(
            name=user,
            arrival=ArrivalModel(sampler),
            duration=DurationModel(t3row.fit.fitted, max_duration=2e6),
        )
    job_shares = dataset.categories.job_shares
    generator = SyntheticWorkloadGenerator(models, job_shares, n_jobs=10_000)
    synthetic = generator.generate(rng)
    print(f"  synthesized {synthetic.n_jobs} jobs over "
          f"{synthetic.span / 86400:.0f} days")
    for user, share in sorted(synthetic.job_shares().items()):
        print(f"  {user:<5} job share {share:.2%} "
              f"(model target {job_shares.get(user, 0):.2%})")

    # -- validate: does the synthetic trace retain the key properties? -----
    from repro.workload.validation import compare_traces
    print("\n== Retention check (synthetic vs original, paper Sec. IV-1) ==")
    comparison = compare_traces(dataset.labeled, synthetic)
    for row in comparison.rows():
        print(" ", row)
    print()
    print("Job shares and the day-scale arrival/duration shapes are retained")
    print("(small share deltas and KS distances).  The inter-arrival medians")
    print("and peak rate differ because this resynthesis samples the fitted")
    print("continuous models only: second-scale submission batching is a")
    print("separate layer (see BATCH_CALIBRATION in repro.workload.reference),")
    print("which the test-bed traces add back in.")


if __name__ == "__main__":
    main()
