#!/usr/bin/env python3
"""Vector-combinable job factors — the paper's sketched future work.

Section III-C ends with: "one interesting alternative is to reverse the
problem and instead investigate modeling other factors, such as job age,
using a representation combinable with the fairshare vectors."

This example builds fairshare vectors for a small hierarchy and combines
them with a job-age factor two ways:

* ``suffix`` — age appended below the fairshare levels: fairshare order is
  enforced strictly top-down, age only breaks exact fairshare ties;
* ``blend``  — age mixed into every element with a weight, reproducing the
  multifactor smoothing behaviour while staying in vector space (keeping
  unlimited precision and isolation, which scalar projections give up).

Run:  python examples/vector_factors.py
"""

from repro.core import (
    AgeVectorFactor,
    CompositeVectorPriority,
    PolicyTree,
    compute_fairshare_tree,
)
from repro.rms.job import Job

policy = PolicyTree.from_dict({
    "chem": (1, {"anna": 1, "bert": 1}),
    "phys": (1, {"cara": 1}),
})
usage = {"/chem/anna": 500.0, "/chem/bert": 450.0, "/phys/cara": 1000.0}
tree = compute_fairshare_tree(policy, per_user_usage=usage)
vectors = tree.vectors()

NOW = 7200.0
jobs = {
    "/chem/anna": Job(system_user="anna", duration=60.0, submit_time=7100.0),
    "/chem/bert": Job(system_user="bert", duration=60.0, submit_time=0.0),
    "/phys/cara": Job(system_user="cara", duration=60.0, submit_time=3600.0),
}

print("== Fairshare vectors (no job factors) ==")
order = sorted(vectors, key=lambda p: vectors[p], reverse=True)
for path in order:
    print(f"  {path:<12} {vectors[path]!r}  wait={jobs[path].wait_time(NOW):>5.0f}s")
print()

for mode, note in [("suffix", "age breaks fairshare ties only"),
                   ("blend", "age smooths every level (weight 0.3)")]:
    comp = CompositeVectorPriority([(1.0, AgeVectorFactor(max_age=3600.0))],
                                   mode=mode, factor_weight=0.3)
    extended = {p: comp.extend(vectors[p], jobs[p], NOW) for p in vectors}
    ranking = sorted(extended, key=lambda p: extended[p], reverse=True)
    print(f"== Combined with job age ({mode}: {note}) ==")
    for path in ranking:
        print(f"  {path:<12} {extended[path]!r}")
    print()

print("The extended vectors are still compared lexicographically, so the")
print("combination keeps unlimited precision and subgroup isolation —")
print("the properties Table I shows every scalar projection giving up.")
