#!/usr/bin/env python3
"""Integrating Aequus with two different resource managers (Section III-A).

SLURM gets the Aequus plugins through its plug-in registry; Maui gets its
call-outs rebound by a source "patch".  Both end up consulting the same
global fairshare service — the point of libaequus is that the integration
surface is tiny and uniform.

This example runs the same workload through both schedulers side by side
(each against its own single-site Aequus stack) and shows that the
resulting per-user usage shares agree: the fairshare behaviour comes from
Aequus, not from the host scheduler.

Run:  python examples/slurm_vs_maui.py
"""

from repro.client import LibAequus
from repro.core import PolicyTree
from repro.rms import Cluster, FactorWeights, Job, MauiScheduler, MauiWeights, SlurmScheduler
from repro.services import AequusSite, Network, SiteConfig
from repro.sim import SimulationEngine
from repro.workload import build_testbed_trace
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES

SPAN = 5400.0
N_JOBS = 5000
HOSTS = 40


def build(engine: SimulationEngine, kind: str):
    network = Network(engine, base_latency=0.05)
    policy = PolicyTree()
    for user, share in USAGE_SHARES.items():
        policy.set_share(f"/{user}", share)
    config = SiteConfig(decay_half_life=1800.0)
    site = AequusSite(f"{kind}-site", engine, network, policy=policy,
                      config=config)
    for user, dn in GRID_IDENTITIES.items():
        site.fcs.register_identity(dn, user)
        site.irs.store_mapping(f"u_{user.lower()}", dn)
    cluster = Cluster(kind, n_nodes=HOSTS, cores_per_node=1)
    lib = LibAequus.for_site(site)
    if kind == "slurm":
        sched = SlurmScheduler(kind, engine, cluster,
                               weights=FactorWeights(fairshare=1.0))
        sched.integrate_aequus(lib)          # plugin registration
    else:
        sched = MauiScheduler(kind, engine, cluster,
                              weights=MauiWeights(fairshare=1.0))
        sched.apply_aequus_patch(lib)        # source patch
    return site, sched


def run(kind: str):
    engine = SimulationEngine()
    site, sched = build(engine, kind)
    trace = build_testbed_trace(n_jobs=N_JOBS, span=SPAN, total_cores=HOSTS,
                                load=0.95, seed=11)
    identity_to_user = {dn: f"u_{u.lower()}" for u, dn in GRID_IDENTITIES.items()}
    for tj in trace:
        engine.schedule_at(tj.submit, lambda tj=tj: sched.submit(
            Job(system_user=identity_to_user[tj.user], duration=tj.duration)))
    engine.run_until(SPAN)
    usage = {}
    for job in sched.completed:
        dn = site.irs.resolve(job.system_user)
        usage[dn] = usage.get(dn, 0.0) + job.charge
    total = sum(usage.values()) or 1.0
    shares = {u: usage.get(dn, 0.0) / total for u, dn in GRID_IDENTITIES.items()}
    site.stop()
    sched.stop()
    return sched, shares


def main() -> None:
    print(f"workload: {N_JOBS} jobs over {SPAN / 60:.0f} min, {HOSTS} hosts\n")
    results = {}
    for kind in ("slurm", "maui"):
        sched, shares = run(kind)
        results[kind] = shares
        print(f"== {kind.upper()} + Aequus ==")
        print(f"  completed {sched.jobs_completed}/{sched.jobs_submitted} jobs, "
              f"utilization {sched.utilization():.1%}")
        for user in USAGE_SHARES:
            print(f"  {user:<5} usage share {shares[user]:.3f} "
                  f"(target {USAGE_SHARES[user]:.3f})")
        print()

    print("== SLURM vs Maui share agreement ==")
    for user in USAGE_SHARES:
        a, b = results["slurm"][user], results["maui"][user]
        print(f"  {user:<5} |slurm - maui| = {abs(a - b):.4f}")
    print("\nSame global fairshare, two different host schedulers.")


if __name__ == "__main__":
    main()
