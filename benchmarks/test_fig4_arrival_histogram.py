"""F4 — Figure 4: job arrivals per day, total vs U65.

Paper claim: "the job arrival pattern of the trace is dominated by the job
arrival pattern of U65" (81.03% of all jobs) — the two daily-binned series
track each other, with activity concentrated in U65's experiment cycles.
"""

import numpy as np

from repro.experiments.modeling import figure4_series


def test_fig4_arrival_histogram(benchmark, emit, modeling_dataset):
    fig = benchmark.pedantic(figure4_series, args=(modeling_dataset,),
                             rounds=1, iterations=1)
    total, u65 = fig["total"], fig["u65"]
    edges = fig["bin_edges"]
    # print a coarse weekly series (the figure's shape)
    rows = []
    week = 7
    for w in range(0, len(total) - week, week * 4):
        t_sum = total[w:w + week].sum()
        u_sum = u65[w:w + week].sum()
        bar = "#" * int(50 * t_sum / max(1, total.max() * week))
        rows.append(f"day {int(edges[w] / 86400):>3}: total={t_sum:>6} "
                    f"u65={u_sum:>6} {bar}")
    emit("Figure 4 - daily job arrivals (total vs U65)", rows)

    # U65 dominates the totals at the paper's fraction
    assert u65.sum() / total.sum() > 0.75

    # the series track each other: daily correlation is high
    mask = total > 0
    corr = np.corrcoef(total[mask], u65[mask])[0, 1]
    assert corr > 0.95

    # activity is phased, not uniform: the busiest 30% of days carry most jobs
    order = np.sort(total)[::-1]
    busiest = order[: max(1, int(0.3 * len(order)))].sum()
    assert busiest / total.sum() > 0.6
