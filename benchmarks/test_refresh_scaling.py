"""Refresh-latency scaling of the array-backed fairshare kernel.

Measures one full FCS-style refresh — usage shaping, fairshare computation,
and percental projection — at 1k / 10k / 100k users, comparing the
vectorized kernel (:mod:`repro.core.flat`) against the retained object-tree
reference (:func:`repro.core.fairshare.compute_fairshare_tree`), and checks
bit-level agreement on the shared scale.

Results are printed, appended to ``benchmarks/results.txt``, and written to
``benchmarks/BENCH_refresh.json`` so CI can track the perf trajectory per
PR.  Set ``REPRO_BENCH_SCALE=small`` for a smoke pass (drops the 100k
tier); the ≥5× speedup gate at 10k users runs in both modes.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.fairshare import compute_fairshare_tree
from repro.core.flat import FlatPolicy
from repro.core.policy import PolicyTree
from repro.core.projection import PercentalProjection
from repro.core.usage import build_usage_tree

JSON_PATH = Path(__file__).parent / "BENCH_refresh.json"

#: users per scale tier; smoke mode trims the expensive top tier
_SCALES = {"paper": (1_000, 10_000, 100_000), "small": (1_000, 10_000)}

#: the tier the ≥5x acceptance gate applies to
GATE_USERS = 10_000
GATE_SPEEDUP = 5.0

#: the incremental journal splice must beat a from-scratch compile by this
#: much at the top tier (100k users at paper scale) — the PR 7 gate
RECOMPILE_GATE = 10.0


def scale_tiers():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def grid_policy(n_users: int, users_per_project: int = 50,
                projects_per_vo: int = 20, seed: int = 0) -> PolicyTree:
    """A realistic 3-level hierarchy: VOs -> projects -> users.

    Integer weights keep every sibling-group sum exact in float64, so the
    reference and the kernel agree bit for bit and the 1e-9 comparison
    below is meaningful rather than summation-order noise.
    """
    rng = np.random.default_rng(seed)
    tree = PolicyTree()
    users = 0
    vo = 0
    while users < n_users:
        vo_path = f"/vo{vo}"
        tree.set_share(vo_path, int(rng.integers(1, 100)))
        for p in range(projects_per_vo):
            if users >= n_users:
                break
            proj_path = f"{vo_path}/proj{p}"
            tree.set_share(proj_path, int(rng.integers(1, 100)))
            for u in range(users_per_project):
                if users >= n_users:
                    break
                tree.set_share(f"{proj_path}/u{users}",
                               int(rng.integers(1, 100)))
                users += 1
        vo += 1
    return tree


def random_usage(policy: PolicyTree, active_fraction: float = 0.7,
                 seed: int = 1) -> dict:
    rng = np.random.default_rng(seed)
    return {path: float(int(rng.integers(1, 1_000_000)))
            for path in policy.leaf_paths()
            if rng.random() < active_fraction}


def reference_refresh(policy, usage, projection):
    """The pre-kernel FCS refresh: three object trees per call."""
    usage_tree = build_usage_tree(policy, usage)
    tree = compute_fairshare_tree(policy, usage=usage_tree)
    return projection.project(tree)


def flat_refresh(flat, usage, projection):
    """The kernel refresh path (policy already compiled, as in the FCS)."""
    return projection.project_flat(flat.compute(usage))


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_tier(n_users: int, projection, repeats: int) -> dict:
    """One scale tier: full refresh, incremental refresh, recompiles."""
    policy = grid_policy(n_users)
    usage = random_usage(policy)
    flat = FlatPolicy(policy)
    t0 = time.perf_counter()
    FlatPolicy(policy)
    compile_s = time.perf_counter() - t0
    # the object-tree reference is impractical beyond 100k users (the 1M
    # row exists to characterize the kernel, not to wait on the baseline)
    ref_s = _best_of(lambda: reference_refresh(policy, usage, projection),
                     repeats) if n_users <= 100_000 else None
    flat_s = _best_of(lambda: flat_refresh(flat, usage, projection), repeats)

    # incremental policy recompile: a realistic weight-edit batch (one VO,
    # one user) spliced through the edit journal vs compiled from scratch
    revision = policy.revision
    some_leaf = flat.leaf_paths[len(flat.leaf_paths) // 2]
    policy.set_share("/vo0", 17.0)
    policy.set_share(some_leaf, 3.0)
    edits = policy.edits_since(revision)
    recompile_s = _best_of(lambda: FlatPolicy(policy), repeats)
    incremental_recompile_s = _best_of(
        lambda: flat.recompile(policy, edits), max(repeats, 3))
    spliced = flat.recompile(policy, edits)
    assert spliced is not None and spliced[1]["layout_changed"] is False
    new_flat, info = spliced

    # dirty-subtree delta refresh: ~1% of the users changed usage
    result = new_flat.compute(usage)
    rng = np.random.default_rng(2)
    n_dirty = max(1, new_flat.n_leaves // 100)
    dirty_rows = rng.choice(new_flat.n_leaves, size=n_dirty, replace=False)
    dirty_rows.sort()
    new_vals = rng.integers(1, 1_000_000, size=n_dirty).astype(float)
    delta_s = _best_of(
        lambda: new_flat.compute_delta(result, dirty_rows, new_vals,
                                       extra_dirty_nodes=info["target_dirty"]),
        max(repeats, 3))

    # steady-state memory footprint of the compiled layout + one result
    bytes_total = new_flat.memory_bytes() + result.memory_bytes()
    return dict(n_users=n_users, reference_s=ref_s, flat_s=flat_s,
                compile_s=compile_s,
                speedup=None if ref_s is None else ref_s / flat_s,
                recompile_s=recompile_s,
                incremental_recompile_s=incremental_recompile_s,
                recompile_speedup=recompile_s / incremental_recompile_s,
                delta_s=delta_s,
                bytes_per_user=bytes_total / n_users)


def format_rows(rows):
    lines = []
    for r in rows:
        ref = "      n/a" if r["reference_s"] is None \
            else f"{r['reference_s'] * 1e3:7.1f} ms"
        lines.append(
            f"{r['n_users']:>9} users: reference {ref}  "
            f"kernel {r['flat_s'] * 1e3:7.1f} ms  "
            f"delta {r['delta_s'] * 1e6:7.1f} us  "
            f"compile {r['compile_s'] * 1e3:7.1f} ms  "
            f"splice {r['incremental_recompile_s'] * 1e6:8.1f} us "
            f"({r['recompile_speedup']:7.1f}x)  "
            f"{r['bytes_per_user']:5.1f} B/user")
    return lines


@pytest.fixture(scope="module")
def refresh_rows(report):
    projection = PercentalProjection()
    rows = []
    for n_users in scale_tiers():
        repeats = 3 if n_users <= GATE_USERS else 1
        rows.append(measure_tier(n_users, projection, repeats))
    block = ["\n== refresh scaling (reference vs array kernel) =="] \
        + format_rows(rows)
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="refresh_scaling",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             gate=dict(users=GATE_USERS, min_speedup=GATE_SPEEDUP,
                       min_recompile_speedup=RECOMPILE_GATE),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestRefreshScaling:
    def test_speedup_gate_at_10k_users(self, refresh_rows):
        gate = next(r for r in refresh_rows if r["n_users"] == GATE_USERS)
        assert gate["speedup"] >= GATE_SPEEDUP, (
            f"kernel only {gate['speedup']:.1f}x faster than reference at "
            f"{GATE_USERS} users (need >= {GATE_SPEEDUP}x)")

    def test_speedup_is_monotone_ish(self, refresh_rows):
        # the kernel's advantage must not collapse as scale grows
        assert refresh_rows[-1]["speedup"] >= GATE_SPEEDUP

    def test_incremental_recompile_gate_at_top_tier(self, refresh_rows):
        """PR 7 gate: the journal splice must beat a from-scratch compile
        by >= 10x at the top tier (100k users at paper scale)."""
        gate = refresh_rows[-1]
        assert gate["recompile_speedup"] >= RECOMPILE_GATE, (
            f"incremental recompile only {gate['recompile_speedup']:.1f}x "
            f"faster than full at {gate['n_users']} users "
            f"(need >= {RECOMPILE_GATE}x)")

    def test_delta_refresh_beats_full_pass(self, refresh_rows):
        """A 1%-dirty delta refresh must be well under a full kernel pass."""
        top = refresh_rows[-1]
        assert top["delta_s"] < top["flat_s"]

    def test_json_artifact_written(self, refresh_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "refresh_scaling"
        assert len(data["rows"]) == len(scale_tiers())
        for row in data["rows"]:
            for column in ("recompile_s", "incremental_recompile_s",
                           "delta_s", "bytes_per_user"):
                assert column in row


@pytest.mark.million
class TestMillionUsers:
    """The million-user kernel pass (run with ``-m million``).

    Appends an ``n_users=1_000_000`` row — kernel refresh, delta refresh,
    journal-splice recompile, bytes/user — to ``BENCH_refresh.json``.
    """

    def test_million_user_row(self, report):
        row = measure_tier(1_000_000, PercentalProjection(), repeats=1)
        block = ["\n== refresh scaling: the million-user row =="] \
            + format_rows([row])
        for line in block:
            print(line)
        report.extend(block)
        try:
            data = json.loads(JSON_PATH.read_text())
        except (OSError, ValueError):
            data = dict(benchmark="refresh_scaling", scale="million",
                        gate=dict(users=GATE_USERS,
                                  min_speedup=GATE_SPEEDUP,
                                  min_recompile_speedup=RECOMPILE_GATE),
                        rows=[])
        data["rows"] = [r for r in data["rows"]
                        if r["n_users"] != row["n_users"]] + [row]
        JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")
        assert row["recompile_speedup"] >= RECOMPILE_GATE
        assert row["delta_s"] < row["flat_s"]
        # the layout + one result must stay lean at the million-user scale
        assert row["bytes_per_user"] < 512.0


class TestKernelAgreesWithReference:
    """Randomized-tree equivalence at benchmark scale (the 1e-9 gate)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_values_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        policy = grid_policy(500, users_per_project=int(rng.integers(3, 30)),
                             projects_per_vo=int(rng.integers(2, 10)),
                             seed=seed)
        usage = random_usage(policy, seed=seed + 100)
        ref = compute_fairshare_tree(
            policy, usage=build_usage_tree(policy, usage))
        res = FlatPolicy(policy).compute(usage)
        ref_priorities = ref.priorities()
        flat_priorities = res.priorities()
        assert set(ref_priorities) == set(flat_priorities)
        for path, value in ref_priorities.items():
            assert abs(flat_priorities[path] - value) < 1e-9
        for node in ref.walk():
            if node.parent is None:
                continue
            i = res.flat.path_index[node.path]
            assert abs(res.balance[i] - node.balance) < 1e-9
        projection = PercentalProjection()
        a = projection.project(ref)
        b = projection.project_flat(res)
        for path, value in a.items():
            assert abs(b[path] - value) < 1e-9
