"""Refresh-latency scaling of the array-backed fairshare kernel.

Measures one full FCS-style refresh — usage shaping, fairshare computation,
and percental projection — at 1k / 10k / 100k users, comparing the
vectorized kernel (:mod:`repro.core.flat`) against the retained object-tree
reference (:func:`repro.core.fairshare.compute_fairshare_tree`), and checks
bit-level agreement on the shared scale.

Results are printed, appended to ``benchmarks/results.txt``, and written to
``benchmarks/BENCH_refresh.json`` so CI can track the perf trajectory per
PR.  Set ``REPRO_BENCH_SCALE=small`` for a smoke pass (drops the 100k
tier); the ≥5× speedup gate at 10k users runs in both modes.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.fairshare import compute_fairshare_tree
from repro.core.flat import FlatPolicy
from repro.core.policy import PolicyTree
from repro.core.projection import PercentalProjection
from repro.core.usage import build_usage_tree

JSON_PATH = Path(__file__).parent / "BENCH_refresh.json"

#: users per scale tier; smoke mode trims the expensive top tier
_SCALES = {"paper": (1_000, 10_000, 100_000), "small": (1_000, 10_000)}

#: the tier the ≥5x acceptance gate applies to
GATE_USERS = 10_000
GATE_SPEEDUP = 5.0


def scale_tiers():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def grid_policy(n_users: int, users_per_project: int = 50,
                projects_per_vo: int = 20, seed: int = 0) -> PolicyTree:
    """A realistic 3-level hierarchy: VOs -> projects -> users.

    Integer weights keep every sibling-group sum exact in float64, so the
    reference and the kernel agree bit for bit and the 1e-9 comparison
    below is meaningful rather than summation-order noise.
    """
    rng = np.random.default_rng(seed)
    tree = PolicyTree()
    users = 0
    vo = 0
    while users < n_users:
        vo_path = f"/vo{vo}"
        tree.set_share(vo_path, int(rng.integers(1, 100)))
        for p in range(projects_per_vo):
            if users >= n_users:
                break
            proj_path = f"{vo_path}/proj{p}"
            tree.set_share(proj_path, int(rng.integers(1, 100)))
            for u in range(users_per_project):
                if users >= n_users:
                    break
                tree.set_share(f"{proj_path}/u{users}",
                               int(rng.integers(1, 100)))
                users += 1
        vo += 1
    return tree


def random_usage(policy: PolicyTree, active_fraction: float = 0.7,
                 seed: int = 1) -> dict:
    rng = np.random.default_rng(seed)
    return {path: float(int(rng.integers(1, 1_000_000)))
            for path in policy.leaf_paths()
            if rng.random() < active_fraction}


def reference_refresh(policy, usage, projection):
    """The pre-kernel FCS refresh: three object trees per call."""
    usage_tree = build_usage_tree(policy, usage)
    tree = compute_fairshare_tree(policy, usage=usage_tree)
    return projection.project(tree)


def flat_refresh(flat, usage, projection):
    """The kernel refresh path (policy already compiled, as in the FCS)."""
    return projection.project_flat(flat.compute(usage))


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def refresh_rows(report):
    projection = PercentalProjection()
    rows = []
    for n_users in scale_tiers():
        policy = grid_policy(n_users)
        usage = random_usage(policy)
        flat = FlatPolicy(policy)
        repeats = 3 if n_users <= GATE_USERS else 1
        t0 = time.perf_counter()
        FlatPolicy(policy)
        compile_s = time.perf_counter() - t0
        ref_s = _best_of(lambda: reference_refresh(policy, usage, projection),
                         repeats)
        flat_s = _best_of(lambda: flat_refresh(flat, usage, projection),
                          repeats)
        rows.append(dict(n_users=n_users, reference_s=ref_s, flat_s=flat_s,
                         compile_s=compile_s, speedup=ref_s / flat_s))
    block = ["\n== refresh scaling (reference vs array kernel) =="] + [
        f"{r['n_users']:>7} users: reference {r['reference_s'] * 1e3:9.1f} ms  "
        f"kernel {r['flat_s'] * 1e3:7.1f} ms  "
        f"(compile {r['compile_s'] * 1e3:7.1f} ms)  "
        f"speedup {r['speedup']:6.1f}x"
        for r in rows]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="refresh_scaling",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             gate=dict(users=GATE_USERS, min_speedup=GATE_SPEEDUP),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestRefreshScaling:
    def test_speedup_gate_at_10k_users(self, refresh_rows):
        gate = next(r for r in refresh_rows if r["n_users"] == GATE_USERS)
        assert gate["speedup"] >= GATE_SPEEDUP, (
            f"kernel only {gate['speedup']:.1f}x faster than reference at "
            f"{GATE_USERS} users (need >= {GATE_SPEEDUP}x)")

    def test_speedup_is_monotone_ish(self, refresh_rows):
        # the kernel's advantage must not collapse as scale grows
        assert refresh_rows[-1]["speedup"] >= GATE_SPEEDUP

    def test_json_artifact_written(self, refresh_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "refresh_scaling"
        assert len(data["rows"]) == len(scale_tiers())


class TestKernelAgreesWithReference:
    """Randomized-tree equivalence at benchmark scale (the 1e-9 gate)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_values_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        policy = grid_policy(500, users_per_project=int(rng.integers(3, 30)),
                             projects_per_vo=int(rng.integers(2, 10)),
                             seed=seed)
        usage = random_usage(policy, seed=seed + 100)
        ref = compute_fairshare_tree(
            policy, usage=build_usage_tree(policy, usage))
        res = FlatPolicy(policy).compute(usage)
        ref_priorities = ref.priorities()
        flat_priorities = res.priorities()
        assert set(ref_priorities) == set(flat_priorities)
        for path, value in ref_priorities.items():
            assert abs(flat_priorities[path] - value) < 1e-9
        for node in ref.walk():
            if node.parent is None:
                continue
            i = res.flat.path_index[node.path]
            assert abs(res.balance[i] - node.balance) < 1e-9
        projection = PercentalProjection()
        a = projection.project(ref)
        b = projection.project_flat(res)
        for path, value in a.items():
            assert abs(b[path] - value) < 1e-9
