"""Fig. 11 on a real wire: cross-site staleness across grid sizes.

The simulation benches derive the paper's update-delay model
(``test_fig11_update_delay``) on the virtual clock; this bench re-derives
the observable half of it on *actual sockets*: for each grid size it
boots N ``aequus-repro grid-node`` subprocesses on loopback through the
:class:`~repro.grid.harness.GridHarness`, lets the fleet converge, then
samples every site's worst remote-origin staleness through the serve
plane for a measurement window — the real-wire analogue of the paper's
update delay, with process scheduling, TCP, serialization, and tick
granularity all included.

Per grid size the JSON artifact (``benchmarks/BENCH_grid.json``) records
sites x users x staleness p50/p99 x wire bytes (both the modeled
exchange payload cost and the real framed bytes the transport moved).
CI gates: the fleet must converge, and staleness percentiles must stay
within small multiples of the exchange interval — on a healthy loopback
wire the update delay is protocol tempo, not transport overhead.

Scale tiers: ``paper`` (default) samples a longer window with more
users; ``REPRO_BENCH_SCALE=small`` is the CI smoke tier.  Both cover
the {2, 4, 8}-site ladder the acceptance bar asks for.
"""

import json
import os
import statistics
from pathlib import Path

import pytest

from repro.grid.harness import GridHarness, GridSpec

JSON_PATH = Path(__file__).parent / "BENCH_grid.json"

SITE_LADDER = (2, 4, 8)
EXCHANGE_INTERVAL = 0.5
REFRESH_INTERVAL = 0.5

#: (users, seconds of staleness sampling) per scale tier
_SCALES = {"paper": (48, 8.0), "small": (24, 4.0)}

#: staleness gates in exchange intervals (generous: CI machines stall)
GATE_P50_INTERVALS = 4.0
GATE_P99_INTERVALS = 10.0


def scale_tier():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def percentile(samples, q):
    samples = sorted(samples)
    return samples[min(len(samples) - 1, int(q * (len(samples) - 1)))]


def run_grid(n_sites: int, n_users: int, window: float) -> dict:
    spec = GridSpec(sites=n_sites, users=n_users, usage_jobs=4,
                    exchange_interval=EXCHANGE_INTERVAL,
                    refresh_interval=REFRESH_INTERVAL,
                    histogram_interval=5.0)
    with GridHarness(spec) as grid:
        converge_s = grid.wait_converged(
            max_staleness=10 * EXCHANGE_INTERVAL, timeout=60.0)
        names = spec.site_names()
        payload0 = sum(grid.wire_bytes(n) for n in names)
        frames0 = sum(grid.metric_sum(n, "aequus_grid_peer_bytes_total")
                      for n in names)
        samples = grid.staleness_samples(window)
        payload1 = sum(grid.wire_bytes(n) for n in names)
        frames1 = sum(grid.metric_sum(n, "aequus_grid_peer_bytes_total")
                      for n in names)
        reconnects = sum(grid.metric_sum(n, "aequus_grid_reconnects_total")
                         for n in names)
    assert samples, "no staleness samples collected"
    return dict(
        sites=n_sites, users=n_users,
        converge_s=round(converge_s, 3),
        samples=len(samples),
        staleness_p50=round(statistics.median(samples), 4),
        staleness_p99=round(percentile(samples, 0.99), 4),
        staleness_max=round(max(samples), 4),
        payload_bytes_per_s=round((payload1 - payload0) / window, 1),
        frame_bytes_per_s=round((frames1 - frames0) / window, 1),
        steady_reconnects=reconnects,
    )


@pytest.fixture(scope="module")
def grid_rows(report):
    users, window = scale_tier()
    rows = [run_grid(sites, users, window) for sites in SITE_LADDER]
    block = [f"\n== grid staleness on real wire ({users} users, "
             f"{window:.0f}s window, exchange {EXCHANGE_INTERVAL}s) =="] + [
        f"{r['sites']} sites: p50 {r['staleness_p50']:6.2f}s  "
        f"p99 {r['staleness_p99']:6.2f}s  "
        f"payload {r['payload_bytes_per_s'] / 1e3:8.2f} KB/s  "
        f"wire {r['frame_bytes_per_s'] / 1e3:8.2f} KB/s  "
        f"converged in {r['converge_s']:.1f}s"
        for r in rows]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="grid_scaling", figure="11 (real wire)",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             exchange_interval=EXCHANGE_INTERVAL,
             refresh_interval=REFRESH_INTERVAL,
             gate=dict(p50_intervals=GATE_P50_INTERVALS,
                       p99_intervals=GATE_P99_INTERVALS),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestGridScaling:
    def test_ladder_covers_acceptance_sizes(self, grid_rows):
        assert {r["sites"] for r in grid_rows} >= {2, 4, 8}

    def test_staleness_p50_within_protocol_tempo(self, grid_rows):
        bound = GATE_P50_INTERVALS * EXCHANGE_INTERVAL
        for row in grid_rows:
            assert row["staleness_p50"] <= bound, (
                f"{row['sites']} sites: p50 staleness "
                f"{row['staleness_p50']:.2f}s exceeds {bound:.2f}s")

    def test_staleness_p99_within_protocol_tempo(self, grid_rows):
        bound = GATE_P99_INTERVALS * EXCHANGE_INTERVAL
        for row in grid_rows:
            assert row["staleness_p99"] <= bound, (
                f"{row['sites']} sites: p99 staleness "
                f"{row['staleness_p99']:.2f}s exceeds {bound:.2f}s")

    def test_wire_traffic_flows_and_scales(self, grid_rows):
        for row in grid_rows:
            assert row["payload_bytes_per_s"] > 0
            assert row["frame_bytes_per_s"] > 0
        # more sites, more links: total traffic must not shrink
        assert grid_rows[-1]["frame_bytes_per_s"] \
            > grid_rows[0]["frame_bytes_per_s"]

    def test_json_artifact_written(self, grid_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "grid_scaling"
        assert {r["sites"] for r in data["rows"]} >= {2, 4, 8}
        for row in data["rows"]:
            for key in ("staleness_p50", "staleness_p99",
                        "payload_bytes_per_s", "frame_bytes_per_s"):
                assert key in row
