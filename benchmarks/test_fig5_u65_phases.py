"""F5 — Figure 5: U65 arrival density, its four phases, and Equation 1.

Paper claims: U65's arrivals fall in four roughly-quarterly experiment
cycles; a separate GEV is fitted per phase; the job-count-weighted
composite (Equation 1) fits the full arrival set with KS ~0.02, better than
any single phase's fit (0.05-0.07).
"""

import numpy as np

from repro.experiments.modeling import figure5_series


def test_fig5_u65_phases(benchmark, emit, modeling_dataset, table2_rows):
    fig = benchmark.pedantic(
        figure5_series, args=(modeling_dataset,),
        kwargs={"table2": table2_rows}, rounds=1, iterations=1)

    phases = fig["phases"]
    centers = fig["bin_centers"]
    emp = fig["empirical_density"]
    comp = fig["composite_density"]

    rows = [f"phase p{i + 1}: day {lo / 86400:.0f} .. {hi / 86400:.0f}"
            for i, (lo, hi) in enumerate(phases)]
    step = max(1, len(centers) // 24)
    for i in range(0, len(centers), step):
        bar = "#" * int(60 * emp[i] / max(emp.max(), 1e-30))
        fit = "+" * int(60 * comp[i] / max(emp.max(), 1e-30))
        rows.append(f"day {centers[i] / 86400:>5.0f} |{bar}")
        rows.append(f"          fit|{fit}")
    emit("Figure 5 - U65 arrival density with phases and composite fit",
         rows[:40])

    # four phases detected, in order, covering the trace
    assert len(phases) == 4
    assert all(phases[i][1] == phases[i + 1][0] for i in range(3))

    # each phase contains a density bump: phase max >> overall median
    for lo, hi in phases:
        in_phase = emp[(centers >= lo) & (centers < hi)]
        assert in_phase.max() > 2 * np.median(emp[emp >= 0])

    # the composite density integrates to ~1 and matches the empirical mass
    # distribution phase by phase
    bin_w = centers[1] - centers[0]
    assert comp.sum() * bin_w > 0.9
    for lo, hi in phases:
        mask = (centers >= lo) & (centers < hi)
        emp_mass = emp[mask].sum() * bin_w
        comp_mass = comp[mask].sum() * bin_w
        assert abs(emp_mass - comp_mass) < 0.08

    # composite KS (from Table II regeneration) is small, as in the paper
    comp_row = next(r for r in table2_rows if r.label == "U65")
    assert comp_row.ks < 0.06
