"""F1 — Figure 1: the three fairshare constituents.

The figure shows policy tree x usage data -> per-node fairshare values
(absolute distance only, for simplicity).  We regenerate the computation on
a Figure-1-style hierarchy and check the arithmetic the figure annotates:
each node's value is its (normalized) policy share minus its usage share
within the sibling group.
"""

import pytest

from repro.core.distance import FairshareParameters
from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.usage import UsageTree


def build_and_compute():
    policy = PolicyTree.from_dict({
        "HPC": (60, {"proj1": 3, "proj2": 1}),
        "GRID": (40, {"vo1": 1, "vo2": 1}),
    })
    usage = UsageTree()
    usage.set_usage("/HPC/proj1", 300.0)
    usage.set_usage("/HPC/proj2", 100.0)
    usage.set_usage("/GRID/vo1", 500.0)
    usage.set_usage("/GRID/vo2", 100.0)
    usage.roll_up()
    # k=1: pure absolute distance, as in the Figure 1 illustration
    tree = compute_fairshare_tree(policy, usage=usage,
                                  parameters=FairshareParameters(k=1.0))
    return policy, usage, tree


def test_fig1_constituents(benchmark, emit):
    policy, usage, tree = benchmark.pedantic(build_and_compute, rounds=1,
                                             iterations=1)
    rows = []
    for node in tree.walk():
        if node.parent is None:
            continue
        rows.append(f"{node.path:<14} target={node.target_share:.3f} "
                    f"usage={node.usage_share:.3f} "
                    f"abs-distance={node.target_share - node.usage_share:+.3f}")
    emit("Figure 1 - fairshare constituents (absolute distance)", rows)

    # the figure's arithmetic: value = policy share - usage share, per group
    hpc = tree["/HPC"]
    assert hpc.target_share == pytest.approx(0.6)
    assert hpc.usage_share == pytest.approx(400.0 / 1000.0)
    proj1 = tree["/HPC/proj1"]
    assert proj1.target_share == pytest.approx(0.75)
    assert proj1.usage_share == pytest.approx(0.75)  # exactly at balance
    # with k=1 the priority IS the clipped absolute distance
    assert proj1.priority == pytest.approx(0.0)
    assert tree["/GRID"].priority == pytest.approx(0.0)  # overserved -> 0
    assert tree["/HPC"].priority == pytest.approx(0.2)

    # subgroup isolation: GRID's internal imbalance does not leak into HPC
    assert tree["/HPC/proj2"].priority == pytest.approx(0.0)
    assert tree["/GRID/vo2"].priority == pytest.approx(0.5 - 100.0 / 600.0)
