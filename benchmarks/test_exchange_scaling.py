"""Usage data-plane scaling: delta exchange + incremental UMS vs reference.

Drives a multi-site grid (paper scale: 8 sites x 10k grid users with
established per-user histograms) through identical steady-state churn under
two configurations:

* **full** — the original data plane: every exchange tick ships the entire
  dict-of-dict histogram snapshot to every peer, and every UMS refresh
  re-merges and re-decays every user (``delta_exchange=False`` /
  ``incremental=False``);
* **delta** — the incremental data plane: sequence-numbered changed-entry
  publishes in the compact array wire format, dirty-user UMS aggregation
  with the analytic exponential age shift (the defaults).

Both runs execute the same seeded churn schedule on a jitter-free network,
so their UMS totals must agree (checked at 1e-6) and the measured
difference is purely data-plane cost.  Measured per steady-state tick:
bytes-on-wire (diff of immutable ``NetworkStats.snapshot()`` frames taken
at the warm-up/measurement boundary, so the phase split never mutates the
live counters) and wall-clock latency of the combined exchange +
UMS-refresh round.  CI gates on >=5x reduction in both.

Results land in ``benchmarks/BENCH_exchange.json`` (and results.txt); set
``REPRO_BENCH_SCALE=small`` for the smoke tier (4 sites x 2k users).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.decay import ExponentialDecay
from repro.services.network import Network
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine

JSON_PATH = Path(__file__).parent / "BENCH_exchange.json"

#: (n_sites, grid users) per scale tier
_SCALES = {"paper": (8, 10_000), "small": (4, 2_000)}

GATE_BYTES_REDUCTION = 5.0
GATE_SPEEDUP = 5.0

HISTOGRAM_INTERVAL = 3600.0
EXCHANGE_INTERVAL = 30.0
HISTORY_BINS = 16            # seeded per-user history depth
CHURN_FRACTION = 0.01        # users touched per steady-state tick
WARMUP_TICKS = 3
MEASURE_TICKS = 4


def scale_tier():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


class Grid:
    """N sites x M users with established histograms and periodic churn."""

    def __init__(self, n_sites: int, n_users: int, delta: bool, seed: int = 0):
        # start beyond the seeded history so every seeded bin midpoint is
        # in the past (steady state, not a cold start)
        self.t0 = HISTORY_BINS * HISTOGRAM_INTERVAL
        self.n_users = n_users
        self.engine = SimulationEngine(start_time=self.t0)
        self.network = Network(self.engine, base_latency=0.05)
        decay = ExponentialDecay(half_life=7 * 24 * 3600.0)
        self.usses = [
            UsageStatisticsService(
                f"s{i}", self.engine, self.network,
                histogram_interval=HISTOGRAM_INTERVAL,
                exchange_interval=EXCHANGE_INTERVAL,
                delta_exchange=delta)
            for i in range(n_sites)]
        # seed: user u homes on site u % n_sites with HISTORY_BINS of usage
        rng = np.random.default_rng(seed)
        charges = rng.uniform(10.0, 3600.0, size=(n_users, HISTORY_BINS))
        for u in range(n_users):
            local = self.usses[u % n_sites].local
            for b in range(HISTORY_BINS):
                local.add_bin(f"u{u}", b, float(charges[u, b]))
        # UMS after seeding: the priming refresh covers the seeded history
        self.umses = [
            UsageMonitoringService(
                f"s{i}", self.engine, sources=[uss], decay=decay,
                refresh_interval=EXCHANGE_INTERVAL, incremental=delta)
            for i, uss in enumerate(self.usses)]
        for a in self.usses:
            for b in self.usses:
                if a is not b:
                    a.add_peer(b.site)
        # steady-state churn: each tick, a deterministic 1% of users run
        # jobs on their home site (offset keeps churn strictly between
        # exchange ticks, identically in both configurations)
        self.churn_rng = np.random.default_rng(seed + 1)
        self.engine.periodic(EXCHANGE_INTERVAL, self._churn,
                             start_offset=WARMUP_TICKS * EXCHANGE_INTERVAL + 11.0)

    def _churn(self) -> None:
        now = self.engine.now
        n = max(1, int(self.n_users * CHURN_FRACTION))
        users = self.churn_rng.choice(self.n_users, size=n, replace=False)
        durations = self.churn_rng.uniform(5.0, 600.0, size=n)
        for u, d in zip(users, durations):
            uss = self.usses[int(u) % len(self.usses)]
            uss.local.add_charge(f"u{int(u)}", now - float(d), now)

    def run_phase(self, ticks: int) -> float:
        """Advance ``ticks`` exchange/refresh rounds; returns wall seconds."""
        horizon = self.engine.now + ticks * EXCHANGE_INTERVAL
        t0 = time.perf_counter()
        self.engine.run_until(horizon)
        return time.perf_counter() - t0


def run_mode(n_sites: int, n_users: int, delta: bool) -> dict:
    grid = Grid(n_sites, n_users, delta=delta)
    grid.run_phase(WARMUP_TICKS)                # propagate initial snapshots
    warm = grid.network.stats.snapshot()        # phase boundary: measure only
    wall = grid.run_phase(MEASURE_TICKS)        # steady state under churn
    steady = grid.network.stats.snapshot()
    return dict(
        mode="delta" if delta else "full",
        n_sites=n_sites, n_users=n_users,
        ticks=MEASURE_TICKS,
        tick_s=wall / MEASURE_TICKS,
        bytes_per_tick=(steady["payload_bytes"]
                        - warm["payload_bytes"]) / MEASURE_TICKS,
        entries_per_tick=(steady["payload_entries"]
                          - warm["payload_entries"]) / MEASURE_TICKS,
        messages_per_tick=(steady["sent"] - warm["sent"]) / MEASURE_TICKS,
        totals={u.site: u.usage_totals() for u in grid.umses},
    )


@pytest.fixture(scope="module")
def exchange_rows(report):
    n_sites, n_users = scale_tier()
    full = run_mode(n_sites, n_users, delta=False)
    delta = run_mode(n_sites, n_users, delta=True)
    rows = [full, delta]
    reduction = dict(
        bytes=full["bytes_per_tick"] / max(delta["bytes_per_tick"], 1e-12),
        entries=full["entries_per_tick"] / max(delta["entries_per_tick"], 1e-12),
        tick=full["tick_s"] / max(delta["tick_s"], 1e-12),
    )
    block = [f"\n== exchange scaling ({n_sites} sites x {n_users} users, "
             f"{MEASURE_TICKS} steady-state ticks) =="] + [
        f"{r['mode']:>6}: {r['bytes_per_tick'] / 1e3:10.1f} KB/tick  "
        f"{r['entries_per_tick']:10.0f} entries/tick  "
        f"tick {r['tick_s'] * 1e3:8.1f} ms"
        for r in rows] + [
        f"reduction: bytes {reduction['bytes']:.1f}x  "
        f"entries {reduction['entries']:.1f}x  "
        f"tick latency {reduction['tick']:.1f}x"]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="exchange_scaling",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             n_sites=n_sites, n_users=n_users,
             gate=dict(min_bytes_reduction=GATE_BYTES_REDUCTION,
                       min_speedup=GATE_SPEEDUP),
             rows=[{k: v for k, v in r.items() if k != "totals"}
                   for r in rows],
             reduction=reduction),
        indent=2) + "\n")
    return rows, reduction


class TestExchangeScaling:
    def test_bytes_on_wire_reduction_gate(self, exchange_rows):
        _, reduction = exchange_rows
        assert reduction["bytes"] >= GATE_BYTES_REDUCTION, (
            f"delta exchange only cut steady-state bytes-on-wire by "
            f"{reduction['bytes']:.1f}x (need >= {GATE_BYTES_REDUCTION}x)")

    def test_tick_latency_speedup_gate(self, exchange_rows):
        _, reduction = exchange_rows
        assert reduction["tick"] >= GATE_SPEEDUP, (
            f"incremental data plane only {reduction['tick']:.1f}x faster "
            f"per exchange+refresh tick (need >= {GATE_SPEEDUP}x)")

    def test_delta_totals_match_full_reference(self, exchange_rows):
        """Same churn, same clock: both planes must agree on every user."""
        rows, _ = exchange_rows
        full, delta = rows
        for site, ref_totals in full["totals"].items():
            got_totals = delta["totals"][site]
            users = set(ref_totals) | set(got_totals)
            for user in users:
                ref = ref_totals.get(user, 0.0)
                got = got_totals.get(user, 0.0)
                assert got == pytest.approx(ref, rel=1e-6, abs=1e-6), (
                    f"{site}/{user}: delta plane {got} != reference {ref}")

    def test_json_artifact_written(self, exchange_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "exchange_scaling"
        assert {r["mode"] for r in data["rows"]} == {"full", "delta"}
