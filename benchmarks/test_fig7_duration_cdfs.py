"""F7 — Figure 7: empirical job-duration ("job size") CDFs per user.

Paper claims: the trace is exclusively single-core bag-of-task jobs; the
duration distributions of U65, U3, and Uoth concentrate in [0, 6e5] s,
while "U30 exhibits a larger tail and generally exhibits larger job sizes".
"""

import numpy as np

from repro.experiments.modeling import figure7_series


def test_fig7_duration_cdfs(benchmark, emit, modeling_dataset):
    fig = benchmark.pedantic(figure7_series, args=(modeling_dataset,),
                             rounds=1, iterations=1)
    rows = []
    for user, series in fig.items():
        x, y = series["empirical_x"], series["empirical_y"]
        quartiles = [float(np.interp(q, y, x)) for q in (0.25, 0.5, 0.75, 0.95)]
        rows.append(f"{user:<5} q25={quartiles[0]:>9.0f}s  "
                    f"median={quartiles[1]:>9.0f}s  q75={quartiles[2]:>9.0f}s  "
                    f"q95={quartiles[3]:>9.0f}s  "
                    f"below 6e5 s: {series['fraction_below_6e5']:.1%}")
    emit("Figure 7 - duration CDFs per user", rows)

    # all jobs single-core
    assert all(j.cores == 1 for j in modeling_dataset.labeled)

    # U65/U3/Uoth concentrated in [0, 6e5]
    for user in ("U65", "U3", "Uoth"):
        assert fig[user]["fraction_below_6e5"] > 0.95, user

    # U30: larger tail, generally larger jobs
    assert fig["U30"]["p99"] > max(fig[u]["p99"] for u in ("U65", "U3", "Uoth"))
    medians = {u: float(np.interp(0.5, s["empirical_y"], s["empirical_x"]))
               for u, s in fig.items()}
    assert medians["U30"] == max(medians.values())

    # U3 jobs are by far the shortest (bursty-test premise)
    assert medians["U3"] < medians["U65"] / 50
