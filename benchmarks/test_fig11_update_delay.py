"""F11 — Figure 11: impact of update delay.

Paper method: scale the baseline up ten times in arrival times and
durations (same jobs, same internal relations) while the system's update
and processing delays keep their absolute lengths — making them relatively
a magnitude shorter.

Paper claim: the relatively-shorter delays "contribute to a 10%-15% shorter
convergence time compared with the baseline case", eliminating update
delays as a significant error source at the compressed scale.

Shape check: convergence is measured on the decayed usage-share deviation
(the signal the fairshare loop controls; the cumulative-share convergence
point swings tens of percent between time-dilated but otherwise identical
runs and cannot resolve a 10% effect).  The scaled run must converge
earlier as a fraction of the test length, with a relative improvement in a
band around the paper's 10-15% (our simulated delay chain sums to ~2% of
the run, at the short end of what the real web-service deployment incurs).
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import baseline, update_delay


def test_fig11_update_delay(benchmark, emit, scenario_cache):
    scale = bench_scale()

    def run():
        base = scenario_cache.get("baseline")
        if base is None:
            base = baseline(seed=0, **scale)
            scenario_cache["baseline"] = base
        return update_delay(seed=0, time_scale=10.0, baseline_result=base,
                            **scale)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    scenario_cache["update_delay"] = cmp

    emit("Figure 11 - update delay impact (10x time scale)", [
        f"baseline:  decayed-share convergence at "
        f"{cmp.baseline.decayed_convergence_seconds / 60:.0f} min"
        f" = {cmp.baseline_fraction:.1%} of the run",
        f"10x scale: decayed-share convergence at "
        f"{cmp.scaled.decayed_convergence_seconds / 60:.0f} min"
        f" = {cmp.scaled_fraction:.1%} of the run",
        f"relative improvement: {cmp.improvement:.1%}"
        f"   (paper: 10% - 15%)",
    ])

    assert cmp.baseline_fraction is not None
    assert cmp.scaled_fraction is not None
    if bench_scale()["n_jobs"] >= 43_200:
        # delays relatively 10x shorter => earlier normalized convergence;
        # a band around the paper's 10-15% (our delay chain is shorter than
        # the original web-service deployment's)
        assert cmp.scaled_fraction < cmp.baseline_fraction
        assert 0.01 <= cmp.improvement <= 0.35
    else:
        # the quick pass only checks both runs converge; the delay effect
        # is resolvable only at paper scale
        assert cmp.scaled_fraction < 1.0
