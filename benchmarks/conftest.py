"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the paper's
scale (DESIGN.md Section 4 maps IDs to files) and prints its rows/series
next to the published values (run with ``-s`` to see them; each bench also
appends to ``benchmarks/results.txt``).

Scenario runs are expensive (the baseline is the paper's full 43,200-job,
six-hour, six-cluster test), so results are cached per session: the bench
that owns an experiment times it via ``benchmark.pedantic(rounds=1)``, and
dependent benches reuse the cached result.
"""

import os
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"

#: Paper-scale parameters; set REPRO_BENCH_SCALE=small for a quick pass.
_SCALES = {
    "paper": dict(n_jobs=43_200, span=21_600.0, n_sites=6, hosts_per_site=40),
    "small": dict(n_jobs=6_000, span=3_600.0, n_sites=2, hosts_per_site=20),
}


def bench_scale():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def modeling_n_jobs():
    return 60_000 if os.environ.get("REPRO_BENCH_SCALE", "paper") == "paper" \
        else 15_000


@pytest.fixture(scope="session")
def scenario_cache():
    """Cross-bench cache: scenario name -> result object."""
    return {}


@pytest.fixture(scope="session")
def report():
    """Collects rendered tables; written to results.txt at session end."""
    lines = []
    yield lines
    if lines:
        RESULTS_PATH.write_text("\n".join(lines) + "\n")


@pytest.fixture
def emit(report):
    """Print a block and append it to the results file."""

    def _emit(title, rows):
        block = [f"\n== {title} =="] + [str(r) for r in rows]
        for line in block:
            print(line)
        report.extend(block)

    return _emit


@pytest.fixture(scope="session")
def modeling_dataset():
    from repro.experiments.modeling import prepare_dataset

    return prepare_dataset(n_jobs=modeling_n_jobs(), seed=0)


@pytest.fixture(scope="session")
def table2_rows(modeling_dataset):
    from repro.experiments.modeling import regenerate_table2

    return regenerate_table2(modeling_dataset, subsample=8000)
