"""E-SMOOTH — factor smoothing (Section IV-A prose).

Paper claim: "other factors have a smoothing effect (with impact relative
to their weight) on the fluctuating behavior natural to fairshare."

Shape check: combined-priority fluctuation scales with the fairshare
weight's fraction of the total — adding an equal-weight age factor roughly
halves it; a 3x age weight cuts it to roughly a quarter.
"""

import pytest

from repro.experiments.smoothing import smoothing_experiment


def test_smoothing_factors(benchmark, emit):
    runs = benchmark.pedantic(smoothing_experiment, rounds=1, iterations=1)
    emit("Factor smoothing (impact relative to weight)",
         [r.row() for r in runs])

    fairshare_only = runs[0]
    assert fairshare_only.fairshare_weight_fraction == 1.0
    assert fairshare_only.mean_fluctuation > 0.0

    # fluctuation shrinks monotonically as the fairshare weight dilutes ...
    flucts = [r.mean_fluctuation for r in runs]
    assert flucts == sorted(flucts, reverse=True)

    # ... proportionally to the weight fraction ("impact relative to their
    # weight"): fluctuation ratio tracks the weight-fraction ratio (the
    # wide tolerance absorbs the residual age-detrending interaction)
    for run in runs[1:]:
        expected = run.fairshare_weight_fraction
        observed = run.mean_fluctuation / fairshare_only.mean_fluctuation
        assert 0.4 * expected <= observed <= 1.6 * expected
