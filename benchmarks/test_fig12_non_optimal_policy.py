"""F12 — Figure 12: the non-optimal policy test.

Paper setup: baseline workload, but policy targets of 70% (U65), 20% (U30),
8% (U3), 2% (Uoth) — deliberately misaligned with the trace's actual
65.25/30.49/2.86/1.40 usage mix.

Paper claims checked:
* the system is close to balance mid-run while U65 jobs are plentiful,
* balance cannot be held when U65's submissions dry up between phases,
* U30 jobs keep running despite receiving a lower priority ("to maximize
  utilization these jobs are run"), so utilization is preserved,
* U30 ends up over its 20% target and consequently carries the lowest
  priority; U3 stays under its inflated 8% target and carries a high one.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import NON_OPTIMAL_TARGETS, non_optimal_policy
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES


def test_fig12_non_optimal_policy(benchmark, emit, scenario_cache):
    scale = bench_scale()
    result = benchmark.pedantic(non_optimal_policy, kwargs=dict(seed=0, **scale),
                                rounds=1, iterations=1)
    scenario_cache["non_optimal"] = result

    rows = list(result.summary_rows())
    dev = result.series("share_deviation")
    rows.append("")
    rows.append(f"{'min':>5} {'deviation':>10} {'U65 prio':>9} {'U30 prio':>9} "
                f"{'U3 prio':>9}")
    step = max(1, len(dev.times) // 14)
    for i in range(0, len(dev.times), step):
        t = dev.times[i]
        rows.append(
            f"{t / 60:>5.0f} {dev.values[i]:>10.4f} "
            f"{result.priority_series(GRID_IDENTITIES['U65']).at(t):>9.3f} "
            f"{result.priority_series(GRID_IDENTITIES['U30']).at(t):>9.3f} "
            f"{result.priority_series(GRID_IDENTITIES['U3']).at(t):>9.3f}")
    emit("Figure 12 - non-optimal policy (70/20/8/2)", rows)

    span = result.config.span

    # mid-run the system approaches the imposed policy (Figure 12: close to
    # balance in the 120-180 minute band of the 360-minute run)
    mid = [v for t, v in zip(dev.times, dev.values)
           if span / 3 <= t <= span / 2]
    assert min(mid) < 0.05

    # balance cannot be *held*: the workload's real mix (65/30) wins in the
    # end, so the final deviation from the 70/20/8/2 policy stays visible
    assert dev.values[-1] > 0.015

    # utilization is preserved by running whatever is available
    assert result.series("utilization").tail_mean(0.5) > 0.85

    # U30 runs beyond its 20% target despite lowest priority
    u30_share = result.final_shares[GRID_IDENTITIES["U30"]]
    assert u30_share > 0.25
    tail = 0.3
    prio = {u: result.priority_series(GRID_IDENTITIES[u]).tail_mean(tail)
            for u in USAGE_SHARES}
    assert prio["U30"] == min(prio.values())

    # U3's inflated 8% target keeps it underserved and high-priority
    assert result.final_shares[GRID_IDENTITIES["U3"]] < 0.06
    assert prio["U3"] == max(prio.values())
