"""F3 — Figure 3: fairshare tree -> fairshare vectors.

The figure extracts per-user vectors (value range 0-9999) from a tree with
users at different depths; the path that ends early (/LQ) is padded with
the balance point (the center of the range).  We rebuild the figure's
structure and verify the extraction rules and the resulting ordering.
"""

import pytest

from repro.core.distance import FairshareParameters
from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.vector import FairshareVector


def build_vectors():
    # Figure 3 style: /LQ is a user directly under the root; /HPC and /SWE
    # are groups with users below them.
    policy = PolicyTree.from_dict({
        "LQ": 1,
        "HPC": (1, {"u1": 1, "u2": 1}),
        "SWE": (1, {"proj": (1, {"u3": 1})}),
    })
    usage = {"/LQ": 100.0, "/HPC/u1": 300.0, "/HPC/u2": 20.0,
             "/SWE/proj/u3": 80.0}
    params = FairshareParameters(k=0.5, resolution=9999)
    tree = compute_fairshare_tree(policy, per_user_usage=usage,
                                  parameters=params)
    return tree, tree.vectors()


def test_fig3_vectors(benchmark, emit):
    tree, vectors = benchmark.pedantic(build_vectors, rounds=1, iterations=1)
    rows = []
    max_depth = max(v.depth for v in vectors.values())
    for path, vec in sorted(vectors.items()):
        padded = ".".join(f"{int(round(e)):04d}" for e in vec.padded(max_depth))
        rows.append(f"{path:<14} {padded}")
    emit("Figure 3 - fairshare vectors (resolution 0-9999)", rows)

    # vectors have one element per hierarchy level
    assert vectors["/LQ"].depth == 1
    assert vectors["/HPC/u1"].depth == 2
    assert vectors["/SWE/proj/u3"].depth == 3

    # the short path pads with the balance point = center of the range
    lq = vectors["/LQ"]
    assert lq.balance_point == pytest.approx(4999.5)
    assert lq.padded(3)[1:] == (4999.5, 4999.5)

    # elements live in the configured range
    for vec in vectors.values():
        for e in vec.elements:
            assert 0.0 <= e <= 9999.0

    # lexicographic ordering: underserved u2 ranks above overserved u1
    assert vectors["/HPC/u2"] > vectors["/HPC/u1"]

    # vector comparison across different depths works via padding
    ranking = sorted(vectors, key=lambda p: vectors[p], reverse=True)
    assert ranking.index("/HPC/u2") < ranking.index("/HPC/u1")
