"""T1 — Table I: projection property matrix.

Paper claim: fairshare vectors keep infinite depth, infinite precision,
subgroup isolation, and proportionality but are not combinable; dictionary
ordering gives up proportionality; bitwise gives up depth and precision;
percental gives up subgroup isolation.  Each cell is probed empirically
with constructed cases (see ``repro.experiments.projections``).
"""

from repro.experiments.projections import PAPER_TABLE1, regenerate_table1


def test_table1_property_matrix(benchmark, emit):
    rows = benchmark.pedantic(regenerate_table1, rounds=1, iterations=1)
    header = f"{'algorithm':<12} " + " ".join(
        f"{p:>13}" for p in ("depth", "precision", "isolation",
                             "proportional", "combinable"))
    rendered = [header]
    for row in rows:
        paper = PAPER_TABLE1[row.name]
        cells = []
        for prop in ("depth", "precision", "isolation", "proportional",
                     "combinable"):
            got = "Y" if row.properties[prop] else "x"
            want = "Y" if paper[prop] else "x"
            cells.append(f"{got}(paper {want})")
        rendered.append(f"{row.name:<12} " + " ".join(f"{c:>13}" for c in cells))
    emit("Table I - projection properties (probed vs paper)", rendered)

    for row in rows:
        assert row.properties == PAPER_TABLE1[row.name], \
            f"{row.name} property matrix deviates from the paper"
