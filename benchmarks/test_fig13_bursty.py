"""F13 — Figure 13: the bursty usage test.

Paper setup: U3's submission rate boosted to 45.5% of jobs (deducted from
U65), burst shifted to start after one third of the run; resulting usage
shares 47 / 38.5 / 12 / 2.5 %.

Paper claims checked:
* with k = 0.5 and U3's 12% share, U3's priority is capped at
  0.5 * (1 + 0.12) = 0.56 (Figure 13b), and it sits near that cap while
  its allocation is unused,
* the system converges toward balance before the burst, with U3's unused
  allocation divided between the other users,
* when the burst lands (~1/3 into the run) the system readjusts toward the
  target shares (Figure 13a).
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import bursty
from repro.workload.reference import BURSTY_USAGE_SHARES, GRID_IDENTITIES


def test_fig13_bursty(benchmark, emit, scenario_cache):
    scale = bench_scale()
    result = benchmark.pedantic(bursty, kwargs=dict(seed=0, **scale),
                                rounds=1, iterations=1)
    scenario_cache["bursty"] = result

    span = result.config.span
    u3 = GRID_IDENTITIES["U3"]
    rows = list(result.summary_rows())
    rows.append("")
    rows.append(f"{'min':>5} {'U3 prio':>8} {'U3 share':>9} {'deviation':>10}")
    prio = result.priority_series(u3)
    share = result.usage_share_series(u3)
    dev = result.series("share_deviation")
    step = max(1, len(prio.times) // 16)
    for i in range(0, len(prio.times), step):
        t = prio.times[i]
        rows.append(f"{t / 60:>5.0f} {prio.values[i]:>8.3f} "
                    f"{share.at(t):>9.3f} {dev.at(t):>10.4f}")
    emit("Figure 13 - bursty usage test", rows)

    # Figure 13b: the 0.56 cap from k=0.5 and the 12% share
    assert max(prio.values) <= 0.5 * (1.0 + 0.12) + 1e-9
    pre_burst = [v for t, v in zip(prio.times, prio.values) if t < span / 3]
    assert max(pre_burst) > 0.53  # pinned near the cap while unused

    # before the burst, U3's unused allocation is divided among the others:
    # their combined share reaches ~100%
    pre_share = share.at(span / 3 - 1.0)
    assert pre_share < 0.02

    # the burst lands after one third of the run and the system readjusts
    post_share = share.values[-1]
    assert post_share == pytest.approx(BURSTY_USAGE_SHARES["U3"], abs=0.05)
    post_prio = [v for t, v in zip(prio.times, prio.values) if t > 0.8 * span]
    assert min(post_prio) < 0.45  # priority falls once usage accumulates

    # final shares approach the published 47/38.5/12/2.5 mix
    for user, target in BURSTY_USAGE_SHARES.items():
        got = result.final_shares[GRID_IDENTITIES[user]]
        assert got == pytest.approx(target, abs=0.07), user
