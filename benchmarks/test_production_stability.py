"""E-PROD — production deployment stability (Section IV opening).

Paper report: Aequus deployed alongside SLURM 2.4.3 at HPC2N on 68 nodes /
544 cores since the start of 2013, executing about 40,000 jobs per month;
"the system has shown to be stable and the transition from using local
fairshare to global fairshare as performed by Aequus has had no noticeable
impact on the performance or the stability of the cluster".

Shape checks: months-long simulated run at production scale completes the
expected jobs/month without starvation and with bounded, responsive
priorities; switching local->Aequus fairshare moves per-user usage shares
and throughput only marginally.
"""

import os

import pytest

from repro.experiments.production import run_production, run_production_comparison


def _months():
    return 3.0 if os.environ.get("REPRO_BENCH_SCALE", "paper") == "paper" else 1.0


def _jobs_per_month():
    # 40,000 jobs/month at paper scale; reduced for the quick pass
    return 40_000 if os.environ.get("REPRO_BENCH_SCALE", "paper") == "paper" \
        else 4_000


def test_production_stability(benchmark, emit):
    months, jpm = _months(), _jobs_per_month()
    res = benchmark.pedantic(
        run_production, kwargs=dict(months=months, seed=0,
                                    jobs_per_month=jpm),
        rounds=1, iterations=1)

    emit("Production stability (HPC2N-scale)", res.summary_rows())

    # throughput at the expected jobs/month level
    assert res.jobs_per_month > 0.9 * jpm
    # no starvation: every user completes jobs every month
    assert res.starvation_free()
    # priorities bounded and responsive
    for user, (lo, hi) in res.priority_bounds.items():
        assert 0.0 <= lo <= hi <= 1.0
    assert any(hi - lo > 0.05 for lo, hi in res.priority_bounds.values())


def test_local_to_aequus_transition(benchmark, emit):
    months = 1.0
    jpm = min(_jobs_per_month(), 8_000)
    cmp = benchmark.pedantic(
        run_production_comparison,
        kwargs=dict(months=months, seed=0, jobs_per_month=jpm),
        rounds=1, iterations=1)
    local, aequus = cmp["local"], cmp["aequus"]

    rows = [f"{'user':<6} {'local share':>12} {'aequus share':>13} {'|diff|':>8}"]
    for user in sorted(local.per_user_shares):
        a = local.per_user_shares[user]
        b = aequus.per_user_shares[user]
        rows.append(f"{user:<6} {a:>12.3f} {b:>13.3f} {abs(a - b):>8.4f}")
    rows.append(f"jobs/month: local {local.jobs_per_month:.0f}, "
                f"aequus {aequus.jobs_per_month:.0f}")
    rows.append(f"utilization: local {local.mean_utilization:.1%}, "
                f"aequus {aequus.mean_utilization:.1%}")
    emit("Local -> Aequus transition ('no noticeable impact')", rows)

    # the transition claim: per-user shares agree closely
    for user in local.per_user_shares:
        assert abs(local.per_user_shares[user]
                   - aequus.per_user_shares[user]) < 0.05, user
    # throughput and utilization unaffected
    assert aequus.jobs_per_month == pytest.approx(local.jobs_per_month, rel=0.05)
    assert aequus.mean_utilization == pytest.approx(local.mean_utilization,
                                                    abs=0.05)
