"""F-PART — partial cluster participation (Section IV-A.4).

Paper setup: of six sites, one only reads global usage data but does not
contribute; another contributes data but only considers local data for job
prioritization.

Paper claims checked:
* "the priority on the site reading global data remains well aligned with
  the priority of fully participating sites";
* "the site that only considers local data for scheduling converges
  towards the same priority levels but at a slower pace and with more
  fluctuations";
* "the data from this site act as noise for the other sites, but this
  noise does not have a noticeable impact on the global fairshare
  prioritization".
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import partial_participation
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES


def test_partial_participation(benchmark, emit, scenario_cache):
    scale = dict(bench_scale())
    # this scenario needs full sites besides the read-only/local-only pair
    scale["n_sites"] = max(4, scale["n_sites"])
    outcome = benchmark.pedantic(partial_participation,
                                 kwargs=dict(seed=0, **scale),
                                 rounds=1, iterations=1)
    scenario_cache["partial"] = outcome
    result = outcome.result

    rows = list(result.summary_rows())
    rows.append("")
    rows.append(f"{'user':<6} {'read-only gap':>14} {'local-only gap':>15} "
                f"{'ro fluct':>9} {'lo fluct':>9} {'full fluct':>10}")
    ro_gaps, lo_gaps = {}, {}
    for name, dn in GRID_IDENTITIES.items():
        ro_gaps[name] = outcome.priority_alignment(dn, outcome.read_only_site)
        lo_gaps[name] = outcome.priority_alignment(dn, outcome.local_only_site)
        ro_f = outcome.fluctuation(dn, outcome.read_only_site)
        lo_f = outcome.fluctuation(dn, outcome.local_only_site)
        full_f = sum(outcome.fluctuation(dn, s) for s in outcome.full_sites) \
            / len(outcome.full_sites)
        rows.append(f"{name:<6} {ro_gaps[name]:>14.4f} {lo_gaps[name]:>15.4f} "
                    f"{ro_f:>9.4f} {lo_f:>9.4f} {full_f:>10.4f}")
    emit("Partial participation (Section IV-A.4)", rows)

    # the read-only site tracks the fully participating sites closely
    for name, gap in ro_gaps.items():
        assert gap < 0.06, f"{name}: read-only site misaligned ({gap:.3f})"

    # the local-only site is less aligned (slower, noisier convergence)
    assert sum(lo_gaps.values()) > sum(ro_gaps.values())

    # ... but the global prioritization is not noticeably impacted:
    # shares still converge and utilization holds
    assert result.series("share_deviation").values[-1] < 0.04
    assert result.series("utilization").tail_mean(0.5) > 0.85
    for user, target in USAGE_SHARES.items():
        got = result.final_shares[GRID_IDENTITIES[user]]
        assert got == pytest.approx(target, abs=0.06), user
