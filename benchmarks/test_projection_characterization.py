"""E-CHAR — in-depth projection characterization (Section III-C future work).

The paper defers "in-depth evaluation, characterization, and fine tuning"
of the projection algorithms to future work; this bench performs it over
randomized fairshare trees, quantifying the Table I trade-offs:

* order fidelity vs the true lexicographic vector order (the vector-factor
  alternative of ``repro.core.vectorfactors`` is 1.0 by construction);
* proportionality distortion against the per-node balance score (the
  quantity the vector elements encode);
* isolation violations under cross-group perturbations.

Expected shape: dictionary and bitwise are order-perfect on realistic
trees but dictionary flattens proportionality (rank spacing); percental
loses both order fidelity and isolation (its products mix levels), which
is exactly why the paper calls no projection lossless.
"""

from repro.experiments.characterization import characterize_projections


def test_projection_characterization(benchmark, emit):
    results = benchmark.pedantic(characterize_projections,
                                 kwargs=dict(seed=0, n_trees=60),
                                 rounds=1, iterations=1)
    emit("Projection characterization (randomized trees)",
         [r.row() for r in results])
    by_name = {r.name: r for r in results}

    # dictionary: perfect ordering, heavy proportionality distortion
    assert by_name["dictionary"].order_fidelity == 1.0
    assert by_name["dictionary"].isolation_violations == 0.0
    assert by_name["dictionary"].proportionality_error > 0.5

    # bitwise: order-perfect at realistic resolution, nearly proportional
    assert by_name["bitwise"].order_fidelity > 0.999
    assert by_name["bitwise"].isolation_violations == 0.0
    assert by_name["bitwise"].proportionality_error < 0.05

    # percental: breaks subgroup isolation and with it order fidelity
    assert by_name["percental"].isolation_violations > 0.3
    assert by_name["percental"].order_fidelity < 0.95
    # but stays far more proportional than rank spacing
    assert by_name["percental"].proportionality_error < \
        by_name["dictionary"].proportionality_error
