"""F6 — Figure 6: arrival CDFs, fitted vs empirical, per user.

Paper claims: thin (fitted) lines track thick (empirical) lines closely for
all users; the worst fit is U3, whose usage burst no single distribution
fully captures.
"""

import numpy as np

from repro.experiments.modeling import figure6_series
from repro.workload.fitting import ks_statistic


def test_fig6_arrival_cdfs(benchmark, emit, modeling_dataset, table2_rows):
    fig = benchmark.pedantic(
        figure6_series, args=(modeling_dataset,),
        kwargs={"table2": table2_rows}, rounds=1, iterations=1)

    rows = []
    gaps = {}
    for user, series in fig.items():
        x, y = series["empirical_x"], series["empirical_y"]
        grid, fitted = series["grid"], series["fitted_cdf"]
        # max vertical gap between empirical and fitted CDF on the grid
        emp_on_grid = np.searchsorted(x, grid, side="right") / x.size
        gap = float(np.max(np.abs(emp_on_grid - fitted)))
        gaps[user] = gap
        rows.append(f"{user:<5} max |ECDF - fitted CDF| = {gap:.3f}")
        for q in (0.25, 0.5, 0.75):
            idx = int(q * (len(grid) - 1))
            rows.append(f"      day {grid[idx] / 86400:>5.1f}: "
                        f"empirical {emp_on_grid[idx]:.2f} "
                        f"fitted {fitted[idx]:.2f}")
    emit("Figure 6 - arrival CDFs, fitted vs empirical", rows)

    # every fit tracks its empirical CDF (paper KS range: 0.02 - 0.15)
    for user, gap in gaps.items():
        assert gap < 0.2, f"{user}: fitted CDF diverges ({gap:.3f})"

    # fitted CDFs are monotone and reach ~1 at the data's end
    for user, series in fig.items():
        fitted = series["fitted_cdf"]
        assert np.all(np.diff(fitted) >= -1e-9)
        assert fitted[-1] > 0.9
