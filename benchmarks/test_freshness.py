"""Freshness benchmark: staleness bound, partition recovery, overhead gate.

Drives a four-site full-mesh grid with continuous usage churn and measures
the end-to-end update delay the causal freshness plane reports (DESIGN.md
§10): the per-origin usage horizons captured USS -> UMS -> FCS.

Three claims are gated:

1. **Steady state** — every site's view of every remote origin stays within
   ~one exchange interval end-to-end: the horizon observed at each FCS
   refresh lags the origin's clock by at most
   ``exchange + ums_refresh + fcs_refresh + 2*latency`` (each layer holds
   its capture for up to one interval; the wire adds latency twice —
   publish and, after a gap, resync).  The exported
   ``aequus_snapshot_staleness_seconds`` histogram must account for at
   least as many observations as the refresh listener saw.
2. **Partition** — cutting one USS link stalls exactly that origin's
   horizon (staleness grows with wall time), and after healing the seq-gap
   triggered ``UsageResyncRequest`` restores it to the steady-state bound
   within two exchange intervals.
3. **Overhead** — two gates over four grids advancing in lock-step:
   the evaluation plane (freshness series + an attached
   :class:`FairnessRecorder`) must add < ``REPRO_OBS_MAX_OVERHEAD``
   (default 5%) wall time on top of the obs-instrumented grid, and a
   grid built with observability disabled (``obs.set_enabled(False)``,
   the in-process equivalent of ``REPRO_OBS_DISABLED=1``) must restore
   baseline cost *even with a recorder attached* — the kill switch
   quiets the recorder too.  (The instrumentation layer's own < 5% gate
   lives in ``test_obs_overhead.py`` at denominators sized for it.)
   All grids live for the whole measurement, so every timed pass pair
   does identical virtual work at the same histogram age; the gated
   figure is the *median* of the paired wall-time ratios, which sheds
   the scheduler-noise outliers a best-of protocol can't.

Results land in ``benchmarks/BENCH_freshness.json`` (and results.txt); set
``REPRO_BENCH_SCALE=small`` for the smoke tier.
"""

import gc
import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.usage import UsageRecord
from repro.obs.evaluate import FairnessRecorder, parse_exposition
from repro.obs.export import render
from repro.serve.daemon import build_grid_policy
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine

JSON_PATH = Path(__file__).parent / "BENCH_freshness.json"

#: (sites, users) per scale tier
_SCALES = {"paper": (4, 2000), "small": (4, 500)}

GATE_MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", 0.05))

EXCHANGE = 30.0               #: USS delta-exchange interval
UMS = 10.0                    #: UMS refresh interval
FCS = 10.0                    #: FCS refresh interval
LATENCY = 0.1                 #: one-way network latency
CHURN = 3.0                   #: one job recorded somewhere every CHURN s
#: worst-case end-to-end lag: each layer holds its capture for one full
#: interval, the wire adds latency on publish and on resync; +1s slack for
#: same-tick event ordering
BOUND = EXCHANGE + UMS + FCS + 2 * LATENCY + 1.0

WARMUP = 2 * EXCHANGE         #: virtual seconds before sampling starts
STEADY_SPAN = 600.0           #: steady-state observation window
PARTITION_SPAN = 200.0        #: link-cut duration (>> BOUND so the stall
                              #: is unambiguous)
RECOVERY_SPAN = 2 * EXCHANGE + UMS + FCS + 5.0
PAIR_SPAN = 300.0             #: virtual seconds per timed pass
PAIRS = 12                    #: lock-step pass sets per grid


def scale_tier():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def _build_grid(n_sites, n_users):
    engine = SimulationEngine()
    network = Network(engine, base_latency=LATENCY)
    policy = build_grid_policy(n_users, seed=0)
    config = SiteConfig(histogram_interval=60.0,
                        uss_exchange_interval=EXCHANGE,
                        ums_refresh_interval=UMS,
                        fcs_refresh_interval=FCS)
    sites = [AequusSite(f"s{i}", engine, network, policy=policy,
                        config=config) for i in range(n_sites)]
    connect_sites(sites)
    return engine, network, sites


def _attach_churn(engine, sites, n_users):
    """Rotating per-site job stream: every exchange window carries fresh
    dirty users, so deltas flow and no refresh hits the cached-epoch
    fast path for long."""
    state = {"n": 0}

    def tick():
        state["n"] += 1
        site = sites[state["n"] % len(sites)]
        user = f"u{(state['n'] * 13) % n_users}"
        now = engine.now
        site.uss.record_job(UsageRecord(user=user, site=site.name,
                                        start=now, end=now + 60.0))

    engine.periodic(CHURN, tick, start_offset=CHURN)


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _run_freshness_phases(n_sites, n_users):
    """Steady-state staleness sweep, then partition/heal, on one grid."""
    engine, network, sites = _build_grid(n_sites, n_users)
    _attach_churn(engine, sites, n_users)
    engine.run_for(WARMUP)

    samples = {}  # (site, origin) -> [staleness at each FCS refresh]
    for site in sites:
        def listener(fcs, name=site.name):
            now = fcs.engine.now
            for origin, horizon in fcs.usage_horizons().items():
                if origin != name:
                    samples.setdefault((name, origin), []).append(
                        now - horizon)
        site.fcs.add_refresh_listener(listener, fire_now=False)
    engine.run_for(STEADY_SPAN)

    flat = [s for pair in samples.values() for s in pair]
    steady = dict(
        pairs=len(samples), samples=len(flat),
        expected_pairs=n_sites * (n_sites - 1),
        max=max(flat), mean=sum(flat) / len(flat),
        p99=_percentile(flat, 0.99), bound=BOUND)

    # the continuously exported Fig. 11 distribution must account for at
    # least the steady-window observations of the same (site, origin) pair
    exposition = parse_exposition(render(sites[0].registry))
    counts = {labels["origin"]: value for name, labels, value in exposition
              if name == "aequus_snapshot_staleness_seconds_count"}
    steady["exposition_count"] = counts.get(sites[1].name, 0.0)
    steady["listener_count"] = len(samples[(sites[0].name, sites[1].name)])

    # partition s0 <-> s1: only that origin's horizon stalls at s0
    network.partition("uss:s0", "uss:s1")
    partitioned_at = engine.now
    engine.run_for(PARTITION_SPAN)
    horizons = sites[0].fcs.usage_horizons()
    stalled = engine.now - horizons["s1"]
    witness = engine.now - horizons["s2"]

    network.heal("uss:s0", "uss:s1")
    engine.run_for(RECOVERY_SPAN)
    recovered = engine.now - sites[0].fcs.usage_horizons()["s1"]
    partition = dict(
        span=PARTITION_SPAN, stalled=stalled, witness=witness,
        recovered=recovered, recovery_span=RECOVERY_SPAN,
        resyncs_requested=sites[0].uss.resyncs_requested,
        resyncs_served=sites[1].uss.resyncs_served,
        partitioned_at=partitioned_at)

    for site in sites:
        site.stop()
    return steady, partition


def _in_mode(enabled, fn, *args):
    """Run ``fn`` with the obs default toggled; fresh stacks inside ``fn``
    inherit the flag.  Always restores the previous default."""
    previous = obs.default_enabled()
    obs.set_enabled(enabled)
    try:
        return fn(*args)
    finally:
        obs.set_enabled(previous)


def _boot_grid(n_sites, n_users, with_recorder):
    engine, _, sites = _build_grid(n_sites, n_users)
    _attach_churn(engine, sites, n_users)
    if with_recorder:
        FairnessRecorder(sites, interval=FCS).attach(engine)
    engine.run_for(WARMUP)
    return engine, sites


def _measure_overhead(n_sites, n_users):
    """Median paired wall-time ratios of four grids advancing in lock-step.

    Per-user histograms grow with virtual time, so a grid's pass cost
    rises as it ages — comparing fresh boots across trials confounds age
    with mode.  Instead every grid advances ``PAIR_SPAN`` in turn and
    each pass set is compared at identical virtual age; the median ratio
    sheds scheduler-noise outliers on either side.
    """
    grids = {  # name -> (obs enabled, recorder attached)
        "baseline": (False, False),
        "killed": (False, True),      # recorder attached, switch off
        "instrumented": (True, False),
        "evaluation": (True, True),
    }
    stacks = {name: _in_mode(enabled, _boot_grid, n_sites, n_users, rec)
              for name, (enabled, rec) in grids.items()}
    for engine, _ in stacks.values():
        engine.run_for(PAIR_SPAN)  # one untimed pass sheds cold-path cost
    times = {name: [] for name in grids}
    gc.collect()
    gc.disable()
    try:
        for _ in range(PAIRS):
            for name, (engine, _) in stacks.items():
                t0 = time.perf_counter()
                engine.run_for(PAIR_SPAN)
                times[name].append(time.perf_counter() - t0)
    finally:
        gc.enable()
    for _, sites in stacks.values():
        for site in sites:
            site.stop()

    def ratio(num, den):
        return statistics.median(
            a / b for a, b in zip(times[num], times[den])) - 1.0

    return dict(
        pass_ms={name: statistics.median(ts) * 1e3
                 for name, ts in times.items()},
        recorder_overhead=ratio("evaluation", "instrumented"),
        killed_overhead=ratio("killed", "baseline"),
        instrumentation_overhead=ratio("instrumented", "baseline"))


@pytest.fixture(scope="module")
def freshness_rows(report):
    n_sites, n_users = scale_tier()
    steady, partition = _run_freshness_phases(n_sites, n_users)
    overhead = _measure_overhead(n_sites, n_users)

    rows = dict(steady=steady, partition=partition, overhead=overhead,
                n_sites=n_sites, n_users=n_users)
    block = [
        "\n== freshness: end-to-end staleness "
        f"({n_sites} sites, {n_users} users) ==",
        f"steady state:  max {steady['max']:6.1f}s  "
        f"mean {steady['mean']:6.1f}s  p99 {steady['p99']:6.1f}s  "
        f"(bound {BOUND:.1f}s, {steady['samples']} samples, "
        f"{steady['pairs']} pairs)",
        f"partition:     stalled {partition['stalled']:6.1f}s after "
        f"{PARTITION_SPAN:.0f}s cut (witness origin {partition['witness']:.1f}s), "
        f"recovered to {partition['recovered']:.1f}s "
        f"via {partition['resyncs_requested']:.0f} resync(s)",
        "overhead:      " + "  ".join(
            f"{name} {ms:6.1f} ms" for name, ms in
            overhead["pass_ms"].items()) + f" per {PAIR_SPAN:.0f}s pass",
        f"gates:         recorder+freshness "
        f"{overhead['recorder_overhead'] * 100:+5.1f}%  "
        f"kill-switch {overhead['killed_overhead'] * 100:+5.1f}%  "
        f"(medians of {PAIRS} pairs, each < {GATE_MAX_OVERHEAD * 100:.0f}%; "
        f"instrumentation itself "
        f"{overhead['instrumentation_overhead'] * 100:+5.1f}%, "
        "gated in BENCH_obs)"]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="freshness",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             gate=dict(max_overhead=GATE_MAX_OVERHEAD,
                       staleness_bound=BOUND),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestSteadyStateStaleness:
    def test_staleness_bounded_by_exchange_pipeline(self, freshness_rows):
        steady = freshness_rows["steady"]
        assert steady["max"] <= BOUND, (
            f"worst observed staleness {steady['max']:.1f}s exceeds the "
            f"end-to-end pipeline bound {BOUND:.1f}s")
        assert steady["mean"] < steady["max"]

    def test_every_remote_pair_observed(self, freshness_rows):
        steady = freshness_rows["steady"]
        assert steady["pairs"] == steady["expected_pairs"]
        assert steady["samples"] >= steady["pairs"] * (STEADY_SPAN / FCS) / 2

    def test_exported_histogram_covers_observations(self, freshness_rows):
        steady = freshness_rows["steady"]
        # histogram counts every refresh since construction, the listener
        # only the steady window — exported count must dominate
        assert steady["exposition_count"] >= steady["listener_count"] > 0


class TestPartitionRecovery:
    def test_partition_stalls_only_the_cut_origin(self, freshness_rows):
        partition = freshness_rows["partition"]
        assert partition["stalled"] >= PARTITION_SPAN * 0.75
        assert partition["witness"] <= BOUND  # untouched origin stays fresh

    def test_resync_restores_freshness(self, freshness_rows):
        partition = freshness_rows["partition"]
        assert partition["recovered"] <= BOUND, (
            f"staleness {partition['recovered']:.1f}s still above the "
            f"bound {partition['recovery_span']:.0f}s after healing")
        assert partition["resyncs_requested"] >= 1
        assert partition["resyncs_served"] >= 1


class TestFreshnessOverhead:
    def test_recorder_overhead_gate(self, freshness_rows):
        row = freshness_rows["overhead"]
        assert row["recorder_overhead"] < GATE_MAX_OVERHEAD, (
            f"freshness series + recorder add "
            f"{row['recorder_overhead'] * 100:.1f}% wall time on top of "
            f"the instrumented grid (gate < {GATE_MAX_OVERHEAD * 100:.0f}%)")

    def test_kill_switch_restores_baseline(self, freshness_rows):
        row = freshness_rows["overhead"]
        assert row["killed_overhead"] < GATE_MAX_OVERHEAD, (
            f"REPRO_OBS_DISABLED grid with an attached recorder still "
            f"costs {row['killed_overhead'] * 100:.1f}% over baseline "
            f"(gate < {GATE_MAX_OVERHEAD * 100:.0f}%)")

    def test_json_artifact_written(self, freshness_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "freshness"
        assert data["rows"]["steady"]["max"] <= \
            data["gate"]["staleness_bound"]
        overhead = data["rows"]["overhead"]
        assert overhead["recorder_overhead"] < data["gate"]["max_overhead"]
        assert overhead["killed_overhead"] < data["gate"]["max_overhead"]
