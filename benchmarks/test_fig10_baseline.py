"""F10 — the baseline convergence test (Figure 10a).

Paper setup: six clusters of 40 virtual hosts (240 total, ~10% of national
capacity), each with its own Aequus stack and SLURM, fed by a submission
host with stochastic dispatch; 43,200 jobs over six hours at 95% total
load; fairshare the only scheduling factor; percental projection; policy
targets equal to the workload's actual usage shares.

Paper claims checked: utilization lands in the 93-97% band; cumulative
usage shares and per-user priorities converge toward the targets; sustained
submission ~120 jobs/min.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import baseline
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES


def test_fig10_baseline(benchmark, emit, scenario_cache):
    scale = bench_scale()
    result = benchmark.pedantic(baseline, kwargs=dict(seed=0, **scale),
                                rounds=1, iterations=1)
    scenario_cache["baseline"] = result

    rows = list(result.summary_rows())
    rows.append("")
    rows.append(f"{'min':>5} {'deviation':>10} " + " ".join(
        f"{u:>7}" for u in USAGE_SHARES))
    dev = result.series("share_deviation")
    step = max(1, len(dev.times) // 14)
    for i in range(0, len(dev.times), step):
        t = dev.times[i]
        prios = [result.priority_series(GRID_IDENTITIES[u]).at(t)
                 for u in USAGE_SHARES]
        rows.append(f"{t / 60:>5.0f} {dev.values[i]:>10.4f} "
                    + " ".join(f"{p:>7.3f}" for p in prios))
    emit("Figure 10a - baseline convergence", rows)

    # all jobs dispatched; throughput at the sustained paper rate
    assert result.jobs_submitted == scale["n_jobs"]
    expected_rate = scale["n_jobs"] / (scale["span"] / 60.0)
    assert result.throughput_per_minute == pytest.approx(expected_rate, rel=0.15)

    # steady-state utilization in (or near) the paper's 93-97% band
    tail_util = result.series("utilization").tail_mean(0.5)
    assert 0.88 <= tail_util <= 1.0

    # usage shares converge toward the targets
    assert result.convergence_seconds is not None
    assert result.series("share_deviation").values[-1] < 0.03
    for user, target in USAGE_SHARES.items():
        got = result.final_shares[GRID_IDENTITIES[user]]
        assert got == pytest.approx(target, abs=0.05), user

    # priorities respond to usage (not static) and respect the k-bound
    for user, target in USAGE_SHARES.items():
        series = result.priority_series(GRID_IDENTITIES[user])
        assert max(series.values) <= 0.5 * (1.0 + target) + 1e-9
        assert max(series.values) - min(series.values) > 0.05
