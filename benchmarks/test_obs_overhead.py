"""Observability overhead gate: instrumentation must stay under 5%.

Re-measures the two hot paths the obs layer instruments — the FCS refresh
(PR-1's benchmark unit, now carrying phase histograms, spans and the
refresh timer) and the aequusd serve plane (PR-3's benchmark unit, now
carrying per-op latency histograms and registry-backed stats) — once with
observability enabled and once with it disabled (``obs.set_enabled``,
which governs registries and tracers created *after* the call, so each
mode builds a fresh stack).

Counters and gauges are views backing public APIs and stay live in both
modes; what the flag switches off is exactly the observability-only work
(histogram observations, ``perf_counter`` pairs, span records).  The gate
holds that work to < ``REPRO_OBS_MAX_OVERHEAD`` (default 5%) relative
overhead, using best-of-N timing to shed scheduler noise.

Results land in ``benchmarks/BENCH_obs.json`` (and results.txt); set
``REPRO_BENCH_SCALE=small`` for the smoke tier.
"""

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.serve.client import AequusClient
from repro.serve.daemon import build_demo_site, build_grid_policy, serve_site
from repro.services.fcs import FairshareCalculationService
from repro.sim.engine import SimulationEngine

JSON_PATH = Path(__file__).parent / "BENCH_obs.json"

#: (refresh-bench users, serve-bench users, serve requests) per scale tier;
#: the refresh tier stays >= 5k even in smoke mode so the ~30 us of span +
#: histogram work per refresh is measured against a millisecond-scale
#: denominator, not timer jitter
_SCALES = {"paper": (10_000, 10_000, 12_000), "small": (5_000, 2_000, 4_000)}

GATE_MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", 0.05))

REFRESH_ROUNDS = 30           #: instrumented refreshes per timing pass
REPEATS = 3                   #: best-of passes per booted stack
TRIALS = 4                    #: interleaved on/off stack boots per path —
                              #: loopback throughput jitters far more than
                              #: the gate width, so each mode's capacity is
                              #: the best over alternating trials (drift
                              #: hits both modes alike)
WORKERS = 64                  #: concurrent serve requesters


def scale_tier():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


class _StubPDS:
    """Fixed policy at a fixed epoch (isolates the refresh itself)."""

    def __init__(self, policy):
        self._policy = policy

    def policy_epoch(self):
        return (1,)

    def policy(self):
        return self._policy


class _StubUMS:
    """Alternating usage vectors so every refresh is a digest miss —
    the instrumented compile/rollup/project path, not the cached-epoch
    fast path."""

    def __init__(self, policy, seed=0):
        rng = np.random.default_rng(seed)
        leaves = policy.leaf_paths()
        self._variants = [
            {path: float(int(rng.integers(1, 1_000_000))) for path in leaves
             if rng.random() < 0.7}
            for _ in range(2)]
        self.calls = 0

    def usage_totals(self):
        self.calls += 1
        return self._variants[self.calls % len(self._variants)]


def _build_fcs(n_users):
    engine = SimulationEngine()
    policy = build_grid_policy(n_users, seed=0)
    return FairshareCalculationService(
        "bench", engine, _StubPDS(policy), _StubUMS(policy),
        refresh_interval=1e9)


def _measure_refresh(n_users):
    fcs = _build_fcs(n_users)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(REFRESH_ROUNDS):
            fcs.refresh()
        best = min(best, (time.perf_counter() - t0) / REFRESH_ROUNDS)
    fcs.stop()
    return best


async def _serve_pass(host, port, users, n_requests):
    async with AequusClient(host, port, pool_size=1, timeout=30.0) as client:
        await asyncio.gather(*[client.get_fairshare(u) for u in users[:64]])
        n = len(users)
        per_worker = n_requests // WORKERS

        async def worker(w):
            base = w * per_worker
            for i in range(per_worker):
                await client.get_fairshare(users[(base + i) % n])

        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            await asyncio.gather(*[worker(w) for w in range(WORKERS)])
            best = min(best, time.perf_counter() - t0)
        return (per_worker * WORKERS) / best


def _measure_serve(n_users, n_requests):
    _, site = build_demo_site(n_users, seed=0)
    thread = serve_site(site)
    users = [f"u{i}" for i in range(0, n_users, max(1, n_users // 512))]
    try:
        return asyncio.run(_serve_pass(thread.host, thread.port, users,
                                       n_requests))
    finally:
        thread.stop()
        site.stop()


def _in_mode(enabled, fn, *args):
    """Run ``fn`` with the obs default toggled; fresh stacks inside ``fn``
    inherit the flag.  Always restores the previous default."""
    previous = obs.default_enabled()
    obs.set_enabled(enabled)
    try:
        return fn(*args)
    finally:
        obs.set_enabled(previous)


@pytest.fixture(scope="module")
def obs_rows(report):
    refresh_users, serve_users, serve_requests = scale_tier()

    refresh = {True: [], False: []}
    serve = {True: [], False: []}
    for _ in range(TRIALS):
        for enabled in (True, False):
            refresh[enabled].append(
                _in_mode(enabled, _measure_refresh, refresh_users))
            serve[enabled].append(
                _in_mode(enabled, _measure_serve, serve_users,
                         serve_requests))
    refresh_on, refresh_off = min(refresh[True]), min(refresh[False])
    serve_on, serve_off = max(serve[True]), max(serve[False])

    rows = [
        dict(path="fcs_refresh", n_users=refresh_users,
             on_s=refresh_on, off_s=refresh_off,
             overhead=refresh_on / refresh_off - 1.0),
        dict(path="serve_single_key", n_users=serve_users,
             on_qps=serve_on, off_qps=serve_off,
             overhead=serve_off / serve_on - 1.0),
    ]
    block = ["\n== observability overhead (on vs off) =="] + [
        f"fcs_refresh ({refresh_users} users): "
        f"on {refresh_on * 1e3:7.2f} ms  off {refresh_off * 1e3:7.2f} ms  "
        f"overhead {rows[0]['overhead'] * 100:+5.1f}%",
        f"serve ({serve_users} users): "
        f"on {serve_on:9.0f} qps  off {serve_off:9.0f} qps  "
        f"overhead {rows[1]['overhead'] * 100:+5.1f}%",
        f"gate: < {GATE_MAX_OVERHEAD * 100:.0f}% on both paths"]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="obs_overhead",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             gate=dict(max_overhead=GATE_MAX_OVERHEAD),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestObsOverhead:
    def test_refresh_overhead_gate(self, obs_rows):
        row = next(r for r in obs_rows if r["path"] == "fcs_refresh")
        assert row["overhead"] < GATE_MAX_OVERHEAD, (
            f"obs instrumentation adds {row['overhead'] * 100:.1f}% to the "
            f"FCS refresh (gate < {GATE_MAX_OVERHEAD * 100:.0f}%)")

    def test_serve_overhead_gate(self, obs_rows):
        row = next(r for r in obs_rows if r["path"] == "serve_single_key")
        assert row["overhead"] < GATE_MAX_OVERHEAD, (
            f"obs instrumentation costs {row['overhead'] * 100:.1f}% serve "
            f"throughput (gate < {GATE_MAX_OVERHEAD * 100:.0f}%)")

    def test_disabled_mode_still_counts(self):
        """Counters are API surface, not observability: they stay live
        with obs off (only histograms/spans/timers go quiet)."""
        def probe():
            fcs = _build_fcs(200)
            fcs.refresh()
            try:
                total = fcs._phase_hist["total"]
                return fcs.refreshes, total.count
            finally:
                fcs.stop()

        refreshes, observations = _in_mode(False, probe)
        assert refreshes >= 2          # constructor refresh + explicit one
        assert observations == 0       # histogram gated off

    def test_json_artifact_written(self, obs_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "obs_overhead"
        assert {r["path"] for r in data["rows"]} == {
            "fcs_refresh", "serve_single_key"}
        for row in data["rows"]:
            assert row["overhead"] < data["gate"]["max_overhead"]
