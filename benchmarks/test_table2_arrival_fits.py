"""T2 — Table II: job-arrival model fits.

Paper rows: GEV best fit for all four U65 phases (k in -0.46..-0.30),
Burr for U30, GEV for U3 (worst fit, bursty) and Uoth; whole-second median
inter-arrival times 2/3/2/2 (U65 phases), 2 (U65), 1 (U30), 0 (U3),
13 (Uoth); KS between 0.02 (the Equation-1 composite) and 0.15 (U3).

Shape checks (absolute medians depend on the authors' trace volume, which
we cannot match): medians tiny for the batch submitters and largest for
Uoth; U3 median exactly 0; GEV wins every U65 phase; composite KS <= any
single-phase KS; all KS small.
"""

import pytest

from benchmarks.conftest import modeling_n_jobs
from repro.experiments.modeling import regenerate_table2
from repro.workload.reference import PAPER_TABLE2


def test_table2_arrival_fits(benchmark, emit, modeling_dataset, table2_rows):
    # the session fixture may already be built; time a fresh regeneration
    rows = benchmark.pedantic(
        regenerate_table2, args=(modeling_dataset,),
        kwargs={"subsample": 8000}, rounds=1, iterations=1)
    emit("Table II - job arrival fits (ours vs paper)",
         [r.render() for r in rows])

    by_label = {r.label: r for r in rows}
    full_scale = modeling_n_jobs() >= 60_000

    if full_scale:
        # U65's four phases fit GEV, like the paper, with the published
        # sign and magnitude of the shape (bounded bumps)
        for p in range(1, 5):
            assert by_label[f"U65 (p{p})"].fit.family_name == "gev"
            k = by_label[f"U65 (p{p})"].fit.fitted.params[0]
            assert -0.75 < k < -0.1

    # medians: batch submitters in whole seconds, U3 at zero, Uoth largest
    assert by_label["U3"].median_s == 0.0
    assert 1 <= by_label["U65"].median_s <= 4
    assert 0 <= by_label["U30"].median_s <= 3
    assert by_label["Uoth"].median_s == max(r.median_s for r in rows)
    assert 5 <= by_label["Uoth"].median_s <= 40  # paper: 13

    # goodness of fit in the paper's range
    for row in rows:
        assert row.ks <= 0.2, f"{row.label}: KS {row.ks} out of range"

    # the composite (Equation 1) beats or matches every single-phase fit
    composite_ks = by_label["U65"].ks
    assert composite_ks <= min(by_label[f"U65 (p{p})"].ks
                               for p in range(1, 5)) + 0.01

    # family agreement with the paper where our trace volume permits
    matches = sum(1 for label, row in by_label.items()
                  if row.fit is not None
                  and row.fit.family_name == PAPER_TABLE2[label]["family"])
    assert matches >= (5 if full_scale else 2)  # of 7 fitted rows
