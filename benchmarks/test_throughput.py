"""E-THR — test-bed throughput and load figures (Section IV-A prose).

Paper numbers: "the test bed was found to support a sustained job
submission rate of about 120 jobs per minute.  The peak job submission rate
during the bursty test shown in this article reaches 472 jobs per minute.
During these tests, the traces contain a total load of 95% of the
theoretical maximum of the combined infrastructure, and during testing we
have found that the total utilization varies between 93% and 97%.  The
test length is six hours for all tests, and each trace contains 43,200
jobs."

Shape checks: sustained rate = n_jobs/span (exactly 120/min at paper
scale); the bursty trace's peak rate is a multiple of the sustained rate
(paper factor ~3.9); trace load pinned at 95%; steady-state utilization in
a band around the paper's.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.experiments.scenarios import baseline, bursty
from repro.workload.reference import build_testbed_trace


def test_throughput(benchmark, emit, scenario_cache):
    scale = bench_scale()
    base = scenario_cache.get("baseline")
    burst = scenario_cache.get("bursty")

    def run():
        b = base if base is not None else baseline(seed=0, **scale)
        bu = burst if burst is not None else bursty(seed=0, **scale)
        return b, bu

    b, bu = benchmark.pedantic(run, rounds=1, iterations=1)

    total_cores = scale["n_sites"] * scale["hosts_per_site"]
    trace = build_testbed_trace(n_jobs=scale["n_jobs"], span=scale["span"],
                                total_cores=total_cores, load=0.95, seed=0)
    sustained = scale["n_jobs"] / (scale["span"] / 60.0)
    emit("Throughput and load (Section IV-A)", [
        f"sustained submission rate: {sustained:.0f} jobs/min (paper: ~120)",
        f"baseline peak rate: {b.peak_submission_rate:.0f} jobs/min",
        f"bursty peak rate:   {bu.peak_submission_rate:.0f} jobs/min "
        f"(paper: 472)",
        f"trace load: {trace.total_usage() / (0.95 * total_cores * scale['span']) * 0.95:.1%}"
        f" of theoretical max (paper: 95%)",
        f"baseline utilization (steady state): "
        f"{b.series('utilization').tail_mean(0.5):.1%} (paper: 93-97%)",
        f"completed throughput: {b.throughput_per_minute:.0f} jobs/min",
    ])

    # trace load pinned at exactly 95% of theoretical capacity
    assert trace.total_usage() == pytest.approx(
        0.95 * total_cores * scale["span"], rel=1e-9)

    # sustained rate matches the paper arithmetic at paper scale
    if scale["n_jobs"] == 43_200:
        assert sustained == pytest.approx(120.0)

    # peaks: bursty trace peaks well above the sustained rate
    assert bu.peak_submission_rate > 1.5 * sustained
    assert b.peak_submission_rate > sustained

    # utilization in a band around the paper's 93-97%
    util = b.series("utilization").tail_mean(0.5)
    assert 0.88 <= util <= 1.0

    # completed throughput tracks the submission rate
    assert b.throughput_per_minute == pytest.approx(sustained, rel=0.15)
