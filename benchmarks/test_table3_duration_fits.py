"""T3 — Table III: job-duration (job size) model fits.

Paper rows: U65 Birnbaum-Saunders(1.76e4, 3.53), U30 Weibull(5.49e4, 0.637),
U3 Burr(2.07, 11.0, 0.02), Uoth BS(3.02e4, 7.91); KS 0.04-0.28.

Shape checks: the *family* must match the paper for every user, and the
scale-invariant shape parameters (BS gamma, Weibull k, Burr c and k) must
land near the published values — the per-user load rescaling of the
reference trace moves only scale parameters.
"""

import pytest

from repro.experiments.modeling import regenerate_table3
from repro.workload.reference import PAPER_TABLE3


def test_table3_duration_fits(benchmark, emit, modeling_dataset):
    rows = benchmark.pedantic(
        regenerate_table3, args=(modeling_dataset,),
        kwargs={"subsample": 8000}, rounds=1, iterations=1)
    emit("Table III - job duration fits (ours vs paper)",
         [r.render() for r in rows])

    by_label = {r.label: r for r in rows}

    # families recover exactly
    for user, spec in PAPER_TABLE3.items():
        assert by_label[user].fit.family_name == spec["family"], user

    # shape parameters near the published values (looser for small traces:
    # Burr's heavy tail makes its shape MLE high-variance)
    from benchmarks.conftest import modeling_n_jobs
    full_scale = modeling_n_jobs() >= 60_000
    assert by_label["U65"].fit.fitted.params[1] == pytest.approx(3.53, rel=0.2)
    assert by_label["U30"].fit.fitted.params[1] == pytest.approx(0.637, rel=0.2)
    assert by_label["U3"].fit.fitted.params[1] == pytest.approx(
        11.0, rel=0.25 if full_scale else 0.5)
    assert by_label["U3"].fit.fitted.params[2] == pytest.approx(
        0.02, rel=0.5 if full_scale else 1.0)
    assert by_label["Uoth"].fit.fitted.params[1] == pytest.approx(
        7.91, rel=0.25 if full_scale else 0.5)

    # goodness of fit at least as good as the paper's worst (0.28)
    for row in rows:
        assert row.fit.ks <= 0.28

    # qualitative ordering: U3 jobs are by far the shortest (the premise of
    # the bursty test's share arithmetic), U30 the heaviest-tailed
    assert by_label["U3"].median_s < by_label["U65"].median_s / 50
    assert by_label["U30"].median_s == max(r.median_s for r in rows)
