"""E-POLICY — run-time policy change and dynamic mounting (Section II-A).

Paper claims checked:
* the system "adapt[s] to events such as changing policies during
  run-time": swapping two users' entitlements mid-run flips their
  priorities within one service-refresh cycle and re-steers the decayed
  usage shares toward the new targets;
* "globally managed sub-policies can be dynamically mounted into a locally
  administered root node": a VO subtree mounted on a live site shows up in
  the pre-computed fairshare values after the next FCS refresh, ordered by
  its mounted weights.
"""

import pytest

from repro.experiments.policy_change import runtime_mount, runtime_policy_change


def test_runtime_policy_change(benchmark, emit):
    result = benchmark.pedantic(runtime_policy_change, rounds=1, iterations=1)
    emit("Run-time policy change (U65 <-> U30 entitlements swapped)",
         result.rows())

    # before the switch, U65 (big entitlement, proportional usage) and U30
    # track their targets; after the switch U30 is suddenly underserved
    # against its new 65% target and must out-prioritize U65
    assert result.priorities_before["U65"] >= result.priorities_before["U30"] - 0.05
    assert result.priorities_after["U30"] > result.priorities_after["U65"]

    # the switch shows up as a deviation jump vs the new targets
    assert result.deviation_at_switch() > 0.05

    # fairshare re-steers scheduling in the direction of the new policy as
    # far as the fixed workload mix allows: U30's decayed share rises,
    # U65's falls
    assert result.shares_at_end["U30"] > result.shares_at_switch["U30"]
    assert result.shares_at_end["U65"] < result.shares_at_switch["U65"]

    # and the grid kept scheduling throughout
    assert result.jobs_completed > 0


def test_runtime_mount(benchmark, emit):
    values = benchmark.pedantic(runtime_mount, rounds=1, iterations=1)
    emit("Run-time sub-policy mounting (VO tree on a live site)",
         [f"  {path:<18} fairshare={value:.4f}"
          for path, value in sorted(values.items())])

    # the mounted users exist in the pre-computed values without a restart
    assert set(values) == {"/VO/climate", "/VO/physics"}
    # and are ordered by their mounted weights (climate 3 : physics 1,
    # both idle, so the bigger entitlement ranks first)
    assert values["/VO/climate"] > values["/VO/physics"]
    for v in values.values():
        assert 0.0 <= v <= 1.0
