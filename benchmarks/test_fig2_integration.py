"""F2 — Figure 2: the fully integrated deployment.

The figure wires SLURM/Maui through libaequus into the per-site Aequus
stack (PDS, USS, UMS, FCS, IRS) with inter-site USS exchange.  This bench
drives one job around the complete loop on a two-site grid and measures the
end-to-end propagation: completion at site A -> usage visible in site B's
pre-computed fairshare values.
"""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.slurm import SlurmScheduler
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine


def run_integration_loop():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    config = SiteConfig(uss_exchange_interval=5.0, ums_refresh_interval=5.0,
                        fcs_refresh_interval=5.0, libaequus_cache_ttl=2.0)
    sites, scheds = [], []
    for name in ("siteA", "siteB"):
        site = AequusSite(name, engine, network,
                          policy=PolicyTree.from_dict({"alice": 1, "bob": 1}),
                          config=config)
        site.irs.store_mapping("sys_alice", "alice")
        site.irs.store_mapping("sys_bob", "bob")
        sched = SlurmScheduler(name, engine,
                               Cluster(name, n_nodes=4, cores_per_node=1),
                               sched_interval=1.0, reprioritize_interval=5.0)
        sched.integrate_aequus(LibAequus.for_site(site))
        sites.append(site)
        scheds.append(sched)
    connect_sites(sites)

    remote_before = sites[1].fcs.priority("alice")
    scheds[0].submit(Job(system_user="sys_alice", duration=60.0))
    # find when site B's FCS first reflects the remote job
    engine.run_until(60.0)  # job completes at t=60 (started ~t=0..1)
    completion = scheds[0].completed[0].end_time
    t, step = engine.now, 1.0
    while sites[1].fcs.priority("alice") >= remote_before and t < 300.0:
        t += step
        engine.run_until(t)
    return {
        "completion_time": completion,
        "propagated_at": t,
        "propagation_delay": t - completion,
        "remote_before": remote_before,
        "remote_after": sites[1].fcs.priority("alice"),
        "local_after": sites[0].fcs.priority("alice"),
        "records_at_a": sites[0].uss.records_received,
        "exchange_received_at_b": sites[1].uss.exchanges_received,
    }


def test_fig2_integration(benchmark, emit):
    out = benchmark.pedantic(run_integration_loop, rounds=1, iterations=1)
    emit("Figure 2 - integrated deployment round trip", [
        f"job completed at t={out['completion_time']:.1f}s on siteA",
        f"siteB fairshare updated at t={out['propagated_at']:.1f}s "
        f"(propagation {out['propagation_delay']:.1f}s)",
        f"alice priority at siteB: {out['remote_before']:.3f} -> "
        f"{out['remote_after']:.3f}",
        f"USS exchanges received at siteB: {out['exchange_received_at_b']}",
    ])

    # the loop closed: usage flowed RM -> libaequus -> USS -> (network) ->
    # USS -> UMS -> FCS on the OTHER site
    assert out["records_at_a"] == 1
    assert out["exchange_received_at_b"] > 0
    assert out["remote_after"] < out["remote_before"]
    # both sites agree after propagation (the Aequus consistency promise)
    assert out["remote_after"] == pytest.approx(out["local_after"], abs=1e-6)
    # propagation bounded by the sum of the cache/exchange intervals
    assert out["propagation_delay"] <= 3 * 5.0 + 2.0 + 1.0
