"""Ablation benches over the paper's configurable design choices.

Not paper figures — these quantify claims the paper makes in passing:
run-time-selectable projections, dispatch-policy indifference, the
parameterized decay, and the libaequus cache's traffic reduction.
"""

import pytest

from repro.experiments.ablations import (
    cache_ablation,
    decay_ablation,
    dispatch_ablation,
    projection_ablation,
)


def test_ablation_projections(benchmark, emit):
    runs = benchmark.pedantic(projection_ablation, rounds=1, iterations=1)
    emit("Ablation - projection algorithms", [r.row() for r in runs])
    # all three converge: the ordering, not the scalar encoding, steers
    for run in runs:
        assert run.final_deviation < 0.05, run.label
        assert run.tail_utilization > 0.85, run.label


def test_ablation_dispatch(benchmark, emit):
    runs = benchmark.pedantic(dispatch_ablation, rounds=1, iterations=1)
    emit("Ablation - dispatch policy (paper: no noticeable difference)",
         [r.row() for r in runs])
    # "without any noticeable difference"
    deviations = [r.final_deviation for r in runs]
    utils = [r.tail_utilization for r in runs]
    assert abs(deviations[0] - deviations[1]) < 0.02
    assert abs(utils[0] - utils[1]) < 0.05
    for run in runs:
        assert run.final_deviation < 0.05


def test_ablation_decay(benchmark, emit):
    runs = benchmark.pedantic(decay_ablation, rounds=1, iterations=1)
    emit("Ablation - usage decay half-life", [r.row() for r in runs])
    # the parameterized algorithm converges across a 36x half-life range
    for run in runs:
        assert run.final_deviation < 0.06, run.label
        assert run.tail_utilization > 0.85, run.label


def test_ablation_cache(benchmark, emit):
    results = benchmark.pedantic(cache_ablation, rounds=1, iterations=1)
    emit("Ablation - libaequus cache TTL", [r.row() for r in results])
    by_ttl = {r.ttl: r for r in results}
    cold, warm = by_ttl[0.0], by_ttl[15.0]
    # caching absorbs the bulk of fairshare lookups ...
    assert warm.cache_hit_rate > 0.8
    assert warm.fcs_lookups < cold.fcs_lookups / 5
    # ... without changing the scheduling outcome
    assert abs(warm.final_deviation - cold.final_deviation) < 0.02
