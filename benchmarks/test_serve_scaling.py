"""Query throughput and tail latency of the aequusd serve plane.

Two measurement planes, one artifact:

* **Client tiers** — boots a real aequusd (site stack + snapshot store +
  TCP server thread) at 1k / 10k / 100k users and drives it with the
  asyncio client over loopback, pinned to the JSON protocol so the rows
  stay comparable with the pre-sharding artifact: pipelined single-key
  ``GET_FAIRSHARE`` throughput, sequential latency (p50/p99/p999), and
  batched reads.
* **Worker × protocol matrix** — the same site served in-process
  (``n_workers=0``) and by forked SO_REUSEPORT worker pools over the
  shared-memory snapshot plane (``n_workers`` 1, 2), each driven in both
  wire protocols by raw-socket pipelined drivers with pre-encoded frames
  (the asyncio client's per-future overhead would mask server capacity
  on one core).  A final row publishes a synthetic 1M-user snapshot via
  ``publish_arrays`` and probes its tail latency.

Results are printed, appended to ``benchmarks/results.txt``, and written
to ``benchmarks/BENCH_serve.json`` so CI can track serving perf per PR.
Set ``REPRO_BENCH_SCALE=small`` for a smoke pass (drops the 100k client
tier and shrinks the big-snapshot row).  Gates scale for constrained CI
runners via ``REPRO_SERVE_MIN_QPS`` (single-loop client floor, default
20000) and ``REPRO_SERVE_MIN_AGG_QPS`` (sharded aggregate floor, default
100000); the relative gates (batch gain, aggregate-vs-single-loop gain,
binary-vs-JSON gain, big-snapshot p99 budget) are scale-free.
"""

import asyncio
import json
import os
import socket
import statistics
import struct
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve.backend import SiteBackend
from repro.serve.client import AequusClient, SyncAequusClient
from repro.serve.daemon import build_demo_site, serve_site
from repro.serve.protocol import (bin_get_fairshare_by_id, encode_frame)
from repro.serve.server import AequusServer, ServerThread
from repro.serve.shm import ShmSnapshotWriter
from repro.serve.workers import WorkerPool

JSON_PATH = Path(__file__).parent / "BENCH_serve.json"

#: users per scale tier; smoke mode trims the expensive top tier
_SCALES = {"paper": (1_000, 10_000, 100_000), "small": (1_000, 10_000)}

#: the tier the acceptance gates apply to
GATE_USERS = 10_000
GATE_SINGLE_QPS = float(os.environ.get("REPRO_SERVE_MIN_QPS", 20_000))
GATE_BATCH_GAIN = 5.0

#: sharded-plane gates: some worker count must push aggregate single-key
#: throughput past the floor and past AGG_GAIN x the single-loop client
#: row; binary must beat JSON at every worker count; the 1M-user snapshot
#: must serve within the p99 envelope the client tiers established
GATE_AGG_QPS = float(os.environ.get("REPRO_SERVE_MIN_AGG_QPS", 100_000))
GATE_AGG_GAIN = 4.0
GATE_BIN_GAIN = 1.5
GATE_P99_BUDGET_US = float(os.environ.get("REPRO_SERVE_P99_BUDGET_US", 310.0))

SINGLE_REQUESTS = 20_000      #: pipelined single-key requests per tier
WORKERS = 128                 #: concurrent requesters (pipelining depth)
BATCH_SIZE = 512              #: keys per BATCH request
BATCH_COUNT = 40              #: batches per measurement pass
LATENCY_SAMPLES = 2_000       #: sequential requests for the tail probe
DISTINCT_USERS = 512          #: distinct keys cycled through per tier
REPEATS = 3                   #: best-of passes (OS scheduling jitter between
                              #: the client and server threads is large)

MATRIX_WORKER_COUNTS = (0, 1, 2)   #: 0 = in-process single loop
MATRIX_REQUESTS = 40_000           #: pipelined requests per matrix cell
MATRIX_REPEATS = 2
BIG_SNAPSHOT_USERS = {"paper": 1_000_000, "small": 150_000}

_LEN = struct.Struct(">I")


def scale_tiers():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def bench_scale_name():
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def query_users(n_users):
    step = max(1, n_users // DISTINCT_USERS)
    return [f"u{i}" for i in range(0, n_users, step)]


async def _measure(host, port, users):
    # pinned to JSON: this row is the single-loop baseline the sharded
    # matrix is gated against, measured exactly as it was pre-sharding
    async with AequusClient(host, port, pool_size=1, timeout=30.0,
                            binary=False) as client:
        # warm up: connection, snapshot, coalescing cache
        await asyncio.gather(*[client.get_fairshare(u) for u in users[:64]])

        # pipelined single-key throughput: a fixed pool of workers issuing
        # sequential requests models many schedulers querying concurrently
        # (and avoids timing 20k Task creations instead of the server)
        n = len(users)
        per_worker = SINGLE_REQUESTS // WORKERS

        async def worker(w):
            base = w * per_worker
            for i in range(per_worker):
                await client.get_fairshare(users[(base + i) % n])

        single_qps = 0.0
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            await asyncio.gather(*[worker(w) for w in range(WORKERS)])
            single_s = time.perf_counter() - t0
            single_qps = max(single_qps, (per_worker * WORKERS) / single_s)

        # sequential request latency (no pipelining: full round trips)
        lat = []
        for i in range(LATENCY_SAMPLES):
            t0 = time.perf_counter()
            await client.get_fairshare(users[i % n])
            lat.append(time.perf_counter() - t0)
        p50, p99, p999 = _percentiles_us(lat)

        # batched reads: same keys, BATCH_SIZE per round trip.  Per-batch
        # timing with a min estimator: on a shared core, whole-pass timing
        # is dominated by scheduler preemptions, while the fastest single
        # round trip tracks the server's intrinsic batch capacity
        best_batch_s = float("inf")
        for r in range(REPEATS):
            for b in range(BATCH_COUNT):
                keys = [users[(b * BATCH_SIZE + i) % n]
                        for i in range(BATCH_SIZE)]
                t0 = time.perf_counter()
                await client.batch_lookup_fairshare(keys)
                best_batch_s = min(best_batch_s, time.perf_counter() - t0)
        batch_kps = BATCH_SIZE / best_batch_s

        return dict(single_qps=single_qps,
                    latency_p50_us=p50,
                    latency_p99_us=p99,
                    latency_p999_us=p999,
                    batch_keys_per_s=batch_kps,
                    batch_gain=batch_kps / single_qps)


def _percentiles_us(samples):
    samples = sorted(samples)
    k = len(samples)

    def at(q):
        return samples[min(k - 1, int(k * q))] * 1e6

    return statistics.median(samples) * 1e6, at(0.99), at(0.999)


# -- raw-socket drivers ------------------------------------------------------
#
# Pre-encoded frame blobs, one sender thread + one receiver loop per
# connection, replies counted by scanning frame boundaries.  This times
# the server, not a client implementation.

def _scan_binary(buf, limit):
    pos = count = 0
    while limit - pos >= 12:
        body = _LEN.unpack_from(buf, pos + 8)[0]
        if limit - pos < 12 + body:
            break
        pos += 12 + body
        count += 1
    return pos, count


def _scan_json(buf, limit):
    pos = count = 0
    while limit - pos >= 4:
        body = _LEN.unpack_from(buf, pos)[0]
        if limit - pos < 4 + body:
            break
        pos += 4 + body
        count += 1
    return pos, count


def _connect(port):
    sock = socket.create_connection(("127.0.0.1", port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _drive_one(port, blob, expect, scan, counts):
    sock = _connect(port)
    sender = threading.Thread(target=lambda: sock.sendall(blob))
    sender.start()
    got, buf = 0, b""
    try:
        while got < expect:
            chunk = sock.recv(1 << 18)
            if not chunk:
                break
            buf += chunk
            used, n = scan(buf, len(buf))
            buf = buf[used:]
            got += n
    finally:
        sender.join()
        sock.close()
    counts.append(got)


def _pipelined_qps(port, blobs, scan):
    """Aggregate replies/s across one pipelined connection per blob."""
    best = 0.0
    for _ in range(MATRIX_REPEATS):
        counts = []
        threads = [threading.Thread(target=_drive_one,
                                    args=(port, blob, expect, scan, counts))
                   for blob, expect in blobs]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        best = max(best, sum(counts) / elapsed)
    return best


def _sequential_latencies(port, frames, binary):
    """One request at a time: full round trips, no pipelining."""
    sock = _connect(port)
    head = 12 if binary else 4
    lat = []
    try:
        for frame in frames:
            t0 = time.perf_counter()
            sock.sendall(frame)
            buf = b""
            need = head
            while len(buf) < need:
                buf += sock.recv(4096)
                if len(buf) >= head:
                    at = 8 if binary else 0
                    need = head + _LEN.unpack_from(buf, at)[0]
            lat.append(time.perf_counter() - t0)
    finally:
        sock.close()
    return lat


def _resolve_leaf_ids(port, users):
    """Warm a real client against the server to harvest (gen, leaf_id)s."""
    with SyncAequusClient(port=port, timeout=30.0) as client:
        for user in users:
            client.lookup_fairshare(user)
        cached = dict(client._client._leaf_ids)
    return [cached[u] for u in users if u in cached]


def _measure_matrix_cell(port, users, protocol):
    if protocol == "binary":
        # steady-state wire traffic: by-id frames, like a warmed client
        ids = _resolve_leaf_ids(port, users)
        frames = [bin_get_fairshare_by_id(i + 1, *ids[i % len(ids)])
                  for i in range(MATRIX_REQUESTS)]
        scan, binary = _scan_binary, True
    else:
        frames = [encode_frame({"op": "GET_FAIRSHARE", "v": 1, "id": i + 1,
                                "user": users[i % len(users)]})
                  for i in range(MATRIX_REQUESTS)]
        scan, binary = _scan_json, False
    blob = b"".join(frames)
    qps = _pipelined_qps(port, [(blob, MATRIX_REQUESTS)], scan)
    p50, p99, p999 = _percentiles_us(
        _sequential_latencies(port, frames[:LATENCY_SAMPLES], binary))
    return dict(single_qps=qps, latency_p50_us=p50,
                latency_p99_us=p99, latency_p999_us=p999)


def _measure_worker_count(site, n_workers, users):
    cells = []
    if n_workers == 0:
        thread = ServerThread(AequusServer(SiteBackend.for_site(site))).start()
        try:
            for protocol in ("binary", "json"):
                cell = _measure_matrix_cell(thread.port, users, protocol)
                cell.update(n_workers=0, protocol=protocol)
                cells.append(cell)
        finally:
            thread.stop()
        return cells
    writer = ShmSnapshotWriter(site.name, token=f"bw{n_workers}")
    writer.attach_fcs(site.fcs, irs=site.irs)
    try:
        with WorkerPool(writer.name, n_workers, site=site.name) as pool:
            assert pool.wait_ready(30.0)
            for protocol in ("binary", "json"):
                cell = _measure_matrix_cell(pool.port, users, protocol)
                cell.update(n_workers=n_workers, protocol=protocol)
                cells.append(cell)
    finally:
        writer.close()
    return cells


def _measure_big_snapshot():
    """Publish a synthetic big snapshot straight into shm and probe it."""
    n_users = BIG_SNAPSHOT_USERS[bench_scale_name()]
    writer = ShmSnapshotWriter("bigbench", token="bigb")
    rng = np.random.default_rng(0)
    try:
        writer.publish_arrays(
            seq=1, leaf_gen=1, computed_at=0.0, unknown_user_value=0.5,
            resolution=9999, values=rng.random(n_users),
            keys={f"user{i:07d}": i for i in range(n_users)})
        step = n_users // DISTINCT_USERS
        users = [f"user{i * step:07d}" for i in range(DISTINCT_USERS)]
        with WorkerPool(writer.name, 1, site="bigbench") as pool:
            assert pool.wait_ready(30.0)
            row = _measure_matrix_cell(pool.port, users, "binary")
    finally:
        writer.close()
    row.update(n_users=n_users, n_workers=1, protocol="binary")
    return row


@pytest.fixture(scope="module")
def serve_bench(report):
    # client tiers: the pre-sharding rows, measured the pre-sharding way
    rows = []
    for n_users in scale_tiers():
        _, site = build_demo_site(n_users, seed=0)
        thread = serve_site(site)
        try:
            row = asyncio.run(_measure(thread.host, thread.port,
                                       query_users(n_users)))
        finally:
            thread.stop()
            site.stop()
        row.update(n_users=n_users, n_workers=0, protocol="json",
                   driver="client")
        rows.append(row)

    # worker x protocol matrix at the gate tier, raw drivers
    matrix = []
    _, site = build_demo_site(GATE_USERS, seed=0)
    users = query_users(GATE_USERS)
    try:
        for n_workers in MATRIX_WORKER_COUNTS:
            matrix.extend(_measure_worker_count(site, n_workers, users))
    finally:
        site.stop()
    for cell in matrix:
        cell.update(n_users=GATE_USERS, driver="raw")

    big = _measure_big_snapshot()
    big["driver"] = "raw"

    block = ["\n== serve scaling (aequusd over loopback TCP) =="] + [
        f"{r['n_users']:>7} users: single {r['single_qps']:9.0f} qps  "
        f"p50 {r['latency_p50_us']:6.0f} us  p99 {r['latency_p99_us']:6.0f} us  "
        f"batch {r['batch_keys_per_s']:9.0f} keys/s  "
        f"gain {r['batch_gain']:5.1f}x"
        for r in rows]
    block.append("-- worker x protocol matrix "
                 f"({GATE_USERS} users, raw pipelined) --")
    for r in matrix + [big]:
        block.append(
            f"workers={r['n_workers']} {r['protocol']:>6} "
            f"({r['n_users']:>7} users): {r['single_qps']:9.0f} qps  "
            f"p50 {r['latency_p50_us']:5.0f} us  "
            f"p99 {r['latency_p99_us']:5.0f} us  "
            f"p999 {r['latency_p999_us']:6.0f} us")
    for line in block:
        print(line)
    report.extend(block)

    JSON_PATH.write_text(json.dumps(
        dict(benchmark="serve_scaling",
             scale=bench_scale_name(),
             gate=dict(users=GATE_USERS, min_single_qps=GATE_SINGLE_QPS,
                       min_batch_gain=GATE_BATCH_GAIN,
                       min_aggregate_qps=GATE_AGG_QPS,
                       min_aggregate_gain=GATE_AGG_GAIN,
                       min_binary_gain=GATE_BIN_GAIN,
                       p99_budget_us=GATE_P99_BUDGET_US),
             rows=rows, matrix=matrix, big_snapshot=big),
        indent=2) + "\n")
    return dict(rows=rows, matrix=matrix, big=big)


@pytest.fixture(scope="module")
def serve_rows(serve_bench):
    return serve_bench["rows"]


@pytest.fixture(scope="module")
def matrix_rows(serve_bench):
    return serve_bench["matrix"]


class TestServeScaling:
    def test_single_key_qps_gate_at_10k_users(self, serve_rows):
        gate = next(r for r in serve_rows if r["n_users"] == GATE_USERS)
        assert gate["single_qps"] >= GATE_SINGLE_QPS, (
            f"sustained only {gate['single_qps']:.0f} single-key qps at "
            f"{GATE_USERS} users (need >= {GATE_SINGLE_QPS:.0f})")

    def test_batch_gain_gate_at_10k_users(self, serve_rows):
        gate = next(r for r in serve_rows if r["n_users"] == GATE_USERS)
        assert gate["batch_gain"] >= GATE_BATCH_GAIN, (
            f"batched reads only {gate['batch_gain']:.1f}x single-key "
            f"throughput at {GATE_USERS} users (need >= {GATE_BATCH_GAIN}x)")

    def test_throughput_does_not_collapse_with_scale(self, serve_rows):
        # serving reads from the snapshot is O(1) in site size: the top
        # tier must stay within 4x of the smallest tier's throughput
        assert serve_rows[-1]["single_qps"] >= serve_rows[0]["single_qps"] / 4

    def test_json_artifact_written(self, serve_bench):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "serve_scaling"
        assert len(data["rows"]) == len(scale_tiers())
        for row in (data["rows"] + data["matrix"]
                    + [data["big_snapshot"]]):
            assert row["latency_p99_us"] >= row["latency_p50_us"]
            assert row["latency_p999_us"] >= row["latency_p99_us"]
            assert {"n_workers", "protocol", "driver"} <= set(row)


class TestShardedServeGates:
    def test_aggregate_qps_gate(self, serve_rows, matrix_rows):
        """Some sharded worker count must clear the aggregate floor and
        beat the single-loop client row by the required multiple."""
        single_loop = next(r for r in serve_rows
                           if r["n_users"] == GATE_USERS)["single_qps"]
        sharded = [r for r in matrix_rows
                   if r["n_workers"] >= 1 and r["protocol"] == "binary"]
        best = max(r["single_qps"] for r in sharded)
        assert best >= GATE_AGG_QPS, (
            f"best sharded aggregate {best:.0f} qps "
            f"(need >= {GATE_AGG_QPS:.0f})")
        assert best >= GATE_AGG_GAIN * single_loop, (
            f"best sharded aggregate {best:.0f} qps is only "
            f"{best / single_loop:.1f}x the single-loop row "
            f"({single_loop:.0f} qps; need >= {GATE_AGG_GAIN}x)")

    def test_binary_beats_json_at_equal_worker_count(self, matrix_rows):
        for n_workers in MATRIX_WORKER_COUNTS:
            cells = {r["protocol"]: r["single_qps"] for r in matrix_rows
                     if r["n_workers"] == n_workers}
            gain = cells["binary"] / cells["json"]
            assert gain >= GATE_BIN_GAIN, (
                f"binary only {gain:.2f}x JSON at workers={n_workers} "
                f"(need >= {GATE_BIN_GAIN}x)")

    def test_big_snapshot_serves_within_p99_budget(self, serve_bench):
        big = serve_bench["big"]
        assert big["latency_p99_us"] <= GATE_P99_BUDGET_US, (
            f"{big['n_users']}-user snapshot p99 "
            f"{big['latency_p99_us']:.0f} us exceeds the "
            f"{GATE_P99_BUDGET_US:.0f} us budget")
