"""Query throughput and tail latency of the aequusd serve plane.

Boots a real aequusd (site stack + snapshot store + TCP server thread)
at 1k / 10k / 100k users and drives it with the asyncio client over
loopback: pipelined single-key ``GET_FAIRSHARE`` throughput, sequential
request latency (p50/p99), and batched reads (``BATCH`` of
``GET_FAIRSHARE`` items, one snapshot per batch).

Results are printed, appended to ``benchmarks/results.txt``, and written
to ``benchmarks/BENCH_serve.json`` so CI can track the serving perf per
PR.  Set ``REPRO_BENCH_SCALE=small`` for a smoke pass (drops the 100k
tier); the QPS and batch-gain gates at the 10k tier run in both modes.
``REPRO_SERVE_MIN_QPS`` lowers the single-key QPS floor for constrained
CI runners (default 20000).
"""

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.serve.client import AequusClient
from repro.serve.daemon import build_demo_site, serve_site

JSON_PATH = Path(__file__).parent / "BENCH_serve.json"

#: users per scale tier; smoke mode trims the expensive top tier
_SCALES = {"paper": (1_000, 10_000, 100_000), "small": (1_000, 10_000)}

#: the tier the acceptance gates apply to
GATE_USERS = 10_000
GATE_SINGLE_QPS = float(os.environ.get("REPRO_SERVE_MIN_QPS", 20_000))
GATE_BATCH_GAIN = 5.0

SINGLE_REQUESTS = 20_000      #: pipelined single-key requests per tier
WORKERS = 128                 #: concurrent requesters (pipelining depth)
BATCH_SIZE = 512              #: keys per BATCH request
BATCH_COUNT = 40              #: batches per measurement pass
LATENCY_SAMPLES = 300         #: sequential requests for the p50/p99 probe
DISTINCT_USERS = 512          #: distinct keys cycled through per tier
REPEATS = 3                   #: best-of passes (OS scheduling jitter between
                              #: the client and server threads is large)


def scale_tiers():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def query_users(n_users):
    step = max(1, n_users // DISTINCT_USERS)
    return [f"u{i}" for i in range(0, n_users, step)]


async def _measure(host, port, users):
    async with AequusClient(host, port, pool_size=1, timeout=30.0) as client:
        # warm up: connection, snapshot, coalescing cache
        await asyncio.gather(*[client.get_fairshare(u) for u in users[:64]])

        # pipelined single-key throughput: a fixed pool of workers issuing
        # sequential requests models many schedulers querying concurrently
        # (and avoids timing 20k Task creations instead of the server)
        n = len(users)
        per_worker = SINGLE_REQUESTS // WORKERS

        async def worker(w):
            base = w * per_worker
            for i in range(per_worker):
                await client.get_fairshare(users[(base + i) % n])

        single_qps = 0.0
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            await asyncio.gather(*[worker(w) for w in range(WORKERS)])
            single_s = time.perf_counter() - t0
            single_qps = max(single_qps, (per_worker * WORKERS) / single_s)

        # sequential request latency (no pipelining: full round trips)
        lat = []
        for i in range(LATENCY_SAMPLES):
            t0 = time.perf_counter()
            await client.get_fairshare(users[i % n])
            lat.append(time.perf_counter() - t0)
        lat.sort()
        p50 = statistics.median(lat)
        p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))]

        # batched reads: same keys, BATCH_SIZE per round trip.  Per-batch
        # timing with a min estimator: on a shared core, whole-pass timing
        # is dominated by scheduler preemptions, while the fastest single
        # round trip tracks the server's intrinsic batch capacity
        best_batch_s = float("inf")
        for r in range(REPEATS):
            for b in range(BATCH_COUNT):
                keys = [users[(b * BATCH_SIZE + i) % n]
                        for i in range(BATCH_SIZE)]
                t0 = time.perf_counter()
                await client.batch_lookup_fairshare(keys)
                best_batch_s = min(best_batch_s, time.perf_counter() - t0)
        batch_kps = BATCH_SIZE / best_batch_s

        return dict(single_qps=single_qps,
                    latency_p50_us=p50 * 1e6,
                    latency_p99_us=p99 * 1e6,
                    batch_keys_per_s=batch_kps,
                    batch_gain=batch_kps / single_qps)


@pytest.fixture(scope="module")
def serve_rows(report):
    rows = []
    for n_users in scale_tiers():
        _, site = build_demo_site(n_users, seed=0)
        thread = serve_site(site)
        try:
            row = asyncio.run(_measure(thread.host, thread.port,
                                       query_users(n_users)))
        finally:
            thread.stop()
            site.stop()
        row["n_users"] = n_users
        rows.append(row)
    block = ["\n== serve scaling (aequusd over loopback TCP) =="] + [
        f"{r['n_users']:>7} users: single {r['single_qps']:9.0f} qps  "
        f"p50 {r['latency_p50_us']:6.0f} us  p99 {r['latency_p99_us']:6.0f} us  "
        f"batch {r['batch_keys_per_s']:9.0f} keys/s  "
        f"gain {r['batch_gain']:5.1f}x"
        for r in rows]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="serve_scaling",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             gate=dict(users=GATE_USERS, min_single_qps=GATE_SINGLE_QPS,
                       min_batch_gain=GATE_BATCH_GAIN),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestServeScaling:
    def test_single_key_qps_gate_at_10k_users(self, serve_rows):
        gate = next(r for r in serve_rows if r["n_users"] == GATE_USERS)
        assert gate["single_qps"] >= GATE_SINGLE_QPS, (
            f"sustained only {gate['single_qps']:.0f} single-key qps at "
            f"{GATE_USERS} users (need >= {GATE_SINGLE_QPS:.0f})")

    def test_batch_gain_gate_at_10k_users(self, serve_rows):
        gate = next(r for r in serve_rows if r["n_users"] == GATE_USERS)
        assert gate["batch_gain"] >= GATE_BATCH_GAIN, (
            f"batched reads only {gate['batch_gain']:.1f}x single-key "
            f"throughput at {GATE_USERS} users (need >= {GATE_BATCH_GAIN}x)")

    def test_throughput_does_not_collapse_with_scale(self, serve_rows):
        # serving reads from the snapshot is O(1) in site size: the top
        # tier must stay within 4x of the smallest tier's throughput
        assert serve_rows[-1]["single_qps"] >= serve_rows[0]["single_qps"] / 4

    def test_json_artifact_written(self, serve_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "serve_scaling"
        assert len(data["rows"]) == len(scale_tiers())
        for row in data["rows"]:
            assert row["latency_p99_us"] >= row["latency_p50_us"]
