"""Fleet collector gates: scrape overhead and gauge fidelity.

Two acceptance bars for the telemetry plane (DESIGN.md §14), both
measured against a real 3-daemon grid on loopback:

1. **Overhead** — a collector scraping METRICS + INFO + TRACE_EXPORT
   from every daemon at 1 s intervals must cost
   < ``REPRO_COLLECTOR_MAX_OVERHEAD`` (default 5%) of the grid's
   serve-plane throughput.  The collector runs as its own OS process
   (``aequus-repro top``, exactly the deployment shape) so the gate
   isolates what scraping does to the *daemons* — an in-process
   collector would instead measure GIL contention inside the load
   generator.  Methodology follows ``test_obs_overhead.py``: on and off
   passes interleave on the *same* booted grid across several trials,
   and each mode's capacity is its best pass — wall-clock drift
   (compactions, CI neighbors) lands on both modes alike, so the ratio
   isolates the scrape cost.

2. **Fidelity** — the ``fleet/max_staleness`` gauge the collector derives
   from INFO must agree with a direct staleness sampling pass (the
   ``test_grid_scaling.py`` / BENCH_grid methodology, polling the same
   serve plane) at the p99, within the grid analogue of the PR-5
   freshness bound: both observers watch a quantity that moves one
   protocol beat (exchange + refresh) per step and are themselves up to
   one polling interval stale.

Results land in ``benchmarks/BENCH_collector.json`` (and results.txt);
set ``REPRO_BENCH_SCALE=small`` for the smoke tier.
"""

import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.grid.harness import GridHarness, GridSpec
from repro.obs.collector import FleetCollector
from repro.serve.client import AequusClient

JSON_PATH = Path(__file__).parent / "BENCH_collector.json"

SITES = 3
EXCHANGE_INTERVAL = 0.5
REFRESH_INTERVAL = 0.5
SCRAPE_INTERVAL = 1.0

#: (users, requests per timing pass, staleness window s) per scale tier;
#: each pass must span several scrape intervals so the 1 Hz scrape cost
#: amortizes into the measurement instead of hitting some passes and
#: missing others
_SCALES = {"paper": (48, 100_000, 8.0), "small": (18, 40_000, 4.0)}

GATE_MAX_OVERHEAD = float(
    os.environ.get("REPRO_COLLECTOR_MAX_OVERHEAD", 0.05))

#: staleness moves in protocol beats; each observer adds one poll period.
#: (The PR-5 bound construction — sum the hold intervals of every layer
#: between the two measurements, plus slack for CI scheduling stalls.)
AGREEMENT_BOUND = (EXCHANGE_INTERVAL + 2 * REFRESH_INTERVAL
                   + SCRAPE_INTERVAL + 1.0)

TRIALS = 3                    #: interleaved off/on passes
REPEATS = 2                   #: best-of timing passes per mode window
WORKERS = 24                  #: concurrent requesters across the fleet


def scale_tier():
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "paper")]


def percentile(samples, q):
    samples = sorted(samples)
    return samples[min(len(samples) - 1, int(q * (len(samples) - 1)))]


async def _fleet_pass(targets, users, n_requests):
    """Best-of throughput of ``n_requests`` fairshare reads spread over
    every site's serve plane."""
    async with contextlib.AsyncExitStack() as stack:
        clients = [await stack.enter_async_context(
            AequusClient(host, port, pool_size=1, timeout=30.0))
            for host, port in targets]
        for client in clients:   # warmup: populate caches, open sockets
            await asyncio.gather(*[client.get_fairshare(u)
                                   for u in users[:8]])
        n_users, n_clients = len(users), len(clients)
        per_worker = n_requests // WORKERS

        async def worker(w):
            client = clients[w % n_clients]
            base = w * per_worker
            for i in range(per_worker):
                await client.get_fairshare(users[(base + i) % n_users])

        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            await asyncio.gather(*[worker(w) for w in range(WORKERS)])
            best = min(best, time.perf_counter() - t0)
        return (per_worker * WORKERS) / best


def _measure_qps(grid, n_requests):
    targets = [(grid.spec.host, grid.serve_ports[name])
               for name in grid.spec.site_names()]
    users = [f"u{i}" for i in range(grid.spec.users)]
    return asyncio.run(_fleet_pass(targets, users, n_requests))


def _collector_for(grid):
    return FleetCollector(
        {name: (grid.spec.host, grid.serve_ports[name])
         for name in grid.spec.site_names()},
        interval=SCRAPE_INTERVAL, virtual_epoch=grid._epoch)


@contextlib.contextmanager
def _top_process(grid):
    """``aequus-repro top`` against the grid, as its own OS process."""
    cmd = [sys.executable, "-m", "repro.cli", "top",
           "--interval", str(SCRAPE_INTERVAL),
           "--duration", "600",
           "--virtual-epoch", repr(grid._epoch)]
    for name in grid.spec.site_names():
        cmd += ["--target",
                f"{name}={grid.spec.host}:{grid.serve_ports[name]}"]
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        time.sleep(2 * SCRAPE_INTERVAL)   # let scraping reach steady state
        assert proc.poll() is None, "top exited during warmup"
        yield proc
    finally:
        proc.terminate()
        proc.wait(timeout=10.0)


@pytest.fixture(scope="module")
def collector_rows(report):
    users, n_requests, window = scale_tier()
    spec = GridSpec(sites=SITES, users=users, usage_jobs=4,
                    exchange_interval=EXCHANGE_INTERVAL,
                    refresh_interval=REFRESH_INTERVAL,
                    histogram_interval=5.0)
    with GridHarness(spec) as grid:
        grid.wait_converged(max_staleness=10 * EXCHANGE_INTERVAL,
                            timeout=60.0)

        # -- gate 1: interleaved on/off serve throughput ------------------
        qps = {True: [], False: []}
        for _ in range(TRIALS):
            qps[False].append(_measure_qps(grid, n_requests))
            with _top_process(grid):
                qps[True].append(_measure_qps(grid, n_requests))
        qps_on, qps_off = max(qps[True]), max(qps[False])

        # -- gate 2: gauge vs directly-sampled staleness ------------------
        collector = _collector_for(grid).start()
        try:
            sampled = grid.staleness_samples(window)
            # one more beat so the gauge covers the sampling window's tail
            time.sleep(2 * SCRAPE_INTERVAL)
            gauge = collector.store["fleet/max_staleness"].values()
            scrapes, errors = collector.scrapes, collector.scrape_errors
        finally:
            collector.stop()

    assert sampled and gauge, "staleness windows produced no samples"
    sampled_p99 = percentile(sampled, 0.99)
    gauge_p99 = percentile(gauge, 0.99)
    rows = [
        dict(gate="overhead", sites=SITES, users=users,
             on_qps=round(qps_on, 1), off_qps=round(qps_off, 1),
             overhead=qps_off / qps_on - 1.0),
        dict(gate="staleness_agreement", sites=SITES, users=users,
             gauge_p99=round(gauge_p99, 4), sampled_p99=round(sampled_p99, 4),
             delta=round(abs(gauge_p99 - sampled_p99), 4),
             scrapes=scrapes, scrape_errors=errors,
             bound=AGREEMENT_BOUND),
    ]
    block = [f"\n== fleet collector on a {SITES}-site grid "
             f"({users} users, {SCRAPE_INTERVAL}s scrapes) =="] + [
        f"serve: on {qps_on:8.0f} qps  off {qps_off:8.0f} qps  "
        f"overhead {rows[0]['overhead'] * 100:+5.1f}% "
        f"(gate < {GATE_MAX_OVERHEAD * 100:.0f}%)",
        f"staleness p99: gauge {gauge_p99:5.2f}s  "
        f"sampled {sampled_p99:5.2f}s  "
        f"delta {rows[1]['delta']:5.2f}s (bound {AGREEMENT_BOUND:.1f}s)"]
    for line in block:
        print(line)
    report.extend(block)
    JSON_PATH.write_text(json.dumps(
        dict(benchmark="collector_overhead",
             scale=os.environ.get("REPRO_BENCH_SCALE", "paper"),
             exchange_interval=EXCHANGE_INTERVAL,
             refresh_interval=REFRESH_INTERVAL,
             scrape_interval=SCRAPE_INTERVAL,
             gate=dict(max_overhead=GATE_MAX_OVERHEAD,
                       agreement_bound=AGREEMENT_BOUND),
             rows=rows),
        indent=2) + "\n")
    return rows


class TestCollectorGates:
    def test_scrape_overhead_under_gate(self, collector_rows):
        row = next(r for r in collector_rows if r["gate"] == "overhead")
        assert row["overhead"] < GATE_MAX_OVERHEAD, (
            f"collector scraping costs {row['overhead'] * 100:.1f}% serve "
            f"throughput (gate < {GATE_MAX_OVERHEAD * 100:.0f}%)")

    def test_gauge_agrees_with_sampled_p99(self, collector_rows):
        row = next(r for r in collector_rows
                   if r["gate"] == "staleness_agreement")
        assert row["delta"] <= row["bound"], (
            f"fleet/max_staleness p99 {row['gauge_p99']:.2f}s vs sampled "
            f"p99 {row['sampled_p99']:.2f}s: delta {row['delta']:.2f}s "
            f"exceeds the freshness bound {row['bound']:.1f}s")

    def test_collector_scraped_cleanly(self, collector_rows):
        row = next(r for r in collector_rows
                   if r["gate"] == "staleness_agreement")
        assert row["scrapes"] >= 2
        assert row["scrape_errors"] == 0

    def test_json_artifact_written(self, collector_rows):
        data = json.loads(JSON_PATH.read_text())
        assert data["benchmark"] == "collector_overhead"
        assert {r["gate"] for r in data["rows"]} == {
            "overhead", "staleness_agreement"}
