"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate-trace", "--jobs", "100", "--out", "x.tsv"])
        assert args.command == "generate-trace"
        assert args.jobs == 100

    def test_run_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestCommands:
    def test_generate_and_fit_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.tsv"
        assert main(["generate-trace", "--jobs", "1500",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["fit", str(out), "--subsample", "800"]) == 0
        text = capsys.readouterr().out
        assert "U65" in text and "arrival fits" in text

    def test_generate_testbed_trace(self, tmp_path, capsys):
        out = tmp_path / "tb.tsv"
        assert main(["generate-trace", "--testbed", "--jobs", "500",
                     "--span", "600", "--cores", "40",
                     "--out", str(out)]) == 0
        from repro.workload.trace import Trace
        trace = Trace.load(out)
        assert trace.n_jobs == 500
        assert trace.end <= 600.0

    def test_probe_projections(self, capsys):
        assert main(["probe-projections"]) == 0
        text = capsys.readouterr().out
        assert "matches paper" in text
        assert "DIFFERS" not in text

    def test_run_baseline_small(self, capsys):
        assert main(["run", "baseline", "--jobs", "800", "--span", "900",
                     "--sites", "1", "--hosts", "20"]) == 0
        text = capsys.readouterr().out
        assert "jobs submitted/completed" in text

    def test_run_partial_enforces_site_minimum(self, capsys):
        assert main(["run", "partial", "--jobs", "800", "--span", "900",
                     "--sites", "2", "--hosts", "10"]) == 0
        text = capsys.readouterr().out
        assert "read-only site" in text


class TestFreshnessCli:
    """probe --max-staleness and the report command (live + offline)."""

    @pytest.fixture
    def served(self):
        from repro.serve.daemon import build_demo_site, serve_site

        engine, site = build_demo_site(40, seed=1)
        thread = serve_site(site)
        yield engine, site, thread
        thread.stop()
        site.stop()

    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            ["probe", "--max-staleness", "120"])
        assert args.max_staleness == 120.0
        args = build_parser().parse_args(
            ["report", "--from", "x.jsonl", "--out", "r.md"])
        assert args.from_file == "x.jsonl" and args.out == "r.md"
        args = build_parser().parse_args(
            ["serve", "--record", "f.jsonl", "--record-interval", "5"])
        assert args.record == "f.jsonl" and args.record_interval == 5.0

    def test_probe_ok_within_staleness_budget(self, served, capsys):
        _, _, thread = served
        rc = main(["probe", "--port", str(thread.port),
                   "--max-staleness", "1000"])
        text = capsys.readouterr().out
        assert rc == 0
        assert "origin" in text and "probe: ok" in text

    def test_probe_fails_on_stalled_horizon(self, served, capsys):
        engine, site, thread = served
        # freeze the stack, then let virtual time run away: every origin's
        # horizon stalls while "now" advances
        site.stop()
        engine.run_until(engine.now + 500.0)
        rc = main(["probe", "--port", str(thread.port),
                   "--stale-factor", "1e9", "--max-staleness", "120"])
        text = capsys.readouterr().out
        assert rc == 1
        assert "worst origin usage horizon lags" in text

    def test_report_live_daemon(self, served, capsys):
        _, _, thread = served
        rc = main(["report", "--port", str(thread.port)])
        text = capsys.readouterr().out
        assert rc == 0
        assert "# Aequus fairness report" in text
        assert "Usage horizons" in text

    def test_report_from_jsonl(self, tmp_path, capsys):
        from repro.obs.timeseries import SeriesStore

        store = SeriesStore()
        for t in range(5):
            store.sample("divergence_max", float(t) * 10.0, 0.01 * t)
        src = tmp_path / "fairness.jsonl"
        store.to_jsonl(str(src))
        out = tmp_path / "report.md"
        rc = main(["report", "--from", str(src), "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# Aequus fairness report" in text
        assert "Cross-site divergence" in text
        assert "| divergence_max |" in text

    def test_report_unreachable_daemon(self, capsys):
        rc = main(["report", "--port", "1", "--timeout", "0.2"])
        assert rc == 2
