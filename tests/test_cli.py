"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate-trace", "--jobs", "100", "--out", "x.tsv"])
        assert args.command == "generate-trace"
        assert args.jobs == 100

    def test_run_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestCommands:
    def test_generate_and_fit_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.tsv"
        assert main(["generate-trace", "--jobs", "1500",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["fit", str(out), "--subsample", "800"]) == 0
        text = capsys.readouterr().out
        assert "U65" in text and "arrival fits" in text

    def test_generate_testbed_trace(self, tmp_path, capsys):
        out = tmp_path / "tb.tsv"
        assert main(["generate-trace", "--testbed", "--jobs", "500",
                     "--span", "600", "--cores", "40",
                     "--out", str(out)]) == 0
        from repro.workload.trace import Trace
        trace = Trace.load(out)
        assert trace.n_jobs == 500
        assert trace.end <= 600.0

    def test_probe_projections(self, capsys):
        assert main(["probe-projections"]) == 0
        text = capsys.readouterr().out
        assert "matches paper" in text
        assert "DIFFERS" not in text

    def test_run_baseline_small(self, capsys):
        assert main(["run", "baseline", "--jobs", "800", "--span", "900",
                     "--sites", "1", "--hosts", "20"]) == 0
        text = capsys.readouterr().out
        assert "jobs submitted/completed" in text

    def test_run_partial_enforces_site_minimum(self, capsys):
        assert main(["run", "partial", "--jobs", "800", "--span", "900",
                     "--sites", "2", "--hosts", "10"]) == 0
        text = capsys.readouterr().out
        assert "read-only site" in text
