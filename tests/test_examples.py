"""Smoke tests for the example scripts.

Fast examples run end-to-end in a subprocess; the long-running ones are
compile-checked (their logic is covered by the scenario integration tests).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
FAST = ["quickstart.py", "vector_factors.py", "observability.py",
        "evaluation.py"]
ALL = ["quickstart.py", "vector_factors.py", "national_grid.py",
       "workload_modeling.py", "partial_participation.py", "slurm_vs_maui.py",
       "serving.py", "observability.py", "evaluation.py",
       "fleet_observability.py"]


class TestExamples:
    def test_all_examples_present(self):
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert set(ALL) <= found

    @pytest.mark.parametrize("name", ALL)
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    @pytest.mark.parametrize("name", FAST)
    def test_fast_examples_run(self, name):
        proc = subprocess.run([sys.executable, str(EXAMPLES / name)],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip(), "example produced no output"

    def test_quickstart_output_shape(self):
        proc = subprocess.run([sys.executable, str(EXAMPLES / "quickstart.py")],
                              capture_output=True, text=True, timeout=120)
        out = proc.stdout
        assert "Effective policy tree" in out
        assert "Fairshare vectors" in out
        assert "percental" in out

    def test_vector_factors_output_shape(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "vector_factors.py")],
            capture_output=True, text=True, timeout=120)
        out = proc.stdout
        assert "suffix" in out and "blend" in out

    def test_evaluation_output_shape(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "evaluation.py")],
            capture_output=True, text=True, timeout=120)
        out = proc.stdout
        assert "usage horizons" in out
        assert "divergence_max" in out
        assert "convergence half-life" in out
        assert "Cross-site divergence" in out

    def test_observability_output_shape(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "observability.py")],
            capture_output=True, text=True, timeout=120)
        out = proc.stdout
        assert "aequus_requests_total" in out
        assert "fcs.refresh" in out
        assert "chrome://tracing" in out
