"""Fleet collector against a real grid: the PR's acceptance criterion.

Boots the same three-daemon testbed as test_harness.py, but with the
FleetCollector attached, and proves the tentpole end to end: the merged
Chrome trace contains at least one *complete causal chain* — an origin's
``uss.publish`` whose trace id is carried over the framed wire
(``grid.frame``), applied by a remote daemon (``uss.apply``), folded into
that daemon's refresh (``fcs.refresh``) and republished snapshot
(``snapshot.publish``) — spanning at least two distinct pids.
"""

import json
import time

import pytest

from repro.grid.harness import GridHarness, GridSpec

SPEC = GridSpec(sites=3, users=18, usage_jobs=4,
                exchange_interval=0.5, refresh_interval=0.5,
                histogram_interval=5.0)
BOUND = 5.0


@pytest.fixture(scope="module")
def grid():
    with GridHarness(SPEC, collector=True,
                     collector_interval=0.5) as harness:
        harness.wait_converged(max_staleness=BOUND, timeout=30.0)
        yield harness


def _traces_of(event):
    """Trace ids an event participates in, whichever side recorded it."""
    args = event.get("args") or {}
    ids = set(args.get("traces") or [])
    if args.get("trace"):
        ids.add(args["trace"])
    return ids


def _chains(events):
    """Complete causal chains in a merged event list.

    Returns trace ids that appear on every hop of
    publish → frame → apply → fcs refresh → snapshot publish, with the
    publish and apply pids distinct (two processes, i.e. two daemons).
    """
    hops = {"uss.publish": {}, "grid.frame": {}, "uss.apply": {},
            "fcs.refresh": {}, "snapshot.publish": {}}
    for event in events:
        pids = hops.get(event.get("name"))
        if pids is None:
            continue
        for trace_id in _traces_of(event):
            pids.setdefault(trace_id, set()).add(event.get("pid"))
    complete = set(hops["uss.publish"])
    for name in ("grid.frame", "uss.apply", "fcs.refresh",
                 "snapshot.publish"):
        complete &= set(hops[name])
    return {trace_id for trace_id in complete
            if hops["uss.apply"][trace_id] - hops["uss.publish"][trace_id]}


def _wait_for(predicate, timeout, interval=0.5):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value or time.monotonic() >= deadline:
            return value
        time.sleep(interval)


class TestCausalChain:
    def test_merged_trace_contains_cross_daemon_chain(self, grid):
        chains = _wait_for(
            lambda: _chains(grid.collector.events()), timeout=25.0)
        assert chains, "no complete publish→…→snapshot chain in the " \
                       "merged trace"
        events = grid.collector.events()
        trace_id = sorted(chains)[0]
        linked = [e for e in events if trace_id in _traces_of(e)]
        # the chain crosses processes: publish pid differs from apply pid
        pids = {e["pid"] for e in linked}
        assert len(pids) >= 2
        # and sites: every event was stamped with its recording site
        sites = {e["args"]["site"] for e in linked}
        assert len(sites) >= 2

    def test_events_share_the_fleet_timeline(self, grid):
        _wait_for(lambda: grid.collector.events(), timeout=15.0)
        spans = [e for e in grid.collector.events() if e.get("ph") == "X"]
        assert spans
        # aligned to the harness epoch: timestamps are small positive
        # offsets (µs since boot), not absolute wall-clock values
        horizon_us = 30 * 60 * 1e6
        assert all(-1e6 < e["ts"] < horizon_us for e in spans)
        # every daemon got a process_name metadata record
        named = {e["args"]["name"] for e in grid.collector.events()
                 if e.get("ph") == "M"}
        assert len(named) >= SPEC.sites


class TestFleetSeries:
    def test_fleet_gauges_populate(self, grid):
        store = grid.collector.store
        _wait_for(lambda: "fleet/max_staleness" in store, timeout=15.0)
        assert "fleet/qps" in store
        all_up = _wait_for(
            lambda: all(f"up/{site}" in store
                        and store[f"up/{site}"].last()[1] == 1.0
                        for site in SPEC.site_names()),
            timeout=15.0)
        assert all_up, "not every daemon scraped as up"
        for site in SPEC.site_names():
            assert f"staleness_max/{site}" in store
        # converged fleet: the staleness gauge settles inside the bound
        # the harness verified over INFO (poll — on a loaded CI box a
        # single scrape can catch a transient spike)
        settled = _wait_for(
            lambda: store["fleet/max_staleness"].last()[1] < BOUND,
            timeout=20.0)
        assert settled, (
            f"fleet/max_staleness stuck at "
            f"{store['fleet/max_staleness'].last()[1]:.2f}s >= {BOUND}s")

    def test_frame_backlog_series_track_links(self, grid):
        store = grid.collector.store
        links = _wait_for(
            lambda: store.names(prefix="frame_backlog/"), timeout=15.0)
        assert links, "no exchange link ever produced a backlog series"
        for name in links:
            assert store[name].last()[1] >= 0.0

    def test_merged_exposition_labels_every_site(self, grid):
        text = grid.collector.render_merged()
        for site in SPEC.site_names():
            assert f'aequus_requests_total{{site="{site}"}}' in text

    def test_table_has_one_live_row_per_site(self, grid):
        rows = grid.collector.table()
        assert [r["site"] for r in rows] == sorted(SPEC.site_names())
        assert all(r["up"] for r in rows)


class TestFaultAnnotation:
    def test_partition_and_heal_land_as_instant_events(self, grid):
        grid.partition("s0", "s1")
        try:
            time.sleep(1.0)
        finally:
            grid.heal("s0", "s1")
        names = [(e["name"], e["args"]) for e in grid.collector.events()
                 if e.get("ph") == "i"]
        assert ("fault.partition", {"a": "s0", "b": "s1"}) in names
        assert ("fault.heal", {"a": "s0", "b": "s1"}) in names
        grid.wait_converged(max_staleness=BOUND, timeout=30.0)


class TestSnapshot:
    def test_snapshot_writes_fleet_artifacts(self, grid, tmp_path):
        _wait_for(lambda: _chains(grid.collector.events()), timeout=25.0)
        paths = grid.collector.snapshot(str(tmp_path / "fleet"))
        with open(paths["trace"], encoding="utf-8") as fh:
            doc = json.load(fh)
        assert _chains(doc["traceEvents"]), \
            "exported trace lost the causal chain"
        assert "series,time,value" in (tmp_path / "fleet.csv").read_text()
        jsonl = (tmp_path / "fleet.jsonl").read_text()
        assert "fleet/max_staleness" in jsonl
