"""TcpUssTransport: delivery, pump semantics, reconnect, accounting."""

import time

import pytest

from repro.grid.transport import TcpUssTransport
from repro.services.messages import UsageDeltaMessage


def delta(seq, site="a", **kwargs):
    kwargs.setdefault("sent_at", float(seq))
    kwargs.setdefault("interval", 1.0)
    return UsageDeltaMessage(site=site, seq=seq, full=(seq == 1), **kwargs)


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def pair():
    a = TcpUssTransport("a").start()
    b = TcpUssTransport("b").start()
    a.add_peer("uss:b", "127.0.0.1", b.port)
    b.add_peer("uss:a", "127.0.0.1", a.port)
    yield a, b
    a.close()
    b.close()


class TestDelivery:
    def test_send_pump_dispatch(self, pair):
        a, b = pair
        received = []
        b.connect("uss:b", received.append)
        message = delta(1)
        assert a.send("uss:a", "uss:b", message)
        assert wait_for(lambda: b.pending() > 0)
        # nothing is dispatched until the owning thread pumps
        assert received == []
        assert b.pump() == 1
        assert received == [message]
        assert b.stats.delivered == 1

    def test_many_frames_in_order(self, pair):
        a, b = pair
        received = []
        b.connect("uss:b", received.append)
        messages = [delta(seq) for seq in range(1, 21)]
        for message in messages:
            a.send("uss:a", "uss:b", message)
        assert wait_for(lambda: b.pending() == 20)
        b.pump()
        assert received == messages

    def test_pump_limit(self, pair):
        a, b = pair
        received = []
        b.connect("uss:b", received.append)
        for seq in range(1, 6):
            a.send("uss:a", "uss:b", delta(seq))
        assert wait_for(lambda: b.pending() == 5)
        assert b.pump(limit=2) == 2
        assert len(received) == 2
        assert b.pump() == 3

    def test_loopback_same_transport(self, pair):
        a, _ = pair
        received = []
        a.connect("uss:a", received.append)
        message = delta(1, site="x")
        assert a.send("uss:x", "uss:a", message)
        assert a.pump() == 1
        assert received == [message]

    def test_unknown_destination_dropped(self, pair):
        a, _ = pair
        before = a.stats.dropped
        assert not a.send("uss:a", "uss:nowhere", delta(1))
        assert a.stats.dropped == before + 1

    def test_send_accounts_wire_model(self, pair):
        a, b = pair
        b.connect("uss:b", lambda m: None)
        message = delta(1, user_table=["u"], user_idx=[0], bin_idx=[0],
                        charges=[1.0])
        a.send("uss:a", "uss:b", message)
        assert a.stats.sent == 1
        assert a.stats.payload_bytes == message.wire_bytes()


class TestEndpoints:
    def test_connect_disconnect(self, pair):
        a, b = pair
        b.connect("uss:b", lambda m: None)
        with pytest.raises(ValueError):
            b.connect("uss:b", lambda m: None)
        b.disconnect("uss:b")
        b.disconnect("uss:b")  # idempotent
        b.connect("uss:b", lambda m: None)

    def test_pump_without_handler_drops(self, pair):
        a, b = pair
        a.send("uss:a", "uss:b", delta(1))
        assert wait_for(lambda: b.pending() > 0)
        before = b.stats.dropped
        assert b.pump() == 0
        assert b.stats.dropped == before + 1

    def test_duplicate_peer_rejected(self, pair):
        a, _ = pair
        with pytest.raises(ValueError):
            a.add_peer("uss:b", "127.0.0.1", 1)


class TestResilience:
    def test_reconnect_after_peer_restart(self, pair):
        a, b = pair
        received = []
        b.connect("uss:b", received.append)
        a.send("uss:a", "uss:b", delta(1))
        assert wait_for(lambda: b.pending() > 0)
        b.pump()
        port = b.port
        b.close()
        time.sleep(0.1)
        # queued while the peer is down; retained across the reconnect
        survivor = delta(2)
        a.send("uss:a", "uss:b", survivor)
        time.sleep(0.2)
        b2 = TcpUssTransport("b", port=port).start()
        try:
            received2 = []
            b2.connect("uss:b", received2.append)

            def arrived():
                b2.pump()
                return survivor in received2

            assert wait_for(arrived)
            reconnects = sum(c.value for _k, c in a._reconnects.items())
            assert reconnects >= 1
        finally:
            b2.close()

    def test_backlog_overflow_drops_and_counts(self):
        a = TcpUssTransport("a", max_backlog=4)
        a.start()
        try:
            # peer that will never answer: a bound-but-unserved port
            import socket
            gate = socket.socket()
            gate.bind(("127.0.0.1", 0))
            gate.listen(1)  # accepts nothing beyond the backlog
            a.add_peer("uss:b", "127.0.0.1", gate.getsockname()[1])
            for seq in range(1, 40):
                a.send("uss:a", "uss:b", delta(seq))

            def overflowed():
                return any(k[0] == "backlog" and c.value > 0
                           for k, c in a._frames_dropped.items())

            assert wait_for(overflowed, timeout=5.0)
            gate.close()
        finally:
            a.close()

    def test_close_idempotent(self):
        a = TcpUssTransport("a").start()
        a.close()
        a.close()

    def test_send_after_close_refused(self):
        a = TcpUssTransport("a").start()
        a.close()
        assert not a.send("uss:a", "uss:b", delta(1))

    def test_grid_metrics_registered(self, pair):
        from repro.obs.export import render
        a, _ = pair
        text = render(a.registry)
        for family in ("aequus_grid_reconnects_total",
                       "aequus_grid_frames_total",
                       "aequus_grid_frames_dropped_total",
                       "aequus_grid_peer_bytes_total",
                       "aequus_grid_link_up"):
            assert family in text
