"""Frame codec: every USS message survives the wire byte-for-byte."""

import json
import struct

import pytest

from repro.grid.wire import (GRID_WIRE_VERSION, MAX_FRAME_BYTES, WireError,
                             decode_frame, encode_frame, frame_length)
from repro.services.messages import (PolicyExportMessage, UsageDeltaMessage,
                                     UsageExchangeMessage, UsageResyncRequest)


def _roundtrip(message):
    frame = encode_frame("uss:a", "uss:b", message)
    assert frame_length(frame[:4]) == len(frame) - 4
    src, dst, decoded = decode_frame(frame[4:])
    assert (src, dst) == ("uss:a", "uss:b")
    return decoded


class TestRoundtrip:
    def test_delta(self):
        message = UsageDeltaMessage(
            site="a", sent_at=12.5, interval=30.0, seq=7, full=False,
            user_table=["alice", "bob"], user_idx=[0, 0, 1],
            bin_idx=[0, 3, 1], charges=[1.5, 0.0, 2.25],
            horizon=11.0, boot="deadbeef")
        assert _roundtrip(message) == message

    def test_full_snapshot_restores_int_bin_keys(self):
        message = UsageExchangeMessage(
            site="a", sent_at=1.0, interval=30.0,
            snapshot={"alice": {0: 1.5, 12: 2.5}, "bob": {3: 0.25}},
            horizon=0.5, boot="cafe")
        decoded = _roundtrip(message)
        assert decoded == message
        # JSON stringifies dict keys; the codec must hand ints back
        assert all(isinstance(b, int)
                   for bins in decoded.snapshot.values() for b in bins)

    def test_empty_heartbeat(self):
        message = UsageDeltaMessage(site="a", sent_at=60.0, interval=30.0,
                                    seq=3, full=False)
        assert _roundtrip(message) == message

    def test_resync_request(self):
        message = UsageResyncRequest(site="b", sent_at=90.0, target="a")
        assert _roundtrip(message) == message

    def test_envelope_is_versioned_json(self):
        frame = encode_frame("uss:a", "uss:b",
                             UsageResyncRequest(site="b", sent_at=1.0,
                                                target="a"))
        envelope = json.loads(frame[4:].decode("utf-8"))
        assert envelope["v"] == GRID_WIRE_VERSION
        assert envelope["type"] == "UsageResyncRequest"


class TestRejection:
    def test_non_wire_message_rejected_on_encode(self):
        policy = PolicyExportMessage(source="pds:a", sent_at=1.0)
        with pytest.raises(WireError):
            encode_frame("pds:a", "pds:b", policy)

    def test_garbage_payload(self):
        with pytest.raises(WireError):
            decode_frame(b"\xff\xfe not json")

    def test_non_object_payload(self):
        with pytest.raises(WireError):
            decode_frame(b"[1, 2, 3]")

    def test_unknown_type(self):
        payload = json.dumps({"v": 1, "src": "x", "dst": "y",
                              "type": "EvilMessage", "data": {}}).encode()
        with pytest.raises(WireError):
            decode_frame(payload)

    def test_missing_fields(self):
        payload = json.dumps({"v": 1, "src": "x", "dst": "y",
                              "type": "UsageResyncRequest",
                              "data": {"site": "a"}}).encode()
        with pytest.raises(WireError):
            decode_frame(payload)

    def test_unexpected_fields(self):
        payload = json.dumps({
            "v": 1, "src": "x", "dst": "y", "type": "UsageResyncRequest",
            "data": {"site": "a", "sent_at": 1.0, "target": "b",
                     "surprise": True}}).encode()
        with pytest.raises(WireError):
            decode_frame(payload)

    def test_oversized_declared_length(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError):
            frame_length(header)

    def test_length_within_cap_accepted(self):
        assert frame_length(struct.pack(">I", MAX_FRAME_BYTES)) \
            == MAX_FRAME_BYTES
