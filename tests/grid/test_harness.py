"""Testbed-in-a-box smoke: real daemons, real sockets, real faults.

This is the CI grid job in miniature: boot three ``aequus-repro
grid-node`` subprocesses exchanging usage over loopback TCP through
fault proxies, then exercise the full fault matrix — partition one link
and watch staleness rise on exactly that link, heal it, kill and restart
a daemon and verify the fleet resyncs with the new incarnation — all
observed through the serve plane like an operator would.

One module-scoped grid keeps the wall-clock cost to one boot.
"""

import time

import pytest

from repro.grid.harness import GridHarness, GridSpec

SPEC = GridSpec(sites=3, users=18, usage_jobs=4,
                exchange_interval=0.5, refresh_interval=0.5,
                histogram_interval=5.0)
BOUND = 5.0  # staleness bound well above one exchange interval


@pytest.fixture(scope="module")
def grid():
    with GridHarness(SPEC) as harness:
        yield harness


class TestBootAndConverge:
    def test_all_daemons_serve_and_converge(self, grid):
        waited = grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        assert waited < 30.0
        for site in SPEC.site_names():
            remote = grid.remote_staleness(site)
            assert set(remote) == set(SPEC.site_names()) - {site}

    def test_usage_flows_over_real_wire(self, grid):
        grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        for site in SPEC.site_names():
            metrics = grid.metrics(site)
            frames_in = sum(
                v for k, v in metrics.items()
                if k.startswith("aequus_grid_frames_total")
                and 'direction="in"' in k)
            assert frames_in > 0, f"{site} never received a wire frame"
            assert grid.wire_bytes(site) > 0

    def test_transport_counters_in_metrics_op(self, grid):
        metrics = grid.metrics("s0")
        for family in ("aequus_grid_reconnects_total",
                       "aequus_grid_frames_total",
                       "aequus_grid_peer_bytes_total",
                       "aequus_grid_link_up",
                       "aequus_uss_peer_restarts_total",
                       "aequus_network_payload_bytes_total"):
            assert any(k == family or k.startswith(family + "{")
                       for k in metrics), f"{family} missing from METRICS"


class TestPartition:
    def test_partition_stalls_exactly_that_link(self, grid):
        grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        grid.partition("s0", "s1")
        try:
            time.sleep(6 * SPEC.exchange_interval)
            lag_split = grid.remote_staleness("s0").get("s1", 0.0)
            lag_ok = grid.remote_staleness("s0").get("s2", float("inf"))
            assert lag_split > 2 * SPEC.exchange_interval
            assert lag_ok <= BOUND
        finally:
            grid.heal("s0", "s1")
        waited = grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        assert waited < 30.0


class TestDaemonRestart:
    def test_kill_restart_resyncs_new_incarnation(self, grid):
        grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        grid.restart("s2")
        waited = grid.wait_converged(max_staleness=BOUND, timeout=30.0)
        assert waited < 30.0
        # survivors noticed the incarnation change (boot id) and the
        # restarted daemon rebuilt its peers' state via resync
        restarts = sum(
            grid.metric_sum(site, "aequus_uss_peer_restarts_total")
            for site in ("s0", "s1"))
        assert restarts >= 1
        # the new incarnation sees every peer again
        assert set(grid.remote_staleness("s2")) == {"s0", "s1"}

    def test_survivors_kept_serving_during_outage(self, grid):
        value, known = grid.client("s0").lookup_fairshare("u0")
        assert known
        assert 0.0 <= value <= 1.0
