"""The acceptance pin: the TCP delta plane equals the in-process sim plane.

Both planes run the same N-site grid on identical schedules — same
policy, same seeded usage, same service intervals — differing only in
the transport under the USS: the reference uses the single-engine sim
bus (:class:`~repro.services.network.Network`), the subject uses one
:class:`~repro.grid.transport.TcpUssTransport` per site over real
loopback sockets, with each site on its own engine advanced in lockstep.

Timing discipline that makes the comparison exact: every service
interval is a multiple of 5 virtual seconds while the lockstep step is
1 second, and the sim bus latency (1 ms) is smaller than a step.  A
publish fired at virtual time *t* is therefore applied on the receiver
strictly after all of the receiver's own time-*t* events and strictly
before its next service tick — in both planes — so every UMS merge and
FCS refresh reads identical state.  The converged per-user priorities
must then agree to 1e-6 (in practice they are often bit-identical; the
tolerance absorbs float summation order).
"""

import time

import numpy as np
import pytest

from repro.core.usage import UsageRecord
from repro.grid.transport import TcpUssTransport
from repro.serve.daemon import build_grid_policy
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine

N_SITES = 3
N_USERS = 18
HORIZON = 41.0  # several exchange + refresh rounds past the seeds
CONFIG = dict(histogram_interval=10.0, uss_exchange_interval=5.0,
              ums_refresh_interval=5.0, fcs_refresh_interval=5.0)


def seed_usage(site: AequusSite, index: int, policy) -> None:
    """Deterministic per-site slice of users with seeded jobs."""
    rng = np.random.default_rng(100 + index)
    mine = [path for i, path in enumerate(sorted(policy.leaf_paths()))
            if i % N_SITES == index]
    for path in mine:
        duration = float(rng.integers(600, 18_000))
        site.uss.record_job(UsageRecord(user=path.rsplit("/", 1)[-1],
                                        site=site.name, start=0.0,
                                        end=duration))


def build_sim_plane(policy):
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.001)
    sites = [AequusSite(f"s{i}", engine, network, policy=policy,
                        config=SiteConfig(**CONFIG))
             for i in range(N_SITES)]
    connect_sites(sites)
    for index, site in enumerate(sites):
        seed_usage(site, index, policy)
    engine.run_until(HORIZON)
    return sites


def build_tcp_plane(policy):
    engines = [SimulationEngine() for _ in range(N_SITES)]
    transports = [TcpUssTransport(f"s{i}").start() for i in range(N_SITES)]
    for i, transport in enumerate(transports):
        for j, other in enumerate(transports):
            if i != j:
                transport.add_peer(f"uss:s{j}", "127.0.0.1", other.port)
    sites = [AequusSite(f"s{i}", engines[i], transports[i], policy=policy,
                        config=SiteConfig(**CONFIG))
             for i in range(N_SITES)]
    for site in sites:
        for other in sites:
            if other is not site:
                site.uss.add_peer(other.name)
    for index, site in enumerate(sites):
        seed_usage(site, index, policy)
    return engines, transports, sites


def quiesce(transports, timeout=15.0):
    """Pump until every frame put on the wire has come off it."""
    deadline = time.monotonic() + timeout
    while True:
        for transport in transports:
            transport.pump()
        sent = sum(t.stats.sent for t in transports)
        done = sum(t.stats.delivered + t.stats.dropped for t in transports)
        if done >= sent and all(t.pending() == 0 for t in transports):
            return
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"wire never quiesced: sent={sent} done={done}")
        time.sleep(0.002)


@pytest.fixture(scope="module")
def planes():
    policy = build_grid_policy(N_USERS, seed=7)
    sim_sites = build_sim_plane(policy)
    engines, transports, tcp_sites = build_tcp_plane(policy)
    try:
        # lockstep: all engines advance together; in-flight wire traffic
        # fully lands between steps, mirroring the sim bus's 1 ms latency
        step = 1.0
        t = 0.0
        while t < HORIZON:
            t = min(t + step, HORIZON)
            for engine in engines:
                engine.run_until(t)
            quiesce(transports)
        yield sim_sites, tcp_sites, transports
    finally:
        for site in tcp_sites:
            site.stop()
        for transport in transports:
            transport.close()


class TestLockstepEquivalence:
    def test_converged_priorities_match_1e6(self, planes):
        sim_sites, tcp_sites, _ = planes
        for sim_site, tcp_site in zip(sim_sites, tcp_sites):
            sim_values = dict(sim_site.fcs.values_view())
            tcp_values = dict(tcp_site.fcs.values_view())
            assert sim_values.keys() == tcp_values.keys()
            assert sim_values, "reference plane computed no priorities"
            for user, value in sim_values.items():
                assert tcp_values[user] == pytest.approx(value, abs=1e-6), \
                    f"{tcp_site.name}:{user} diverged"

    def test_remote_usage_actually_travelled(self, planes):
        _, tcp_sites, _ = planes
        for site in tcp_sites:
            origins = set(site.ums.usage_horizons())
            assert {f"s{i}" for i in range(N_SITES)} - {site.name} \
                <= origins | {""}, \
                f"{site.name} never saw a peer's usage: {origins}"

    def test_exchange_sequences_advanced(self, planes):
        _, tcp_sites, _ = planes
        for site in tcp_sites:
            assert site.uss.exchanges_sent >= HORIZON // 5 - 1

    def test_no_frames_lost_on_healthy_wire(self, planes):
        _, _, transports = planes
        for transport in transports:
            assert transport.stats.dropped == 0
