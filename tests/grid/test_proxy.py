"""LinkProxy: forwarding, injected latency, drops, partitions."""

import socket
import threading
import time

import pytest

from repro.grid.proxy import LinkProxy


class EchoServer:
    """Minimal upstream: echoes every byte back, counts connections."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self._closed = False
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while not self._closed:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(target=self._echo, args=(conn,),
                             daemon=True).start()

    def _echo(self, conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._closed = True
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def upstream():
    server = EchoServer()
    yield server
    server.close()


@pytest.fixture
def proxy(upstream):
    link = LinkProxy("127.0.0.1", upstream.port)
    yield link
    link.close()


def connect(proxy, timeout=5.0):
    return socket.create_connection(("127.0.0.1", proxy.listen_port),
                                    timeout=timeout)


class TestForwarding:
    def test_bytes_flow_both_ways(self, proxy):
        with connect(proxy) as sock:
            sock.sendall(b"hello grid")
            assert sock.recv(64) == b"hello grid"
        assert proxy.connections_total == 1
        assert proxy.bytes_forwarded >= 2 * len(b"hello grid")

    def test_injected_latency_delays_echo(self, proxy):
        proxy.set_latency(0.15)
        with connect(proxy) as sock:
            start = time.monotonic()
            sock.sendall(b"x")
            assert sock.recv(8) == b"x"
            elapsed = time.monotonic() - start
        # one-way latency each direction: at least ~2 * 0.15
        assert elapsed >= 0.2

    def test_latency_can_be_cleared(self, proxy):
        proxy.set_latency(0.5)
        proxy.set_latency(0.0)
        with connect(proxy) as sock:
            start = time.monotonic()
            sock.sendall(b"x")
            sock.recv(8)
            assert time.monotonic() - start < 0.4


class TestFaults:
    def test_partition_refuses_and_kills(self, proxy):
        with connect(proxy) as sock:
            sock.sendall(b"x")
            assert sock.recv(8) == b"x"
            proxy.partition()
            # the established connection dies...
            sock.settimeout(5.0)
            deadline = time.monotonic() + 5.0
            dead = False
            while time.monotonic() < deadline:
                try:
                    sock.sendall(b"y")
                    if sock.recv(8) == b"":
                        dead = True
                        break
                    time.sleep(0.05)
                except OSError:
                    dead = True
                    break
            assert dead
        # ...and a new one is accepted but immediately closed
        with connect(proxy) as fresh:
            fresh.settimeout(5.0)
            assert fresh.recv(8) == b""

    def test_heal_restores_forwarding(self, proxy):
        proxy.partition()
        proxy.heal()
        with connect(proxy) as sock:
            sock.sendall(b"back")
            assert sock.recv(16) == b"back"

    def test_drop_rate_one_kills_every_connection(self, proxy):
        proxy.set_drop_rate(1.0)
        with connect(proxy) as sock:
            sock.settimeout(5.0)
            sock.sendall(b"doomed")
            assert sock.recv(16) == b""
        assert proxy.connections_killed >= 1

    def test_kill_connections_forces_redial(self, proxy, upstream):
        with connect(proxy) as sock:
            sock.sendall(b"x")
            assert sock.recv(8) == b"x"
            proxy.kill_connections()
            sock.settimeout(5.0)
            deadline = time.monotonic() + 5.0
            dead = False
            while time.monotonic() < deadline:
                try:
                    sock.sendall(b"y")
                    if sock.recv(8) == b"":
                        dead = True
                        break
                except OSError:
                    dead = True
                    break
        assert dead
        with connect(proxy) as again:
            again.sendall(b"z")
            assert again.recv(8) == b"z"
        assert upstream.connections == 2

    def test_close_idempotent(self, upstream):
        link = LinkProxy("127.0.0.1", upstream.port)
        link.close()
        link.close()
