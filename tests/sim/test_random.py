"""Unit tests for the seeded RNG stream factory."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("x").random(5)
        b = RandomStreams(42).stream("x").random(5)
        assert a.tolist() == b.tolist()

    def test_different_names_independent(self):
        rs = RandomStreams(42)
        a = rs.stream("x").random(5)
        b = rs.stream("y").random(5)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert a.tolist() != b.tolist()

    def test_stream_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_spawn_independent_space(self):
        rs = RandomStreams(7)
        child = rs.spawn("worker")
        a = rs.stream("x").random(3)
        b = child.stream("x").random(3)
        assert a.tolist() != b.tolist()

    def test_spawn_deterministic(self):
        a = RandomStreams(7).spawn("w").stream("x").random(3)
        b = RandomStreams(7).spawn("w").stream("x").random(3)
        assert a.tolist() == b.tolist()
