"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_callbacks_may_schedule_more(self):
        engine = SimulationEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestRunUntil:
    def test_horizon_inclusive(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(1))
        engine.schedule(5.1, lambda: fired.append(2))
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_clock_lands_on_horizon_without_events(self):
        engine = SimulationEngine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_backwards_horizon_rejected(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 4


class TestPeriodic:
    def test_fires_every_interval(self):
        engine = SimulationEngine()
        times = []
        engine.periodic(10.0, lambda: times.append(engine.now))
        engine.run_until(35.0)
        assert times == [0.0, 10.0, 20.0, 30.0]

    def test_start_offset(self):
        engine = SimulationEngine()
        times = []
        engine.periodic(10.0, lambda: times.append(engine.now), start_offset=3.0)
        engine.run_until(25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_cancel_stops_firing(self):
        engine = SimulationEngine()
        times = []
        task = engine.periodic(5.0, lambda: times.append(engine.now))
        engine.run_until(11.0)
        task.cancel()
        engine.run_until(50.0)
        assert times == [0.0, 5.0, 10.0]

    def test_jitter_fn_adds_delay(self):
        engine = SimulationEngine()
        times = []
        engine.periodic(10.0, lambda: times.append(engine.now),
                        jitter_fn=lambda: 1.0)
        engine.run_until(25.0)
        assert times == [0.0, 11.0, 22.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().periodic(0.0, lambda: None)

    def test_step_returns_false_on_empty_heap(self):
        assert SimulationEngine().step() is False

    def test_run_max_events(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule(float(i), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]
