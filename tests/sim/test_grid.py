"""Unit tests for the grid submission host and identity mapping."""

import numpy as np
import pytest

from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.scheduler import BaseScheduler
from repro.services.irs import IdentityResolutionService
from repro.sim.engine import SimulationEngine
from repro.sim.grid import GridIdentityMapper, GridSubmissionHost
from repro.workload.trace import Trace, TraceJob


class ConstantScheduler(BaseScheduler):
    def compute_priority(self, job, now):
        return 0.5


def make_scheduler(name, engine, cores=16):
    cluster = Cluster(name, n_nodes=cores, cores_per_node=1)
    return ConstantScheduler(name, engine, cluster, sched_interval=1.0,
                             reprioritize_interval=10.0)


DN = "/C=SE/O=SNIC/CN=U65"


class TestIdentityMapper:
    def test_mapping_deterministic(self):
        m = GridIdentityMapper()
        assert m.system_user(DN, "c1") == m.system_user(DN, "c1")

    def test_mapping_differs_per_cluster(self):
        m = GridIdentityMapper()
        assert m.system_user(DN, "clusterA") != m.system_user(DN, "clusterB")

    def test_reverse_resolution_through_irs_endpoint(self):
        m = GridIdentityMapper()
        sys_user = m.system_user(DN, "c1")
        irs = IdentityResolutionService("c1")
        m.register_with(irs, "c1")
        assert irs.resolve(sys_user) == DN

    def test_unknown_system_user_unresolvable(self):
        m = GridIdentityMapper()
        irs = IdentityResolutionService("c1")
        m.register_with(irs, "c1")
        with pytest.raises(KeyError):
            irs.resolve("stranger")


class TestSubmissionHost:
    def test_submit_job_dispatches_to_some_cluster(self):
        engine = SimulationEngine()
        scheds = [make_scheduler(f"c{i}", engine) for i in range(3)]
        host = GridSubmissionHost(engine, scheds,
                                  rng=np.random.default_rng(0))
        job = host.submit_job(DN, duration=5.0)
        assert isinstance(job, Job)
        assert host.stats.submitted == 1
        assert sum(s.jobs_submitted for s in scheds) == 1

    def test_round_robin_cycles(self):
        engine = SimulationEngine()
        scheds = [make_scheduler(f"c{i}", engine) for i in range(3)]
        host = GridSubmissionHost(engine, scheds, dispatch="round_robin")
        for _ in range(6):
            host.submit_job(DN, duration=1.0)
        assert [s.jobs_submitted for s in scheds] == [2, 2, 2]

    def test_stochastic_spreads_roughly_evenly(self):
        engine = SimulationEngine()
        scheds = [make_scheduler(f"c{i}", engine, cores=600) for i in range(2)]
        host = GridSubmissionHost(engine, scheds,
                                  rng=np.random.default_rng(1))
        for _ in range(400):
            host.submit_job(DN, duration=1.0)
        counts = [s.jobs_submitted for s in scheds]
        assert min(counts) > 120  # not all on one cluster

    def test_unknown_dispatch_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            GridSubmissionHost(engine, [make_scheduler("c", engine)],
                               dispatch="magic")

    def test_empty_cluster_list_rejected(self):
        with pytest.raises(ValueError):
            GridSubmissionHost(SimulationEngine(), [])

    def test_schedule_trace_submits_at_arrival_times(self):
        engine = SimulationEngine()
        sched = make_scheduler("c", engine)
        host = GridSubmissionHost(engine, [sched])
        trace = Trace([TraceJob(user=DN, submit=5.0, duration=1.0),
                       TraceJob(user=DN, submit=10.0, duration=1.0)])
        assert host.schedule_trace(trace) == 2
        engine.run_until(4.0)
        assert sched.jobs_submitted == 0
        engine.run_until(5.0)
        assert sched.jobs_submitted == 1
        engine.run_until(10.0)
        assert sched.jobs_submitted == 2

    def test_system_user_mapped_per_cluster(self):
        engine = SimulationEngine()
        sched = make_scheduler("clusterx", engine)
        host = GridSubmissionHost(engine, [sched])
        job = host.submit_job(DN, duration=1.0)
        assert job.system_user == host.mapper.system_user(DN, "clusterx")
