"""Unit tests for time series, recorder, and convergence analysis."""

import pytest

from repro.sim.metrics import MetricsRecorder, TimeSeries, convergence_time, share_deviation


class TestTimeSeries:
    def test_record_and_length(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_at_step_interpolation(self):
        ts = TimeSeries("x")
        ts.record(0.0, 10.0)
        ts.record(10.0, 20.0)
        assert ts.at(5.0) == 10.0
        assert ts.at(10.0) == 20.0
        assert ts.at(100.0) == 20.0

    def test_at_before_first_sample(self):
        ts = TimeSeries("x")
        ts.record(10.0, 5.0)
        assert ts.at(0.0) == 5.0

    def test_at_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").at(0.0)

    def test_tail_mean(self):
        ts = TimeSeries("x")
        for i in range(8):
            ts.record(float(i), float(i))
        assert ts.tail_mean(0.25) == pytest.approx((6 + 7) / 2)

    def test_as_arrays(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        times, values = ts.as_arrays()
        assert times.tolist() == [0.0] and values.tolist() == [1.0]


class TestRecorder:
    def test_series_created_on_demand(self):
        rec = MetricsRecorder()
        rec.record("a", 0.0, 1.0)
        assert "a" in rec
        assert rec["a"].values == [1.0]

    def test_record_many_prefixes(self):
        rec = MetricsRecorder()
        rec.record_many("share", 0.0, {"u1": 0.5, "u2": 0.5})
        assert set(rec.names("share/")) == {"share/u1", "share/u2"}

    def test_names_filter(self):
        rec = MetricsRecorder()
        rec.record("a/x", 0.0, 1.0)
        rec.record("b/y", 0.0, 1.0)
        assert rec.names("a/") == ["a/x"]


class TestShareDeviation:
    def test_zero_when_matching(self):
        assert share_deviation({"a": 0.6, "b": 0.4}, {"a": 0.6, "b": 0.4}) == 0.0

    def test_mean_absolute(self):
        d = share_deviation({"a": 0.5, "b": 0.5}, {"a": 0.7, "b": 0.3})
        assert d == pytest.approx(0.2)

    def test_missing_keys_count_as_zero(self):
        d = share_deviation({}, {"a": 0.5})
        assert d == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert share_deviation({}, {}) == 0.0


class TestConvergenceTime:
    def _series(self, values, dt=1.0):
        ts = TimeSeries("dev")
        for i, v in enumerate(values):
            ts.record(i * dt, v)
        return ts

    def test_simple_convergence(self):
        ts = self._series([0.5, 0.3, 0.1, 0.05, 0.01, 0.01, 0.01])
        assert convergence_time(ts, threshold=0.02) == 4.0

    def test_transient_dip_ignored_with_later_rise(self):
        ts = self._series([0.5, 0.01, 0.5, 0.01, 0.01])
        assert convergence_time(ts, threshold=0.02) == 3.0

    def test_never_converges(self):
        ts = self._series([0.5, 0.4, 0.3])
        assert convergence_time(ts, threshold=0.02) is None

    def test_hold_requires_sustained_period(self):
        ts = self._series([0.5, 0.01, 0.01])
        assert convergence_time(ts, threshold=0.02, hold=10.0) is None
        assert convergence_time(ts, threshold=0.02, hold=1.0) == 1.0

    def test_converged_from_start(self):
        ts = self._series([0.001, 0.001])
        assert convergence_time(ts, threshold=0.02) == 0.0
