"""Unit tests for vector-combinable job factors (paper future work)."""

import pytest

from repro.core.vector import FairshareVector
from repro.core.vectorfactors import (
    AgeVectorFactor,
    CompositeVectorPriority,
    JobSizeVectorFactor,
    QosVectorFactor,
)
from repro.rms.job import Job


def job(user="u", submit=0.0, qos=0.0, cores=1):
    return Job(system_user=user, duration=10.0, submit_time=submit, qos=qos,
               cores=cores)


class TestFactors:
    def test_age_ramps_and_saturates(self):
        f = AgeVectorFactor(max_age=100.0)
        assert f.score(job(submit=0.0), now=0.0) == 0.0
        assert f.score(job(submit=0.0), now=50.0) == pytest.approx(0.5)
        assert f.score(job(submit=0.0), now=1e6) == 1.0

    def test_age_invalid(self):
        with pytest.raises(ValueError):
            AgeVectorFactor(max_age=0.0)

    def test_qos_passthrough(self):
        assert QosVectorFactor().score(job(qos=0.7), now=0.0) == 0.7

    def test_job_size_prefers_small(self):
        f = JobSizeVectorFactor(total_cores=10)
        assert f.score(job(cores=1), 0.0) > f.score(job(cores=6), 0.0)

    def test_job_size_invalid(self):
        with pytest.raises(ValueError):
            JobSizeVectorFactor(total_cores=0)


class TestSuffixMode:
    def test_fairshare_dominates_factors(self):
        """Strict top-down enforcement: a better fairshare balance beats
        any amount of job age."""
        comp = CompositeVectorPriority([(1.0, AgeVectorFactor(100.0))],
                                       mode="suffix")
        now = 1000.0
        fresh_but_underserved = comp.extend(
            FairshareVector.from_scores([0.7]), job(submit=now), now)
        old_but_overserved = comp.extend(
            FairshareVector.from_scores([0.3]), job(submit=0.0), now)
        assert fresh_but_underserved > old_but_overserved

    def test_factors_break_fairshare_ties(self):
        comp = CompositeVectorPriority([(1.0, AgeVectorFactor(100.0))],
                                       mode="suffix")
        now = 100.0
        older = comp.extend(FairshareVector.from_scores([0.5]),
                            job(submit=0.0), now)
        newer = comp.extend(FairshareVector.from_scores([0.5]),
                            job(submit=90.0), now)
        assert older > newer

    def test_depth_grows_by_factor_count(self):
        comp = CompositeVectorPriority(
            [(1.0, AgeVectorFactor()), (1.0, QosVectorFactor())],
            mode="suffix")
        vec = comp.extend(FairshareVector.from_scores([0.5, 0.6]), job(), 0.0)
        assert vec.depth == 4

    def test_extended_vector_properties_survive(self):
        """The combination keeps unlimited precision: a tiny fairshare
        difference still dominates the factor suffix."""
        comp = CompositeVectorPriority([(1.0, AgeVectorFactor(10.0))],
                                       mode="suffix")
        now = 1e6
        a = comp.extend(FairshareVector.from_scores([0.5 + 1e-9]),
                        job(submit=now), now)
        b = comp.extend(FairshareVector.from_scores([0.5 - 1e-9]),
                        job(submit=0.0), now)
        assert a > b


class TestBlendMode:
    def test_blend_moves_elements_toward_factor(self):
        comp = CompositeVectorPriority([(1.0, QosVectorFactor())],
                                       mode="blend", factor_weight=0.5)
        base = FairshareVector.from_scores([0.2])
        high_qos = comp.extend(base, job(qos=1.0), 0.0)
        low_qos = comp.extend(base, job(qos=0.0), 0.0)
        assert high_qos[0] > base.elements[0] > low_qos[0]

    def test_blend_weight_scales_impact(self):
        """Smoothing with impact relative to weight, in vector space."""
        base = FairshareVector.from_scores([0.2])
        light = CompositeVectorPriority([(1.0, QosVectorFactor())],
                                        mode="blend", factor_weight=0.25)
        heavy = CompositeVectorPriority([(1.0, QosVectorFactor())],
                                        mode="blend", factor_weight=0.75)
        j = job(qos=1.0)
        light_shift = light.extend(base, j, 0.0)[0] - base.elements[0]
        heavy_shift = heavy.extend(base, j, 0.0)[0] - base.elements[0]
        assert heavy_shift == pytest.approx(3 * light_shift)

    def test_blend_preserves_depth(self):
        comp = CompositeVectorPriority([(1.0, QosVectorFactor())],
                                       mode="blend")
        vec = comp.extend(FairshareVector.from_scores([0.5, 0.6, 0.7]),
                          job(), 0.0)
        assert vec.depth == 3

    def test_empty_factor_blend_is_balance(self):
        comp = CompositeVectorPriority([], mode="blend")
        assert comp.factor_blend(job(), 0.0) == 0.5


class TestRanking:
    def test_rank_orders_by_extended_vectors(self):
        comp = CompositeVectorPriority([(1.0, AgeVectorFactor(100.0))],
                                       mode="suffix")
        now = 100.0
        entries = {
            1: (FairshareVector.from_scores([0.6]), job(submit=90.0)),
            2: (FairshareVector.from_scores([0.6]), job(submit=0.0)),
            3: (FairshareVector.from_scores([0.9]), job(submit=99.0)),
        }
        assert comp.rank(entries, now) == [3, 2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            CompositeVectorPriority([], mode="magic")
        with pytest.raises(ValueError):
            CompositeVectorPriority([(-1.0, QosVectorFactor())])
        with pytest.raises(ValueError):
            CompositeVectorPriority([(0.0, QosVectorFactor())])
        with pytest.raises(ValueError):
            CompositeVectorPriority([(1.0, QosVectorFactor())],
                                    factor_weight=1.0)
