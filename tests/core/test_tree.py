"""Unit tests for the generic share-tree structure."""

import pytest

from repro.core.tree import Tree, TreeNode, join_path, split_path


class TestPathHelpers:
    def test_split_simple(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_split_root(self):
        assert split_path("/") == []
        assert split_path("") == []

    def test_split_tolerates_missing_leading_slash(self):
        assert split_path("a/b") == ["a", "b"]

    def test_split_collapses_duplicate_slashes(self):
        assert split_path("/a//b/") == ["a", "b"]

    def test_join_roundtrip(self):
        assert join_path(["a", "b"]) == "/a/b"
        assert split_path(join_path(["x", "y", "z"])) == ["x", "y", "z"]


class TestTreeNode:
    def test_name_may_not_contain_slash(self):
        with pytest.raises(ValueError):
            TreeNode("a/b")

    def test_add_child_sets_parent(self):
        root = TreeNode("")
        child = root.add_child(TreeNode("a"))
        assert child.parent is root
        assert root.children["a"] is child

    def test_duplicate_child_rejected(self):
        root = TreeNode("")
        root.add_child(TreeNode("a"))
        with pytest.raises(ValueError):
            root.add_child(TreeNode("a"))

    def test_remove_child_detaches(self):
        root = TreeNode("")
        root.add_child(TreeNode("a"))
        removed = root.remove_child("a")
        assert removed.parent is None
        assert "a" not in root.children

    def test_depth_and_path(self):
        root = TreeNode("")
        a = root.add_child(TreeNode("a"))
        b = a.add_child(TreeNode("b"))
        assert root.depth == 0
        assert b.depth == 2
        assert b.path == "/a/b"

    def test_is_leaf_and_root(self):
        root = TreeNode("")
        a = root.add_child(TreeNode("a"))
        assert root.is_root and not root.is_leaf
        assert a.is_leaf and not a.is_root

    def test_walk_preorder(self):
        root = TreeNode("")
        a = root.add_child(TreeNode("a"))
        a.add_child(TreeNode("a1"))
        a.add_child(TreeNode("a2"))
        root.add_child(TreeNode("b"))
        names = [n.name for n in root.walk()]
        assert names == ["", "a", "a1", "a2", "b"]

    def test_ancestors_bottom_up(self):
        root = TreeNode("")
        a = root.add_child(TreeNode("a"))
        b = a.add_child(TreeNode("b"))
        assert [n.name for n in b.ancestors()] == ["a", ""]

    def test_path_from_root_excludes_root(self):
        root = TreeNode("")
        a = root.add_child(TreeNode("a"))
        b = a.add_child(TreeNode("b"))
        assert [n.name for n in b.path_from_root()] == ["a", "b"]


class TestTree:
    def test_find_and_getitem(self):
        tree = Tree()
        tree.ensure_path("/a/b")
        assert tree.find("/a/b") is not None
        assert tree["/a/b"].name == "b"
        assert tree.find("/a/x") is None
        with pytest.raises(KeyError):
            tree["/a/x"]

    def test_contains(self):
        tree = Tree()
        tree.ensure_path("/a")
        assert "/a" in tree
        assert "/b" not in tree

    def test_ensure_path_idempotent(self):
        tree = Tree()
        n1 = tree.ensure_path("/a/b")
        n2 = tree.ensure_path("/a/b")
        assert n1 is n2
        assert tree.size() == 3  # root, a, b

    def test_leaves_and_leaf_paths(self):
        tree = Tree()
        tree.ensure_path("/a/x")
        tree.ensure_path("/a/y")
        tree.ensure_path("/b")
        assert sorted(tree.leaf_paths()) == ["/a/x", "/a/y", "/b"]

    def test_root_find_returns_root(self):
        tree = Tree()
        assert tree.find("/") is tree.root

    def test_render_contains_all_nodes(self):
        tree = Tree()
        tree.ensure_path("/a/b")
        rendering = tree.render()
        assert "a" in rendering and "b" in rendering

    def test_size_counts_root(self):
        tree = Tree()
        assert tree.size() == 1
        tree.ensure_path("/a")
        assert tree.size() == 2
