"""Unit tests for usage-history pruning (USS memory management)."""

import pytest

from repro.core.decay import ExponentialDecay, SlidingWindowDecay
from repro.core.usage import UsageHistogram, UsageRecord
from repro.services.network import Network
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


class TestHistogramPrune:
    def test_old_bins_dropped(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)     # bin 0
        h.add_charge("u", 100.0, 110.0)  # bin 10
        dropped = h.prune(now=120.0, horizon=50.0)
        assert dropped == pytest.approx(10.0)
        assert h.total("u") == pytest.approx(10.0)
        assert h.n_bins("u") == 1

    def test_bins_inside_horizon_kept(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)
        assert h.prune(now=15.0, horizon=50.0) == 0.0
        assert h.total("u") == pytest.approx(10.0)

    def test_boundary_bin_kept(self):
        """A bin partially inside the horizon must survive."""
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)  # bin [0, 10)
        # horizon cutoff at t=5: bin end (10) > 5, so it stays
        assert h.prune(now=15.0, horizon=10.0) == 0.0

    def test_empty_users_removed(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)
        h.prune(now=1000.0, horizon=10.0)
        assert h.users == []
        assert h.n_bins() == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram().prune(now=0.0, horizon=-1.0)

    def test_decayed_total_unaffected_within_window_decay(self):
        """Pruning beyond a sliding window never changes decayed totals."""
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)
        h.add_charge("u", 500.0, 510.0)
        decay = SlidingWindowDecay(window=100.0)
        now = 520.0
        before = h.decayed_total("u", now, decay)
        h.prune(now, horizon=100.0)
        assert h.decayed_total("u", now, decay) == pytest.approx(before)

    def test_exponential_decay_error_bounded(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)
        h.add_charge("u", 10_000.0, 10_010.0)
        decay = ExponentialDecay(half_life=100.0)
        now = 10_020.0
        before = h.decayed_total("u", now, decay)
        h.prune(now, horizon=2_000.0)  # 20 half-lives: weight < 1e-6
        after = h.decayed_total("u", now, decay)
        assert abs(before - after) < 1e-4


class TestUssPruning:
    def test_uss_prunes_periodically(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network,
                                     histogram_interval=10.0,
                                     exchange_interval=10.0,
                                     prune_horizon=50.0)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=10.0))
        engine.run_until(100.0)
        assert uss.local.n_bins() == 0
        assert uss.charge_pruned == pytest.approx(10.0)

    def test_uss_without_horizon_keeps_history(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network,
                                     histogram_interval=10.0,
                                     exchange_interval=10.0)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=10.0))
        engine.run_until(1000.0)
        assert uss.local.total("u") == pytest.approx(10.0)

    def test_remote_histograms_pruned_too(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=10.0,
                                   exchange_interval=10.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=10.0,
                                   exchange_interval=10.0,
                                   prune_horizon=50.0)
        a.add_peer("b")
        a.record_job(UsageRecord(user="u", site="a", start=0.0, end=10.0))
        engine.run_until(30.0)
        assert b.remote["a"].total("u") > 0
        a.stop()  # no fresh snapshots resurrect the history
        engine.run_until(200.0)
        assert b.remote["a"].n_bins() == 0
