"""Unit tests for usage records, histograms, and usage trees."""

import pytest

from repro.core.decay import ExponentialDecay, NoDecay
from repro.core.policy import PolicyTree
from repro.core.usage import UsageHistogram, UsageNode, UsageRecord, UsageTree, build_usage_tree


class TestUsageRecord:
    def test_charge_is_core_seconds(self):
        r = UsageRecord(user="u", site="s", start=10.0, end=70.0, cores=4)
        assert r.charge == 240.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            UsageRecord(user="u", site="s", start=5.0, end=4.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            UsageRecord(user="u", site="s", start=0.0, end=1.0, cores=0)


class TestUsageHistogram:
    def test_single_bin_accumulation(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("u", 0.0, 30.0)
        h.add_charge("u", 30.0, 60.0)
        assert h.total("u") == pytest.approx(60.0)
        assert h.user_bins("u") == {0: pytest.approx(60.0)}

    def test_charge_split_across_bins(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("u", 30.0, 90.0)
        bins = h.user_bins("u")
        assert bins[0] == pytest.approx(30.0)
        assert bins[1] == pytest.approx(30.0)

    def test_total_conserved_regardless_of_binning(self):
        for interval in (7.0, 60.0, 3600.0):
            h = UsageHistogram(interval=interval)
            h.add_charge("u", 13.0, 1042.0, cores=3)
            assert h.total("u") == pytest.approx((1042.0 - 13.0) * 3)

    def test_zero_duration_is_noop(self):
        h = UsageHistogram()
        h.add_charge("u", 5.0, 5.0)
        assert h.total("u") == 0.0
        assert h.users == []

    def test_add_record(self):
        h = UsageHistogram(interval=100.0)
        h.add_record(UsageRecord(user="u", site="s", start=0.0, end=50.0, cores=2))
        assert h.total("u") == 100.0

    def test_decayed_total_uses_bin_midpoints(self):
        h = UsageHistogram(interval=100.0)
        h.add_charge("u", 0.0, 100.0)  # bin 0, midpoint 50
        decay = ExponentialDecay(half_life=50.0)
        # age at now=100 is 50 => weight 0.5
        assert h.decayed_total("u", now=100.0, decay=decay) == pytest.approx(50.0)

    def test_decayed_total_no_decay_equals_total(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 95.0)
        assert h.decayed_total("u", now=1000.0, decay=NoDecay()) == pytest.approx(95.0)

    def test_decayed_total_unknown_user_is_zero(self):
        assert UsageHistogram().decayed_total("ghost", now=0.0) == 0.0

    def test_decayed_totals_matches_per_user_totals(self):
        h = UsageHistogram(interval=100.0)
        h.add_charge("a", 0.0, 250.0)
        h.add_charge("b", 120.0, 480.0, cores=2)
        h.add_charge("c", 50.0, 60.0)
        decay = ExponentialDecay(half_life=200.0)
        totals = h.decayed_totals(now=500.0, decay=decay)
        assert set(totals) == {"a", "b", "c"}
        for user in totals:
            assert totals[user] == pytest.approx(
                h.decayed_total(user, now=500.0, decay=decay))

    def test_decayed_totals_empty_histogram(self):
        assert UsageHistogram().decayed_totals(now=0.0) == {}

    def test_snapshot_replace_roundtrip(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("a", 0.0, 120.0)
        h.add_charge("b", 30.0, 90.0)
        h2 = UsageHistogram(interval=60.0)
        h2.replace(h.snapshot())
        assert h2.total() == pytest.approx(h.total())
        assert h2.user_bins("a") == pytest.approx(h.user_bins("a"))

    def test_merge_adds_charges(self):
        h1 = UsageHistogram(interval=60.0)
        h1.add_charge("u", 0.0, 60.0)
        h2 = UsageHistogram(interval=60.0)
        h2.add_charge("u", 0.0, 30.0)
        h1.merge(h2)
        assert h1.total("u") == pytest.approx(90.0)

    def test_merge_interval_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram(60.0).merge(UsageHistogram(30.0))

    def test_merged_classmethod(self):
        hs = []
        for i in range(3):
            h = UsageHistogram(interval=10.0)
            h.add_charge(f"u{i}", 0.0, 10.0)
            hs.append(h)
        merged = UsageHistogram.merged(hs)
        assert merged.total() == pytest.approx(30.0)
        assert len(merged.users) == 3

    def test_merged_requires_interval_or_source(self):
        with pytest.raises(ValueError):
            UsageHistogram.merged([])

    def test_negative_bin_charge_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram().add_bin("u", 0, -1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UsageHistogram(interval=0)


class TestUsageTree:
    def test_roll_up_sums_children(self):
        t = UsageTree()
        t.set_usage("/g/u1", 10.0)
        t.set_usage("/g/u2", 30.0)
        t.roll_up()
        assert t["/g"].usage == pytest.approx(40.0)
        assert t.root.usage == pytest.approx(40.0)

    def test_sibling_share(self):
        t = UsageTree()
        t.set_usage("/g/u1", 10.0)
        t.set_usage("/g/u2", 30.0)
        t.roll_up()
        assert t["/g/u1"].sibling_share == pytest.approx(0.25)
        assert t["/g/u2"].sibling_share == pytest.approx(0.75)

    def test_sibling_share_idle_group_is_zero(self):
        t = UsageTree()
        t.set_usage("/g/u1", 0.0)
        t.set_usage("/g/u2", 0.0)
        t.roll_up()
        assert t["/g/u1"].sibling_share == 0.0

    def test_total_usage_share_is_product(self):
        t = UsageTree()
        t.set_usage("/a/x", 30.0)
        t.set_usage("/a/y", 10.0)
        t.set_usage("/b/z", 60.0)
        t.roll_up()
        # a has 40% of total, x has 75% of a
        assert t["/a/x"].total_usage_share == pytest.approx(0.4 * 0.75)


class TestBuildUsageTree:
    @pytest.fixture
    def policy(self) -> PolicyTree:
        return PolicyTree.from_dict({"g": (1, {"u1": 1, "u2": 1}), "solo": 1})

    def test_maps_by_leaf_path(self, policy):
        tree = build_usage_tree(policy, {"/g/u1": 5.0})
        assert tree["/g/u1"].usage == 5.0

    def test_maps_by_leaf_name(self, policy):
        tree = build_usage_tree(policy, {"u2": 7.0, "solo": 1.0})
        assert tree["/g/u2"].usage == 7.0
        assert tree["/solo"].usage == 1.0

    def test_unknown_users_ignored(self, policy):
        tree = build_usage_tree(policy, {"ghost": 99.0})
        assert tree.root.usage == 0.0

    def test_internal_nodes_rolled_up(self, policy):
        tree = build_usage_tree(policy, {"u1": 1.0, "u2": 3.0})
        assert tree["/g"].usage == pytest.approx(4.0)

    def test_structure_mirrors_policy(self, policy):
        tree = build_usage_tree(policy, {})
        assert sorted(l.path for l in tree.leaves()) == \
            sorted(l.path for l in policy.leaves())
