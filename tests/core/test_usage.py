"""Unit tests for usage records, histograms, and usage trees."""

import pytest

from repro.core.decay import ExponentialDecay, NoDecay
from repro.core.policy import PolicyTree
from repro.core.usage import UsageHistogram, UsageNode, UsageRecord, UsageTree, build_usage_tree


class TestUsageRecord:
    def test_charge_is_core_seconds(self):
        r = UsageRecord(user="u", site="s", start=10.0, end=70.0, cores=4)
        assert r.charge == 240.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            UsageRecord(user="u", site="s", start=5.0, end=4.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            UsageRecord(user="u", site="s", start=0.0, end=1.0, cores=0)


class TestUsageHistogram:
    def test_single_bin_accumulation(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("u", 0.0, 30.0)
        h.add_charge("u", 30.0, 60.0)
        assert h.total("u") == pytest.approx(60.0)
        assert h.user_bins("u") == {0: pytest.approx(60.0)}

    def test_charge_split_across_bins(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("u", 30.0, 90.0)
        bins = h.user_bins("u")
        assert bins[0] == pytest.approx(30.0)
        assert bins[1] == pytest.approx(30.0)

    def test_total_conserved_regardless_of_binning(self):
        for interval in (7.0, 60.0, 3600.0):
            h = UsageHistogram(interval=interval)
            h.add_charge("u", 13.0, 1042.0, cores=3)
            assert h.total("u") == pytest.approx((1042.0 - 13.0) * 3)

    def test_zero_duration_is_noop(self):
        h = UsageHistogram()
        h.add_charge("u", 5.0, 5.0)
        assert h.total("u") == 0.0
        assert h.users == []

    def test_add_record(self):
        h = UsageHistogram(interval=100.0)
        h.add_record(UsageRecord(user="u", site="s", start=0.0, end=50.0, cores=2))
        assert h.total("u") == 100.0

    def test_decayed_total_uses_bin_midpoints(self):
        h = UsageHistogram(interval=100.0)
        h.add_charge("u", 0.0, 100.0)  # bin 0, midpoint 50
        decay = ExponentialDecay(half_life=50.0)
        # age at now=100 is 50 => weight 0.5
        assert h.decayed_total("u", now=100.0, decay=decay) == pytest.approx(50.0)

    def test_decayed_total_no_decay_equals_total(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 95.0)
        assert h.decayed_total("u", now=1000.0, decay=NoDecay()) == pytest.approx(95.0)

    def test_decayed_total_unknown_user_is_zero(self):
        assert UsageHistogram().decayed_total("ghost", now=0.0) == 0.0

    def test_decayed_totals_matches_per_user_totals(self):
        h = UsageHistogram(interval=100.0)
        h.add_charge("a", 0.0, 250.0)
        h.add_charge("b", 120.0, 480.0, cores=2)
        h.add_charge("c", 50.0, 60.0)
        decay = ExponentialDecay(half_life=200.0)
        totals = h.decayed_totals(now=500.0, decay=decay)
        assert set(totals) == {"a", "b", "c"}
        for user in totals:
            assert totals[user] == pytest.approx(
                h.decayed_total(user, now=500.0, decay=decay))

    def test_decayed_totals_empty_histogram(self):
        assert UsageHistogram().decayed_totals(now=0.0) == {}

    def test_snapshot_replace_roundtrip(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("a", 0.0, 120.0)
        h.add_charge("b", 30.0, 90.0)
        h2 = UsageHistogram(interval=60.0)
        h2.replace(h.snapshot())
        assert h2.total() == pytest.approx(h.total())
        assert h2.user_bins("a") == pytest.approx(h.user_bins("a"))

    def test_merge_adds_charges(self):
        h1 = UsageHistogram(interval=60.0)
        h1.add_charge("u", 0.0, 60.0)
        h2 = UsageHistogram(interval=60.0)
        h2.add_charge("u", 0.0, 30.0)
        h1.merge(h2)
        assert h1.total("u") == pytest.approx(90.0)

    def test_merge_interval_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram(60.0).merge(UsageHistogram(30.0))

    def test_merged_classmethod(self):
        hs = []
        for i in range(3):
            h = UsageHistogram(interval=10.0)
            h.add_charge(f"u{i}", 0.0, 10.0)
            hs.append(h)
        merged = UsageHistogram.merged(hs)
        assert merged.total() == pytest.approx(30.0)
        assert len(merged.users) == 3

    def test_merged_requires_interval_or_source(self):
        with pytest.raises(ValueError):
            UsageHistogram.merged([])

    def test_negative_bin_charge_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram().add_bin("u", 0, -1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UsageHistogram(interval=0)


class TestChangeCursors:
    def test_add_charge_marks_touched_bins(self):
        h = UsageHistogram(interval=60.0)
        cur = h.register_cursor()
        h.add_charge("u", 30.0, 90.0)  # spans bins 0 and 1
        assert h.drain_cursor(cur) == {"u": {0, 1}}

    def test_drain_resets(self):
        h = UsageHistogram(interval=60.0)
        cur = h.register_cursor()
        h.add_charge("u", 0.0, 10.0)
        h.drain_cursor(cur)
        assert h.drain_cursor(cur) == {}

    def test_mutations_before_registration_invisible(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("u", 0.0, 10.0)
        cur = h.register_cursor()
        assert h.drain_cursor(cur) == {}

    def test_independent_cursors(self):
        h = UsageHistogram(interval=60.0)
        c1 = h.register_cursor()
        c2 = h.register_cursor()
        h.add_bin("a", 3, 5.0)
        assert h.drain_cursor(c1) == {"a": {3}}
        h.add_bin("b", 1, 1.0)
        assert h.drain_cursor(c1) == {"b": {1}}
        assert h.drain_cursor(c2) == {"a": {3}, "b": {1}}

    def test_released_cursor_stops_tracking(self):
        h = UsageHistogram(interval=60.0)
        cur = h.register_cursor()
        h.release_cursor(cur)
        h.add_bin("a", 0, 1.0)  # must not raise or leak

    def test_prune_marks_dropped_bins(self):
        h = UsageHistogram(interval=10.0)
        h.add_charge("u", 0.0, 10.0)
        cur = h.register_cursor()
        h.prune(now=1000.0, horizon=10.0)
        assert h.drain_cursor(cur) == {"u": {0}}

    def test_replace_marks_old_and_new_state(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("old", 2, 1.0)
        cur = h.register_cursor()
        h.replace({"new": {5: 3.0}})
        assert h.drain_cursor(cur) == {"old": {2}, "new": {5}}


class TestSetBin:
    def test_absolute_overwrite(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("u", 0, 5.0)
        h.set_bin("u", 0, 2.0)
        assert h.bin_value("u", 0) == 2.0

    def test_idempotent(self):
        h = UsageHistogram(interval=10.0)
        h.set_bin("u", 0, 2.0)
        h.set_bin("u", 0, 2.0)
        assert h.total("u") == 2.0

    def test_zero_deletes_bin_and_empty_user(self):
        h = UsageHistogram(interval=10.0)
        h.set_bin("u", 0, 2.0)
        h.set_bin("u", 0, 0.0)
        assert h.users == []
        assert h.n_bins() == 0

    def test_zero_on_absent_bin_is_noop(self):
        h = UsageHistogram(interval=10.0)
        cur = h.register_cursor()
        h.set_bin("u", 7, 0.0)
        assert h.drain_cursor(cur) == {}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UsageHistogram().set_bin("u", 0, -1.0)

    def test_marks_cursor(self):
        h = UsageHistogram(interval=10.0)
        cur = h.register_cursor()
        h.set_bin("u", 4, 1.0)
        assert h.drain_cursor(cur) == {"u": {4}}


class TestCompactArrays:
    def test_snapshot_arrays_roundtrip(self):
        h = UsageHistogram(interval=60.0)
        h.add_charge("a", 0.0, 120.0)
        h.add_charge("b", 30.0, 90.0)
        h2 = UsageHistogram(interval=60.0)
        h2.apply_arrays(*h.snapshot_arrays(), full=True)
        assert h2.snapshot() == h.snapshot()

    def test_user_names_spelled_once(self):
        h = UsageHistogram(interval=10.0)
        for b in range(5):
            h.add_bin("verylongusername", b, 1.0)
        user_table, user_idx, bin_idx, charges = h.snapshot_arrays()
        assert user_table == ["verylongusername"]
        assert user_idx == [0] * 5
        assert len(bin_idx) == len(charges) == 5

    def test_apply_delta_entries_in_place(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("a", 0, 5.0)
        h.apply_arrays(["a", "b"], [0, 1], [0, 2], [7.0, 3.0])
        assert h.bin_value("a", 0) == 7.0
        assert h.bin_value("b", 2) == 3.0

    def test_apply_zero_entry_deletes(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("a", 0, 5.0)
        h.apply_arrays(["a"], [0], [0], [0.0])
        assert h.users == []

    def test_full_apply_removes_unlisted_entries(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("gone", 0, 5.0)
        h.add_bin("kept", 1, 2.0)
        h.apply_arrays(["kept"], [0], [1], [4.0], full=True)
        assert h.users == ["kept"]
        assert h.bin_value("kept", 1) == 4.0


class TestNewestMidpoints:
    def test_newest_midpoint(self):
        h = UsageHistogram(interval=100.0)
        h.add_bin("u", 0, 1.0)
        h.add_bin("u", 4, 1.0)
        assert h.newest_midpoint("u") == pytest.approx(450.0)

    def test_unknown_user_is_none(self):
        assert UsageHistogram().newest_midpoint("ghost") is None

    def test_newest_midpoints_all_users(self):
        h = UsageHistogram(interval=10.0)
        h.add_bin("a", 2, 1.0)
        h.add_bin("b", 0, 1.0)
        assert h.newest_midpoints() == {"a": pytest.approx(25.0),
                                        "b": pytest.approx(5.0)}


class TestUsageTree:
    def test_roll_up_sums_children(self):
        t = UsageTree()
        t.set_usage("/g/u1", 10.0)
        t.set_usage("/g/u2", 30.0)
        t.roll_up()
        assert t["/g"].usage == pytest.approx(40.0)
        assert t.root.usage == pytest.approx(40.0)

    def test_sibling_share(self):
        t = UsageTree()
        t.set_usage("/g/u1", 10.0)
        t.set_usage("/g/u2", 30.0)
        t.roll_up()
        assert t["/g/u1"].sibling_share == pytest.approx(0.25)
        assert t["/g/u2"].sibling_share == pytest.approx(0.75)

    def test_sibling_share_idle_group_is_zero(self):
        t = UsageTree()
        t.set_usage("/g/u1", 0.0)
        t.set_usage("/g/u2", 0.0)
        t.roll_up()
        assert t["/g/u1"].sibling_share == 0.0

    def test_total_usage_share_is_product(self):
        t = UsageTree()
        t.set_usage("/a/x", 30.0)
        t.set_usage("/a/y", 10.0)
        t.set_usage("/b/z", 60.0)
        t.roll_up()
        # a has 40% of total, x has 75% of a
        assert t["/a/x"].total_usage_share == pytest.approx(0.4 * 0.75)


class TestBuildUsageTree:
    @pytest.fixture
    def policy(self) -> PolicyTree:
        return PolicyTree.from_dict({"g": (1, {"u1": 1, "u2": 1}), "solo": 1})

    def test_maps_by_leaf_path(self, policy):
        tree = build_usage_tree(policy, {"/g/u1": 5.0})
        assert tree["/g/u1"].usage == 5.0

    def test_maps_by_leaf_name(self, policy):
        tree = build_usage_tree(policy, {"u2": 7.0, "solo": 1.0})
        assert tree["/g/u2"].usage == 7.0
        assert tree["/solo"].usage == 1.0

    def test_unknown_users_ignored(self, policy):
        tree = build_usage_tree(policy, {"ghost": 99.0})
        assert tree.root.usage == 0.0

    def test_internal_nodes_rolled_up(self, policy):
        tree = build_usage_tree(policy, {"u1": 1.0, "u2": 3.0})
        assert tree["/g"].usage == pytest.approx(4.0)

    def test_structure_mirrors_policy(self, policy):
        tree = build_usage_tree(policy, {})
        assert sorted(l.path for l in tree.leaves()) == \
            sorted(l.path for l in policy.leaves())
