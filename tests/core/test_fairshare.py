"""Unit tests for the fairshare tree computation."""

import pytest

from repro.core.distance import FairshareParameters
from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.usage import UsageTree


@pytest.fixture
def flat_policy() -> PolicyTree:
    return PolicyTree.from_dict({"U65": 65.25, "U30": 30.49, "U3": 2.86, "Uoth": 1.40})


@pytest.fixture
def nested_policy() -> PolicyTree:
    return PolicyTree.from_dict({
        "HPC": (1, {"LQ": 1, "KAW": (1, {"u1": 1, "u2": 1})}),
        "SWE": 1,
    })


class TestFlatTree:
    def test_zero_usage_priorities_by_share(self, flat_policy):
        tree = compute_fairshare_tree(flat_policy, per_user_usage={})
        # p = k*s + (1-k)*1 with zero usage
        assert tree.priority("/U3") == pytest.approx(0.5 * (1 + 0.0286), rel=1e-3)
        assert tree.priority("/U65") > tree.priority("/U30") > tree.priority("/U3")

    def test_balanced_usage_all_at_balance(self, flat_policy):
        usage = {"U65": 65.25, "U30": 30.49, "U3": 2.86, "Uoth": 1.40}
        tree = compute_fairshare_tree(flat_policy, per_user_usage=usage)
        for leaf in tree.leaves():
            assert leaf.balance == pytest.approx(0.5, abs=1e-9)
            # at balance: p = k*0 + (1-k)*0.5 = 0.25
            assert leaf.priority == pytest.approx(0.25, abs=1e-9)

    def test_overserved_below_underserved(self, flat_policy):
        usage = {"U65": 10.0, "U30": 90.0}
        tree = compute_fairshare_tree(flat_policy, per_user_usage=usage)
        assert tree.priority("/U30") < tree.priority("/U65")
        assert tree["/U30"].balance < 0.5 < tree["/U65"].balance

    def test_usage_share_normalized_within_group(self, flat_policy):
        usage = {"U65": 30.0, "U30": 10.0}
        tree = compute_fairshare_tree(flat_policy, per_user_usage=usage)
        assert tree["/U65"].usage_share == pytest.approx(0.75)
        assert tree["/U30"].usage_share == pytest.approx(0.25)
        assert tree["/U3"].usage_share == 0.0


class TestNestedTree:
    def test_subgroup_isolation(self, nested_policy):
        """Changing usage inside /HPC/KAW must not move /HPC/LQ's or /SWE's
        node values at their own levels."""
        base = {"/HPC/LQ": 50.0, "/HPC/KAW/u1": 10.0, "/HPC/KAW/u2": 10.0,
                "/SWE": 70.0}
        changed = dict(base)
        changed["/HPC/KAW/u1"] = 0.1
        changed["/HPC/KAW/u2"] = 19.9  # group total preserved
        t1 = compute_fairshare_tree(nested_policy, per_user_usage=base)
        t2 = compute_fairshare_tree(nested_policy, per_user_usage=changed)
        assert t1["/HPC/LQ"].balance == pytest.approx(t2["/HPC/LQ"].balance)
        assert t1["/SWE"].balance == pytest.approx(t2["/SWE"].balance)
        assert t1["/HPC/KAW/u1"].balance != pytest.approx(t2["/HPC/KAW/u1"].balance)

    def test_vector_depth_matches_path(self, nested_policy):
        tree = compute_fairshare_tree(nested_policy, per_user_usage={})
        assert tree.vector("/HPC/KAW/u1").depth == 3
        assert tree.vector("/SWE").depth == 1

    def test_vectors_returns_all_leaves(self, nested_policy):
        tree = compute_fairshare_tree(nested_policy, per_user_usage={})
        assert set(tree.vectors()) == {"/HPC/LQ", "/HPC/KAW/u1", "/HPC/KAW/u2", "/SWE"}

    def test_total_share_products(self, nested_policy):
        tree = compute_fairshare_tree(nested_policy, per_user_usage={})
        assert tree.target_total_share("/HPC/KAW/u1") == pytest.approx(0.5 * 0.5 * 0.5)

    def test_usage_total_share_products(self, nested_policy):
        usage = {"/HPC/LQ": 10.0, "/HPC/KAW/u1": 10.0, "/SWE": 20.0}
        tree = compute_fairshare_tree(nested_policy, per_user_usage=usage)
        # HPC has 50% of root usage; KAW 50% of HPC; u1 100% of KAW
        assert tree.usage_total_share("/HPC/KAW/u1") == pytest.approx(0.25)


class TestInputs:
    def test_usage_tree_and_mapping_are_exclusive(self, flat_policy):
        with pytest.raises(ValueError):
            compute_fairshare_tree(flat_policy, usage=UsageTree(),
                                   per_user_usage={"U65": 1.0})

    def test_explicit_usage_tree(self, flat_policy):
        usage = UsageTree()
        usage.set_usage("/U65", 10.0)
        usage.roll_up()
        tree = compute_fairshare_tree(flat_policy, usage=usage)
        assert tree["/U65"].usage_share == pytest.approx(1.0)

    def test_usage_tree_missing_nodes_count_as_zero(self, nested_policy):
        usage = UsageTree()
        usage.set_usage("/SWE", 5.0)
        usage.roll_up()
        tree = compute_fairshare_tree(nested_policy, usage=usage)
        assert tree["/HPC"].usage_share == 0.0

    def test_parameters_flow_through(self, flat_policy):
        params = FairshareParameters(k=1.0, resolution=99)
        tree = compute_fairshare_tree(flat_policy, per_user_usage={},
                                      parameters=params)
        # k=1: priority is the absolute component only = share
        assert tree.priority("/U65") == pytest.approx(0.6525, rel=1e-3)
        assert tree.vector("/U65").resolution == 99

    def test_priorities_mapping(self, flat_policy):
        tree = compute_fairshare_tree(flat_policy, per_user_usage={})
        priorities = tree.priorities()
        assert set(priorities) == {"/U65", "/U30", "/U3", "/Uoth"}
