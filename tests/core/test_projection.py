"""Unit tests for the three vector-to-scalar projections (Section III-C)."""

import pytest

from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.projection import (
    BitwiseVectorProjection,
    DictionaryOrderingProjection,
    PercentalProjection,
    make_projection,
)
from repro.core.vector import FairshareVector


def make_tree(usage):
    policy = PolicyTree.from_dict({u: 1 for u in usage})
    return compute_fairshare_tree(policy, per_user_usage=usage)


class TestDictionaryOrdering:
    def test_paper_spacing_example(self):
        # paper: "three vectors would result in the numerical values 0.75,
        # 0.50, and 0.25, according to sorting order"
        proj = DictionaryOrderingProjection()
        vectors = {
            "a": FairshareVector([9000.0]),
            "b": FairshareVector([5000.0]),
            "c": FairshareVector([1000.0]),
        }
        values = proj.project_vectors(vectors)
        assert values["a"] == pytest.approx(0.75)
        assert values["b"] == pytest.approx(0.50)
        assert values["c"] == pytest.approx(0.25)

    def test_equal_vectors_equal_values(self):
        proj = DictionaryOrderingProjection()
        values = proj.project_vectors({
            "a": FairshareVector([5000.0]),
            "b": FairshareVector([5000.0]),
            "c": FairshareVector([1000.0]),
        })
        assert values["a"] == values["b"]
        assert values["c"] < values["a"]

    def test_empty_input(self):
        assert DictionaryOrderingProjection().project_vectors({}) == {}

    def test_order_preserved(self):
        proj = DictionaryOrderingProjection()
        vectors = {f"u{i}": FairshareVector([float(i * 1000)]) for i in range(8)}
        values = proj.project_vectors(vectors)
        ranked = sorted(vectors, key=lambda u: values[u])
        assert ranked == [f"u{i}" for i in range(8)]

    def test_project_tree(self):
        tree = make_tree({"a": 10.0, "b": 1.0})
        values = DictionaryOrderingProjection().project(tree)
        assert values["/b"] > values["/a"]


class TestBitwiseVector:
    def test_values_in_unit_range(self):
        proj = BitwiseVectorProjection(bits_per_level=16)
        for elems in ([0.0], [9999.0], [5000.0, 2000.0, 9999.0]):
            v = proj.project_one(FairshareVector(elems))
            assert 0.0 <= v <= 1.0

    def test_top_level_dominates(self):
        proj = BitwiseVectorProjection(bits_per_level=16)
        high_top = proj.project_one(FairshareVector([6000.0, 0.0]))
        low_top = proj.project_one(FairshareVector([5999.0, 9999.0]))
        assert high_top > low_top

    def test_depth_capped_by_bit_budget(self):
        proj = BitwiseVectorProjection(bits_per_level=16)
        assert proj.max_levels == 3  # 52 // 16
        deep_a = FairshareVector([5000.0] * 3 + [9999.0])
        deep_b = FairshareVector([5000.0] * 3 + [0.0])
        assert proj.project_one(deep_a) == proj.project_one(deep_b)

    def test_quantization_limits_precision(self):
        proj = BitwiseVectorProjection(bits_per_level=8)
        a = proj.project_one(FairshareVector([5000.0]))
        b = proj.project_one(FairshareVector([5000.5]))
        assert a == b  # sub-quantum difference lost

    def test_explicit_max_levels(self):
        proj = BitwiseVectorProjection(bits_per_level=8, max_levels=2)
        assert proj.max_levels == 2

    def test_max_levels_clamped_to_mantissa(self):
        proj = BitwiseVectorProjection(bits_per_level=8, max_levels=100)
        assert proj.max_levels == 6  # 52 // 8

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BitwiseVectorProjection(bits_per_level=0)
        with pytest.raises(ValueError):
            BitwiseVectorProjection(bits_per_level=60)

    def test_short_vector_padded_with_balance(self):
        proj = BitwiseVectorProjection(bits_per_level=16)
        short = proj.project_one(FairshareVector([6000.0]))
        explicit = proj.project_one(FairshareVector([6000.0, 4999.5, 4999.5]))
        assert short == pytest.approx(explicit)

    def test_monotone_within_budget(self):
        proj = BitwiseVectorProjection(bits_per_level=16)
        values = [proj.project_one(FairshareVector([x]))
                  for x in (0.0, 2500.0, 5000.0, 7500.0, 9999.0)]
        assert values == sorted(values)


class TestPercental:
    def test_balance_maps_to_half(self):
        tree = make_tree({"a": 1.0, "b": 1.0})  # equal targets, equal usage
        values = PercentalProjection().project(tree)
        assert values["/a"] == pytest.approx(0.5)

    def test_underserved_above_half(self):
        tree = make_tree({"a": 0.0, "b": 10.0})
        values = PercentalProjection().project(tree)
        assert values["/a"] > 0.5 > values["/b"]

    def test_values_in_unit_range(self):
        tree = make_tree({"a": 1000.0, "b": 0.001})
        for v in PercentalProjection().project(tree).values():
            assert 0.0 <= v <= 1.0

    def test_uses_total_share_products(self):
        policy = PolicyTree.from_dict({"proj": (0.2, {"u": 1, "v": 3}),
                                       "rest": 0.8})
        # paper example: project share 0.20 * user share 0.25 = total 0.05
        tree = compute_fairshare_tree(policy, per_user_usage={})
        values = PercentalProjection().project(tree)
        assert values["/proj/u"] == pytest.approx((0.05 - 0.0 + 1) / 2)


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_projection("dictionary"), DictionaryOrderingProjection)
        assert isinstance(make_projection("bitwise"), BitwiseVectorProjection)
        assert isinstance(make_projection("percental"), PercentalProjection)

    def test_case_insensitive(self):
        assert isinstance(make_projection("Percental"), PercentalProjection)

    def test_kwargs_forwarded(self):
        proj = make_projection("bitwise", bits_per_level=4)
        assert proj.bits_per_level == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_projection("nope")
