"""Unit tests for the array-backed fairshare kernel (repro.core.flat).

The kernel must be an exact drop-in for the object-tree computation: every
test compares against :func:`compute_fairshare_tree` output, including the
three projections and the materialized tree view.
"""

import numpy as np
import pytest

from repro.core.distance import FairshareParameters
from repro.core.fairshare import compute_fairshare_tree
from repro.core.flat import FlatPolicy, compute_fairshare_flat
from repro.core.policy import PolicyTree
from repro.core.projection import (
    BitwiseVectorProjection,
    DictionaryOrderingProjection,
    PercentalProjection,
)


@pytest.fixture
def nested_policy() -> PolicyTree:
    return PolicyTree.from_dict({
        "HPC": (1, {"LQ": 1, "KAW": (1, {"u1": 1, "u2": 1})}),
        "SWE": 1,
    })


def random_policy(rng, max_depth=4, max_children=5) -> PolicyTree:
    counter = [0]

    def build(depth):
        out = {}
        for _ in range(int(rng.integers(2, max_children + 1))):
            counter[0] += 1
            name = f"n{counter[0]}"
            if depth < max_depth and rng.random() < 0.5:
                out[name] = (int(rng.integers(1, 100)), build(depth + 1))
            else:
                out[name] = int(rng.integers(1, 100))
        return out

    return PolicyTree.from_dict(build(0))


class TestLayout:
    def test_sibling_groups_are_contiguous(self, nested_policy):
        flat = FlatPolicy(nested_policy)
        # every node's group segment must contain exactly its siblings
        starts = list(flat.group_start) + [flat.n_nodes]
        for gid in range(len(flat.group_start)):
            segment = range(starts[gid], starts[gid + 1])
            parents = {int(flat.parent[i]) for i in segment}
            assert len(parents) == 1

    def test_paths_and_leaves(self, nested_policy):
        flat = FlatPolicy(nested_policy)
        assert set(flat.paths) == {n.path for n in nested_policy.walk()
                                   if n.parent is not None}
        assert set(flat.leaf_paths) == set(nested_policy.leaf_paths())

    def test_leaf_levels_walk_root_to_leaf(self, nested_policy):
        flat = FlatPolicy(nested_policy)
        row = flat.leaf_slot["/HPC/KAW/u1"]
        path_nodes = [flat.paths[i] for i in flat.leaf_levels[row] if i >= 0]
        assert path_nodes == ["/HPC", "/HPC/KAW", "/HPC/KAW/u1"]

    def test_by_name_matches_preorder_first_wins(self):
        policy = PolicyTree.from_dict({"p1": {"sam": 1}, "p2": {"sam": 2}})
        flat = FlatPolicy(policy)
        assert flat.by_name["sam"] == "/p1/sam"
        assert flat.name_collisions == 1


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_trees_match_exactly(self, seed):
        rng = np.random.default_rng(seed)
        policy = random_policy(rng)
        usage = {p: float(int(rng.integers(0, 1000)))
                 for p in policy.leaf_paths() if rng.random() < 0.8}
        params = FairshareParameters(k=float(rng.choice([0.0, 0.3, 0.5, 1.0])))
        ref = compute_fairshare_tree(policy, per_user_usage=usage,
                                     parameters=params)
        res = compute_fairshare_flat(policy, usage, params)
        flat = res.flat
        for node in ref.walk():
            if node.parent is None:
                continue
            i = flat.path_index[node.path]
            assert res.target_share[i] == pytest.approx(node.target_share, abs=1e-12)
            assert res.usage_share[i] == pytest.approx(node.usage_share, abs=1e-12)
            assert res.priority[i] == pytest.approx(node.priority, abs=1e-12)
            assert res.balance[i] == pytest.approx(node.balance, abs=1e-12)

    @pytest.mark.parametrize("projection", [
        PercentalProjection(),
        DictionaryOrderingProjection(),
        BitwiseVectorProjection(),
        BitwiseVectorProjection(bits_per_level=8, max_levels=3),
    ])
    def test_projections_match_reference(self, projection):
        rng = np.random.default_rng(42)
        policy = random_policy(rng)
        usage = {p: float(int(rng.integers(0, 1000)))
                 for p in policy.leaf_paths()}
        ref = compute_fairshare_tree(policy, per_user_usage=usage)
        res = compute_fairshare_flat(policy, usage)
        a = projection.project(ref)
        b = projection.project_flat(res)
        assert set(a) == set(b)
        for path in a:
            assert b[path] == pytest.approx(a[path], abs=1e-12)

    def test_vectors_match_reference(self, nested_policy):
        usage = {"/HPC/LQ": 10.0, "/HPC/KAW/u1": 5.0, "/SWE": 30.0}
        ref = compute_fairshare_tree(nested_policy, per_user_usage=usage)
        res = compute_fairshare_flat(nested_policy, usage)
        rv, fv = ref.vectors(), res.vectors()
        assert set(rv) == set(fv)
        for path in rv:
            assert rv[path].depth == fv[path].depth
            assert fv[path].elements == pytest.approx(rv[path].elements, abs=1e-9)

    def test_to_tree_is_equivalent_view(self, nested_policy):
        usage = {"/HPC/KAW/u2": 7.0, "/SWE": 1.0}
        ref = compute_fairshare_tree(nested_policy, per_user_usage=usage)
        view = compute_fairshare_flat(nested_policy, usage).to_tree()
        assert [n.path for n in view.walk()] == [n.path for n in ref.walk()]
        assert view.priorities() == pytest.approx(ref.priorities())
        assert view.vector("/HPC/KAW/u2").elements == \
            pytest.approx(ref.vector("/HPC/KAW/u2").elements)

    def test_custom_projection_falls_back_via_view(self, nested_policy):
        from repro.core.projection import Projection

        class LeafCount(Projection):
            def project(self, tree):
                leaves = list(tree.leaves())
                return {leaf.path: 1.0 / len(leaves) for leaf in leaves}

        res = compute_fairshare_flat(nested_policy, {})
        values = LeafCount().project_flat(res)
        assert values == {p: 0.25 for p in res.leaf_paths}


class TestUsageSemantics:
    def test_bare_names_and_paths_mix(self, nested_policy):
        # bare names resolve like build_usage_tree: first pre-order leaf
        ref = compute_fairshare_tree(nested_policy,
                                     per_user_usage={"u1": 5.0, "/SWE": 3.0})
        res = compute_fairshare_flat(nested_policy, {"u1": 5.0, "/SWE": 3.0})
        for path, prio in ref.priorities().items():
            assert res.priorities()[path] == pytest.approx(prio, abs=1e-12)

    def test_unknown_users_ignored(self, nested_policy):
        res = compute_fairshare_flat(nested_policy, {"ghost": 99.0})
        assert float(res.usage.sum()) == 0.0

    def test_empty_policy(self):
        res = compute_fairshare_flat(PolicyTree(), {})
        assert res.priorities() == {}
        assert PercentalProjection().project_flat(res) == {}
        assert DictionaryOrderingProjection().project_flat(res) == {}
        assert BitwiseVectorProjection().project_flat(res) == {}

    def test_recompute_reuses_compiled_policy(self, nested_policy):
        flat = FlatPolicy(nested_policy)
        r1 = flat.compute({"u1": 1.0})
        r2 = flat.compute({"u1": 2.0})
        assert r1.flat is r2.flat
        i = flat.path_index["/HPC/KAW/u1"]
        assert r1.usage[i] != r2.usage[i]
