"""Unit tests for usage decay functions."""

import numpy as np
import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    NoDecay,
    SlidingWindowDecay,
    StepDecay,
    decayed_sum,
)


class TestNoDecay:
    def test_weight_is_one_forever(self):
        d = NoDecay()
        assert d.weight(0) == 1.0
        assert d.weight(1e12) == 1.0

    def test_negative_age_is_zero(self):
        assert NoDecay().weight(-1) == 0.0

    def test_vectorized_matches_scalar(self):
        d = NoDecay()
        ages = np.array([-1.0, 0.0, 5.0])
        assert d.weights(ages).tolist() == [d.weight(a) for a in ages]


class TestExponentialDecay:
    def test_half_life_semantics(self):
        d = ExponentialDecay(half_life=100.0)
        assert d.weight(100.0) == pytest.approx(0.5)
        assert d.weight(200.0) == pytest.approx(0.25)

    def test_weight_at_zero_is_one(self):
        assert ExponentialDecay(50).weight(0) == 1.0

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0)
        with pytest.raises(ValueError):
            ExponentialDecay(-5)

    def test_vectorized_matches_scalar(self):
        d = ExponentialDecay(half_life=60)
        ages = np.array([0.0, 30.0, 90.0, 600.0])
        np.testing.assert_allclose(d.weights(ages),
                                   [d.weight(a) for a in ages])


class TestLinearDecay:
    def test_ramp(self):
        d = LinearDecay(window=10.0)
        assert d.weight(0) == 1.0
        assert d.weight(5) == pytest.approx(0.5)
        assert d.weight(10) == 0.0
        assert d.weight(20) == 0.0

    def test_vectorized_matches_scalar(self):
        d = LinearDecay(window=10.0)
        ages = np.array([-1.0, 0.0, 3.0, 10.0, 11.0])
        np.testing.assert_allclose(d.weights(ages),
                                   [d.weight(a) for a in ages])


class TestSlidingWindow:
    def test_hard_cutoff(self):
        d = SlidingWindowDecay(window=10.0)
        assert d.weight(10.0) == 1.0
        assert d.weight(10.0001) == 0.0

    def test_vectorized_matches_scalar(self):
        d = SlidingWindowDecay(window=7.0)
        ages = np.array([-0.1, 0.0, 6.9, 7.0, 7.1])
        np.testing.assert_allclose(d.weights(ages),
                                   [d.weight(a) for a in ages])


class TestStepDecay:
    def test_steps(self):
        d = StepDecay([(10, 1.0), (20, 0.5), (30, 0.1)])
        assert d.weight(5) == 1.0
        assert d.weight(15) == 0.5
        assert d.weight(25) == 0.1
        assert d.weight(31) == 0.0

    def test_weights_must_be_non_increasing(self):
        with pytest.raises(ValueError):
            StepDecay([(10, 0.5), (20, 0.9)])

    def test_weights_must_be_in_unit_range(self):
        with pytest.raises(ValueError):
            StepDecay([(10, 1.5)])

    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            StepDecay([])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StepDecay([(-1, 1.0)])

    def test_vectorized_matches_scalar(self):
        d = StepDecay([(10, 1.0), (20, 0.5), (30, 0.1)])
        # exercise negative ages, exact thresholds, interior points, and
        # ages beyond the last step
        ages = np.array([-5.0, -1e-9, 0.0, 5.0, 10.0, 10.0 + 1e-9, 15.0,
                         20.0, 25.0, 30.0, 30.0 + 1e-9, 1e9])
        assert d.weights(ages).tolist() == [d.weight(a) for a in ages]

    def test_vectorized_single_step(self):
        d = StepDecay([(7.0, 0.3)])
        ages = np.array([-1.0, 0.0, 7.0, 7.5])
        assert d.weights(ages).tolist() == [d.weight(a) for a in ages]

    def test_vectorized_in_decayed_sum(self):
        d = StepDecay([(10, 1.0), (20, 0.5)])
        amounts = np.array([4.0, 2.0, 8.0])
        ages = np.array([5.0, 15.0, 25.0])
        assert decayed_sum(amounts, ages, d) == pytest.approx(4.0 + 1.0 + 0.0)


class TestDecayedSum:
    def test_weighted_dot_product(self):
        total = decayed_sum(np.array([100.0, 100.0]),
                            np.array([0.0, 100.0]),
                            ExponentialDecay(half_life=100.0))
        assert total == pytest.approx(150.0)

    def test_empty_is_zero(self):
        assert decayed_sum(np.array([]), np.array([]), NoDecay()) == 0.0

    def test_no_decay_is_plain_sum(self):
        amounts = np.array([1.0, 2.0, 3.0])
        assert decayed_sum(amounts, np.array([0, 1e6, 1e9]), NoDecay()) == 6.0
