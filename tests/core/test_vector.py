"""Unit tests for fairshare vectors (paper Section III-C, Figure 3)."""

import pytest

from repro.core.vector import FairshareVector


class TestConstruction:
    def test_from_scores_scales_to_resolution(self):
        v = FairshareVector.from_scores([0.5, 1.0], resolution=9999)
        assert v.elements == (0.5 * 9999, 9999.0)

    def test_from_scores_clips(self):
        v = FairshareVector.from_scores([-0.5, 1.5])
        assert v.elements[0] == 0.0
        assert v.elements[1] == 9999.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FairshareVector([])

    def test_out_of_range_element_rejected(self):
        with pytest.raises(ValueError):
            FairshareVector([10000.0], resolution=9999)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            FairshareVector([1.0], resolution=0)

    def test_quantized_rendering(self):
        v = FairshareVector([7073.4, 5000.0])
        assert v.quantized() == (7073, 5000)

    def test_scores_roundtrip(self):
        v = FairshareVector.from_scores([0.25, 0.75])
        assert v.scores() == pytest.approx([0.25, 0.75])


class TestPadding:
    def test_balance_point_is_center(self):
        v = FairshareVector([1.0], resolution=9999)
        assert v.balance_point == pytest.approx(4999.5)

    def test_padded_appends_balance(self):
        # Figure 3: a path ending early (like /LQ) pads with the balance point
        v = FairshareVector([8000.0], resolution=9999)
        assert v.padded(3) == (8000.0, 4999.5, 4999.5)

    def test_padded_below_depth_rejected(self):
        v = FairshareVector([1.0, 2.0])
        with pytest.raises(ValueError):
            v.padded(1)


class TestComparison:
    def test_lexicographic_top_level_first(self):
        a = FairshareVector([9000.0, 0.0])
        b = FairshareVector([8000.0, 9999.0])
        assert a > b

    def test_deeper_levels_break_ties(self):
        a = FairshareVector([5000.0, 6000.0])
        b = FairshareVector([5000.0, 4000.0])
        assert a > b

    def test_different_depths_compare_via_balance(self):
        # a short vector behaves as if in balance on deeper levels
        short = FairshareVector([6000.0], resolution=9999)
        deep_under = FairshareVector([6000.0, 3000.0], resolution=9999)
        deep_over = FairshareVector([6000.0, 7000.0], resolution=9999)
        assert short > deep_under
        assert short < deep_over

    def test_equal_vectors(self):
        assert FairshareVector([5000.0]) == FairshareVector([5000.0])

    def test_trailing_balance_is_invisible(self):
        v1 = FairshareVector([6000.0], resolution=9999)
        v2 = FairshareVector([6000.0, 4999.5], resolution=9999)
        assert v1 == v2
        assert hash(v1) == hash(v2)

    def test_resolution_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FairshareVector([1.0], resolution=10) < FairshareVector([1.0], resolution=100)

    def test_total_order_consistency(self):
        a = FairshareVector([1.0, 2.0])
        b = FairshareVector([1.0, 3.0])
        assert (a < b) and (b > a) and (a <= b) and not (a >= b) and a != b

    def test_sort_descending_returns_indices(self):
        vs = [FairshareVector([1000.0]), FairshareVector([9000.0]),
              FairshareVector([5000.0])]
        assert FairshareVector.sort_descending(vs) == [1, 2, 0]

    def test_sort_descending_stable_for_equal(self):
        vs = [FairshareVector([5000.0]), FairshareVector([5000.0])]
        assert FairshareVector.sort_descending(vs) == [0, 1]


class TestSequenceProtocol:
    def test_len_iter_getitem(self):
        v = FairshareVector([1.0, 2.0, 3.0])
        assert len(v) == 3
        assert list(v) == [1.0, 2.0, 3.0]
        assert v[1] == 2.0

    def test_repr_shows_elements(self):
        v = FairshareVector([7073.0, 5000.0])
        assert "7073" in repr(v)
