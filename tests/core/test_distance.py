"""Unit tests for the distance metrics and the k-blend (paper ranges)."""

import pytest

from repro.core.distance import (
    FairshareParameters,
    absolute_distance,
    balance_score,
    combined_priority,
    relative_distance,
)


class TestAbsoluteDistance:
    def test_range_is_zero_to_share(self):
        # paper Section IV-A.5: "the absolute component is in the range
        # [0, (UserShare)]"
        assert absolute_distance(0.12, 0.0) == pytest.approx(0.12)
        assert absolute_distance(0.12, 0.12) == 0.0
        assert absolute_distance(0.12, 0.9) == 0.0  # clipped at zero

    def test_underserved_positive(self):
        assert absolute_distance(0.5, 0.2) == pytest.approx(0.3)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            absolute_distance(-0.1, 0.0)
        with pytest.raises(ValueError):
            absolute_distance(0.1, -0.2)


class TestRelativeDistance:
    def test_range_is_unit_interval(self):
        # paper: "The relative component is always in the range [0, 1]"
        assert relative_distance(0.3, 0.0) == 1.0
        assert 0.0 <= relative_distance(0.3, 100.0) <= 1.0

    def test_balance_is_center(self):
        assert relative_distance(0.4, 0.4) == pytest.approx(0.5)

    def test_overserved_below_center(self):
        assert relative_distance(0.4, 0.8) < 0.5

    def test_zero_share_is_zero(self):
        assert relative_distance(0.0, 0.0) == 0.0
        assert relative_distance(0.0, 0.5) == 0.0

    def test_monotone_in_usage(self):
        values = [relative_distance(0.3, u) for u in (0.0, 0.1, 0.3, 1.0, 10.0)]
        assert values == sorted(values, reverse=True)


class TestCombinedPriority:
    def test_paper_u3_maximum(self):
        # Figure 13b: k=0.5, U3 share 0.12 => max priority 0.5*(1+0.12)=0.56
        assert combined_priority(0.12, 0.0, k=0.5) == pytest.approx(0.56)

    def test_k_zero_is_relative_only(self):
        assert combined_priority(0.2, 0.0, k=0.0) == 1.0

    def test_k_one_is_absolute_only(self):
        assert combined_priority(0.2, 0.0, k=1.0) == pytest.approx(0.2)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            combined_priority(0.5, 0.1, k=1.5)

    def test_underserved_beats_overserved(self):
        assert combined_priority(0.5, 0.1) > combined_priority(0.5, 0.9)


class TestBalanceScore:
    def test_balance_is_center_of_range(self):
        # Figure 3: the balance point is the center value of the range
        assert balance_score(0.3, 0.3) == pytest.approx(0.5)
        assert balance_score(0.8, 0.8) == pytest.approx(0.5)

    def test_in_unit_interval(self):
        for s, u in [(0.0, 0.0), (0.0, 5.0), (1.0, 0.0), (0.5, 100.0)]:
            assert 0.0 <= balance_score(s, u) <= 1.0

    def test_no_share_no_usage_is_balance(self):
        assert balance_score(0.0, 0.0) == pytest.approx(0.5)

    def test_underserved_above_center(self):
        assert balance_score(0.4, 0.1) > 0.5

    def test_overserved_below_center(self):
        assert balance_score(0.4, 0.9) < 0.5

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            balance_score(0.5, 0.5, k=-0.1)


class TestFairshareParameters:
    def test_defaults_match_paper(self):
        p = FairshareParameters()
        assert p.k == 0.5
        assert p.resolution == 9999

    def test_balance_point_is_center(self):
        assert FairshareParameters(resolution=9999).balance_point == pytest.approx(4999.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FairshareParameters(k=2.0)
        with pytest.raises(ValueError):
            FairshareParameters(resolution=0)
