"""Unit tests for policy trees: shares, normalization, mounting, parsing."""

import pytest

from repro.core.policy import PolicyError, PolicyNode, PolicyTree, parse_policy


@pytest.fixture
def site_policy() -> PolicyTree:
    return PolicyTree.from_dict({
        "local": (60, {"alice": 2, "bob": 1}),
        "grid": 40,
    })


class TestConstruction:
    def test_from_dict_weights(self, site_policy):
        assert site_policy["/local"].weight == 60
        assert site_policy["/grid"].weight == 40
        assert site_policy["/local/alice"].weight == 2

    def test_from_dict_nested_without_tuple_defaults_weight(self):
        tree = PolicyTree.from_dict({"g": {"u": 1}})
        assert tree["/g"].weight == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(PolicyError):
            PolicyNode("x", weight=-1)

    def test_zero_weight_rejected(self):
        with pytest.raises(PolicyError):
            PolicyTree().set_share("/u", 0.0)

    def test_set_share_creates_and_updates(self):
        tree = PolicyTree()
        tree.set_share("/a/b", 3)
        assert tree["/a/b"].weight == 3
        tree.set_share("/a/b", 5)
        assert tree["/a/b"].weight == 5


class TestNormalization:
    def test_sibling_shares_sum_to_one(self, site_policy):
        children = site_policy.root.children.values()
        assert sum(c.normalized_share for c in children) == pytest.approx(1.0)

    def test_normalized_share_values(self, site_policy):
        assert site_policy["/local"].normalized_share == pytest.approx(0.6)
        assert site_policy["/local/alice"].normalized_share == pytest.approx(2 / 3)

    def test_root_share_is_one(self, site_policy):
        assert site_policy.root.normalized_share == 1.0

    def test_total_share_is_product_down_path(self, site_policy):
        # paper Section III-C example: 0.20 * 0.25 = 0.05 style product
        assert site_policy.total_share("/local/alice") == pytest.approx(0.6 * 2 / 3)

    def test_share_vector(self, site_policy):
        assert site_policy.share_vector("/local/bob") == pytest.approx([0.6, 1 / 3])

    def test_weights_are_relative_not_absolute(self):
        t1 = PolicyTree.from_dict({"a": 1, "b": 1})
        t2 = PolicyTree.from_dict({"a": 50, "b": 50})
        assert t1["/a"].normalized_share == t2["/a"].normalized_share


class TestMounting:
    def test_mount_grafts_children(self, site_policy):
        sub = PolicyTree.from_dict({"projA": 3, "projB": 1})
        site_policy.mount("/grid", sub, source="remote-pds")
        assert site_policy["/grid/projA"].normalized_share == pytest.approx(0.75)
        assert site_policy["/grid/projA"].mounted_from == "remote-pds"

    def test_mount_can_set_local_weight(self, site_policy):
        sub = PolicyTree.from_dict({"p": 1})
        site_policy.mount("/grid", sub, source="r", weight=20)
        assert site_policy["/grid"].weight == 20

    def test_mount_point_with_children_rejected(self, site_policy):
        sub = PolicyTree.from_dict({"p": 1})
        with pytest.raises(PolicyError):
            site_policy.mount("/local", sub, source="r")

    def test_local_tree_unaffected_by_mount(self, site_policy):
        sub = PolicyTree.from_dict({"p": 1})
        site_policy.mount("/grid", sub, source="r")
        assert site_policy["/local/alice"].normalized_share == pytest.approx(2 / 3)

    def test_refresh_mount_replaces_subtree(self, site_policy):
        site_policy.mount("/grid", PolicyTree.from_dict({"p": 1}), source="r")
        site_policy.refresh_mount("/grid", PolicyTree.from_dict({"q": 2, "p": 2}))
        assert "/grid/q" in site_policy
        assert site_policy["/grid/p"].weight == 2

    def test_refresh_non_mount_rejected(self, site_policy):
        with pytest.raises(PolicyError):
            site_policy.refresh_mount("/local", PolicyTree.from_dict({"x": 1}))

    def test_unmount_removes_children(self, site_policy):
        site_policy.mount("/grid", PolicyTree.from_dict({"p": 1}), source="r")
        site_policy.unmount("/grid")
        assert "/grid/p" not in site_policy
        assert site_policy["/grid"].mounted_from is None

    def test_mount_points_lists_top_mount_only(self, site_policy):
        sub = PolicyTree.from_dict({"p": (1, {"u": 1})})
        site_policy.mount("/grid", sub, source="r")
        assert site_policy.mount_points() == ["/grid"]

    def test_nested_remote_structure_preserved(self, site_policy):
        sub = PolicyTree.from_dict({"proj": (1, {"u1": 3, "u2": 1})})
        site_policy.mount("/grid", sub, source="r")
        assert site_policy["/grid/proj/u1"].normalized_share == pytest.approx(0.75)


class TestSerialization:
    def test_dumps_parse_roundtrip(self, site_policy):
        text = site_policy.dumps()
        parsed = parse_policy(text)
        assert parsed == site_policy

    def test_parse_ignores_comments_and_blanks(self):
        tree = parse_policy("# comment\n\n/u = 3\n")
        assert tree["/u"].weight == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(PolicyError):
            parse_policy("not a policy line")

    def test_parse_rejects_bad_weight(self):
        with pytest.raises(PolicyError):
            parse_policy("/u = banana")

    def test_parse_rejects_root_assignment(self):
        with pytest.raises(PolicyError):
            parse_policy("/ = 4")

    def test_parse_creates_intermediate_nodes(self):
        tree = parse_policy("/a/b/c = 2")
        assert "/a/b" in tree
        assert tree["/a/b"].weight == 1.0  # default

    def test_copy_is_deep_and_equal(self, site_policy):
        site_policy.mount("/grid", PolicyTree.from_dict({"p": 1}), source="r")
        clone = site_policy.copy()
        assert clone == site_policy
        clone.set_share("/local", 99)
        assert site_policy["/local"].weight == 60
        assert clone["/grid/p"].mounted_from == "r"

    def test_user_paths_are_leaves(self, site_policy):
        assert sorted(site_policy.user_paths()) == ["/grid", "/local/alice", "/local/bob"]
