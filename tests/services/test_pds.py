"""Unit tests for the Policy Distribution Service (PDS)."""

import pytest

from repro.core.policy import PolicyTree
from repro.services.pds import PolicyDistributionService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


def make_pds(engine, name="site", spec=None, **kwargs):
    policy = PolicyTree.from_dict(spec or {"local": 1})
    kwargs.setdefault("refresh_interval", 10.0)
    return PolicyDistributionService(name, engine, policy=policy, **kwargs)


class TestLocalAdministration:
    def test_policy_returns_tree(self, engine):
        pds = make_pds(engine)
        assert "/local" in pds.policy()

    def test_set_share_bumps_version(self, engine):
        pds = make_pds(engine)
        v = pds.version
        pds.set_share("/local", 5)
        assert pds.version == v + 1
        assert pds.policy()["/local"].weight == 5

    def test_set_policy_replaces_tree(self, engine):
        pds = make_pds(engine)
        pds.set_policy(PolicyTree.from_dict({"new": 1}))
        assert "/new" in pds.policy()
        assert "/local" not in pds.policy()


class TestExport:
    def test_export_is_parseable_policy_text(self, engine):
        pds = make_pds(engine, spec={"g": (2, {"u": 3})})
        from repro.core.policy import parse_policy
        parsed = parse_policy(pds.export().text())
        assert parsed["/g/u"].weight == 3
        assert parsed == pds.policy()

    def test_export_carries_source_and_time(self, engine):
        engine.run_until(0)
        pds = make_pds(engine, name="hpc2n")
        msg = pds.export()
        assert msg.source == "hpc2n"
        assert msg.sent_at == engine.now


class TestRemoteMounting:
    def test_mount_remote_grafts_policy(self, engine):
        local = make_pds(engine, name="site", spec={"local": 60, "grid": 40})
        remote = make_pds(engine, name="vo", spec={"projA": 3, "projB": 1})
        local.mount_remote("/grid", remote)
        assert local.policy()["/grid/projA"].normalized_share == pytest.approx(0.75)
        assert local.mounts() == ["/grid"]

    def test_remote_change_propagates_on_refresh(self, engine):
        local = make_pds(engine, name="site", spec={"local": 60, "grid": 40},
                         refresh_interval=10.0)
        remote = make_pds(engine, name="vo", spec={"projA": 3, "projB": 1})
        local.mount_remote("/grid", remote)
        remote.set_share("/projC", 4)  # remote admin adds a project
        assert "/grid/projC" not in local.policy()
        engine.run_until(10.0)
        assert "/grid/projC" in local.policy()

    def test_local_changes_survive_refresh(self, engine):
        local = make_pds(engine, name="site", spec={"local": 60, "grid": 40})
        remote = make_pds(engine, name="vo", spec={"p": 1})
        local.mount_remote("/grid", remote, weight=30)
        engine.run_until(50.0)
        assert local.policy()["/grid"].weight == 30
        assert local.policy()["/local"].weight == 60

    def test_mount_weight_override(self, engine):
        local = make_pds(engine, name="site", spec={"local": 60, "grid": 40})
        remote = make_pds(engine, name="vo", spec={"p": 1})
        local.mount_remote("/grid", remote, weight=25)
        assert local.policy()["/grid"].weight == 25

    def test_stop_halts_refresh(self, engine):
        local = make_pds(engine, name="site", spec={"local": 60, "grid": 40})
        remote = make_pds(engine, name="vo", spec={"p": 1})
        local.mount_remote("/grid", remote)
        local.stop()
        remote.set_share("/q", 2)
        engine.run_until(100.0)
        assert "/grid/q" not in local.policy()
