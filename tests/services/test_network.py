"""Unit tests for the simulated network bus."""

import pytest

from repro.services.network import Network
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, base_latency=1.0)


class TestDelivery:
    def test_message_arrives_after_latency(self, engine, network):
        inbox = []
        network.connect("b", inbox.append)
        network.send("a", "b", "hello")
        assert inbox == []
        engine.run_until(0.5)
        assert inbox == []
        engine.run_until(1.0)
        assert inbox == ["hello"]

    def test_unknown_destination_dropped(self, engine, network):
        assert network.send("a", "nowhere", "x") is False
        assert network.stats.dropped == 1

    def test_broadcast_excludes_source(self, engine, network):
        boxes = {name: [] for name in ("a", "b", "c")}
        for name, box in boxes.items():
            network.connect(name, box.append)
        count = network.broadcast("a", "msg")
        engine.run_until(2.0)
        assert count == 2
        assert boxes["a"] == []
        assert boxes["b"] == ["msg"] and boxes["c"] == ["msg"]

    def test_per_link_stats(self, engine, network):
        network.connect("b", lambda m: None)
        network.send("a", "b", 1)
        network.send("a", "b", 2)
        assert network.stats.per_link[("a", "b")] == 2

    def test_duplicate_endpoint_rejected(self, network):
        network.connect("x", lambda m: None)
        with pytest.raises(ValueError):
            network.connect("x", lambda m: None)

    def test_disconnect(self, engine, network):
        inbox = []
        network.connect("b", inbox.append)
        network.disconnect("b")
        assert network.send("a", "b", "x") is False

    def test_jitter_bounds_latency(self, engine):
        # jitter is symmetric around the base latency
        net = Network(engine, base_latency=1.0, jitter=0.5)
        for _ in range(50):
            lat = net.latency()
            assert 0.5 <= lat <= 1.5

    def test_jitter_larger_than_base_clamps_at_zero(self, engine):
        # regression: base 0.01 with jitter 1.0 used to be able to produce
        # a negative delay, which SimulationEngine.schedule rejects —
        # every exchange tick on a high-jitter link would crash
        net = Network(engine, base_latency=0.01, jitter=1.0)
        lats = [net.latency() for _ in range(500)]
        assert all(0.0 <= lat <= 1.01 for lat in lats)
        assert any(lat == 0.0 for lat in lats)  # the clamp actually fires

    def test_send_survives_high_jitter(self, engine):
        # end-to-end: sends with jitter > base must schedule, not raise
        net = Network(engine, base_latency=0.01, jitter=1.0)
        inbox = []
        net.connect("b", inbox.append)
        for i in range(100):
            assert net.send("a", "b", i) is True
        engine.run_until(5.0)
        assert sorted(inbox) == list(range(100))

    def test_negative_latency_rejected(self, engine):
        with pytest.raises(ValueError):
            Network(engine, base_latency=-1.0)


class TestPayloadAccounting:
    def delta(self, entries=2):
        from repro.services.messages import UsageDeltaMessage
        return UsageDeltaMessage(
            site="a", sent_at=0.0, interval=60.0, seq=1, full=True,
            user_table=["u"], user_idx=[0] * entries,
            bin_idx=list(range(entries)), charges=[1.0] * entries)

    def test_send_accumulates_entries_and_bytes(self, network):
        network.connect("b", lambda m: None)
        msg = self.delta(entries=3)
        network.send("a", "b", msg)
        assert network.stats.payload_entries == 3
        assert network.stats.payload_bytes == msg.wire_bytes()
        assert network.stats.messages_by_type["UsageDeltaMessage"] == 1
        assert network.stats.bytes_by_type["UsageDeltaMessage"] == msg.wire_bytes()

    def test_raw_payloads_count_zero(self, network):
        network.connect("b", lambda m: None)
        network.send("a", "b", {"not": "a message"})
        assert network.stats.sent == 1
        assert network.stats.payload_entries == 0
        assert network.stats.payload_bytes == 0

    def test_dropped_at_send_still_counted(self, network):
        # sender-side accounting: the sender pays the wire cost before it
        # can learn the link is partitioned
        network.connect("b", lambda m: None)
        network.partition("a", "b")
        msg = self.delta()
        network.send("a", "b", msg)
        assert network.stats.dropped == 1
        assert network.stats.payload_bytes == msg.wire_bytes()
        assert network.stats.payload_entries == msg.wire_entries()
        assert network.stats.messages_by_type["UsageDeltaMessage"] == 1

    def test_unknown_endpoint_still_counted(self, network):
        msg = self.delta()
        network.send("a", "nowhere", msg)
        assert network.stats.dropped == 1
        assert network.stats.payload_bytes == msg.wire_bytes()

    def test_reset_clears_everything(self, engine, network):
        network.connect("b", lambda m: None)
        network.send("a", "b", self.delta())
        network.send("a", "nowhere", "x")
        engine.run_until(2.0)
        network.stats.reset()
        s = network.stats
        assert s.sent == s.delivered == s.dropped == 0
        assert s.payload_entries == 0 and s.payload_bytes == 0
        assert s.per_link == {} and s.messages_by_type == {}
        assert s.bytes_by_type == {}


class TestPartitionWindowAccounting:
    """Per-type traffic over a partition/heal window, pinned exactly.

    Sender-side accounting means the window's by-type series show every
    message the delta protocol emitted — the dropped delta, the dropped
    heartbeats, and (after heal) the gap-repair resync round."""

    @staticmethod
    def _diff(after, before, key):
        a, b = after[key], before[key]
        return {k: v - b.get(k, 0) for k, v in a.items() if v - b.get(k, 0)}

    def test_partition_heal_window_per_type_counts(self, engine, network):
        from repro.core.usage import UsageRecord
        from repro.services.uss import UsageStatisticsService

        def uss(name):
            return UsageStatisticsService(name, engine, network,
                                          histogram_interval=60.0,
                                          exchange_interval=10.0)

        a, b = uss("a"), uss("b")
        a.add_peer("b")
        b.add_peer("a")
        engine.run_until(2.0)  # t=0 tick: both send full snapshots (seq=1)
        a.record_job(UsageRecord(user="alice", site="a", start=0.0, end=100.0))
        engine.run_until(15.0)  # t=10 tick: a's delta seq=2 delivered
        network.partition("uss:a", "uss:b")
        before = network.stats.snapshot()
        # only site a churns during the partition, so exactly one delta
        # (seq=3, t=20) is lost; a then goes idle and heartbeats
        a.record_job(UsageRecord(user="alice", site="a",
                                 start=100.0, end=400.0))
        engine.run_until(35.0)  # ticks at 20 and 30, all four sends dropped
        healed = network.stats.snapshot()
        window = self._diff(healed, before, "messages_by_type")
        # a: delta(t=20) + heartbeat(t=30); b: heartbeats at 20 and 30
        assert window == {"UsageDeltaMessage": 4}
        assert healed["dropped"] - before["dropped"] == 4
        # the dropped traffic still cost wire bytes (sender-side accounting)
        assert self._diff(healed, before, "bytes_by_type")[
            "UsageDeltaMessage"] > 0
        network.heal("uss:a", "uss:b")
        engine.run_until(45.0)  # t=40 tick: heartbeats expose the gap
        after = network.stats.snapshot()
        repair = self._diff(after, healed, "messages_by_type")
        # two heartbeats, one resync request (b->a), one full reply (a->b)
        assert repair == {"UsageDeltaMessage": 3, "UsageResyncRequest": 1}
        assert after["delivered"] - healed["delivered"] == 4
        assert b.resyncs_requested == 1 and a.resyncs_served == 1
        assert b.remote["a"].total("alice") == pytest.approx(400.0)


class TestPartitions:
    def test_partition_drops_messages(self, engine, network):
        inbox = []
        network.connect("b", inbox.append)
        network.partition("a", "b")
        assert network.send("a", "b", "x") is False
        engine.run_until(10.0)
        assert inbox == []

    def test_partition_is_symmetric(self, engine, network):
        network.connect("a", lambda m: None)
        network.partition("a", "b")
        assert network.is_partitioned("b", "a")
        assert network.send("b", "a", "x") is False

    def test_heal_restores_delivery(self, engine, network):
        inbox = []
        network.connect("b", inbox.append)
        network.partition("a", "b")
        network.heal("a", "b")
        assert network.send("a", "b", "x") is True
        engine.run_until(2.0)
        assert inbox == ["x"]

    def test_in_flight_message_lost_on_partition(self, engine, network):
        inbox = []
        network.connect("b", inbox.append)
        network.send("a", "b", "x")  # in flight, arrives at t=1
        network.partition("a", "b")
        engine.run_until(2.0)
        assert inbox == []
        assert network.stats.dropped == 1

    def test_unrelated_links_unaffected(self, engine, network):
        inbox = []
        network.connect("c", inbox.append)
        network.partition("a", "b")
        network.send("a", "c", "x")
        engine.run_until(2.0)
        assert inbox == ["x"]
