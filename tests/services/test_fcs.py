"""Unit tests for the Fairshare Calculation Service (FCS)."""

import pytest

from repro.core.decay import NoDecay
from repro.core.distance import FairshareParameters
from repro.core.policy import PolicyTree
from repro.core.projection import DictionaryOrderingProjection
from repro.core.usage import UsageRecord
from repro.services.fcs import FairshareCalculationService
from repro.services.network import Network
from repro.services.pds import PolicyDistributionService
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def stack():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    uss = UsageStatisticsService("a", engine, network,
                                 histogram_interval=60.0, exchange_interval=5.0)
    ums = UsageMonitoringService("a", engine, sources=[uss],
                                 decay=NoDecay(), refresh_interval=5.0)
    policy = PolicyTree.from_dict({"alice": 3, "bob": 1})
    pds = PolicyDistributionService("a", engine, policy=policy,
                                    refresh_interval=100.0)
    fcs = FairshareCalculationService("a", engine, pds=pds, ums=ums,
                                      refresh_interval=5.0)
    return engine, uss, ums, pds, fcs


class TestPrecomputation:
    def test_initial_refresh_at_construction(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.refreshes == 1
        assert fcs.tree() is not None

    def test_values_served_from_precomputed_state(self, stack):
        engine, uss, _, _, fcs = stack
        before = fcs.fairshare_value("alice")
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        # not yet refreshed: value unchanged (no real-time calculation)
        assert fcs.fairshare_value("alice") == before
        engine.run_until(11.0)  # UMS then FCS refresh
        assert fcs.fairshare_value("alice") < before

    def test_zero_usage_priorities_ordered_by_share(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.priority("alice") > fcs.priority("bob")

    def test_usage_lowers_priority(self, stack):
        engine, uss, _, _, fcs = stack
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=1000.0))
        engine.run_until(11.0)
        assert fcs.priority("alice") < fcs.priority("bob")

    def test_vector_extraction(self, stack):
        _, _, _, _, fcs = stack
        vec = fcs.vector("alice")
        assert vec is not None and vec.depth == 1

    def test_policy_change_takes_effect_after_refresh(self, stack):
        engine, _, _, pds, fcs = stack
        pds.set_share("/carol", 10)
        assert fcs.fairshare_value("carol") == fcs.unknown_user_value
        engine.run_until(5.0)
        assert fcs.priority("carol") > fcs.priority("alice")

    def test_values_mapping_keys_are_paths(self, stack):
        _, _, _, _, fcs = stack
        assert set(fcs.values()) == {"/alice", "/bob"}


class TestIdentityResolution:
    def test_unknown_user_gets_default(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.fairshare_value("ghost") == fcs.unknown_user_value

    def test_leaf_path_lookup(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.fairshare_value("/alice") == fcs.fairshare_value("alice")

    def test_identity_map_aliases_dn(self, stack):
        engine, uss, _, _, fcs = stack
        dn = "/C=SE/O=Grid/CN=alice"
        fcs.register_identity(dn, "alice")
        assert fcs.fairshare_value(dn) == fcs.fairshare_value("alice")

    def test_usage_recorded_under_dn_reaches_leaf(self, stack):
        engine, uss, _, _, fcs = stack
        dn = "/C=SE/O=Grid/CN=alice"
        fcs.register_identity(dn, "alice")
        uss.record_job(UsageRecord(user=dn, site="a", start=0.0, end=1000.0))
        engine.run_until(11.0)
        assert fcs.priority("alice") < fcs.priority("bob")


class TestProjectionSwap:
    def test_set_projection_recomputes_values(self, stack):
        _, _, _, _, fcs = stack
        percental_values = fcs.values()
        fcs.set_projection(DictionaryOrderingProjection())
        dictionary_values = fcs.values()
        assert dictionary_values != percental_values
        # order must be preserved across projections
        assert (dictionary_values["/alice"] > dictionary_values["/bob"]) == \
            (percental_values["/alice"] > percental_values["/bob"])

    def test_parameters_respected(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network)
        ums = UsageMonitoringService("a", engine, sources=[uss], decay=NoDecay())
        pds = PolicyDistributionService(
            "a", engine, policy=PolicyTree.from_dict({"u": 12, "v": 88}))
        fcs = FairshareCalculationService(
            "a", engine, pds=pds, ums=ums,
            parameters=FairshareParameters(k=0.5))
        # zero usage: p = 0.5*(share + 1); the Figure 13b bound
        assert fcs.priority("u") == pytest.approx(0.5 * (1 + 0.12))

    def test_stop_halts_refresh(self, stack):
        engine, uss, ums, _, fcs = stack
        fcs.stop()
        ums.stop()
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        before = fcs.fairshare_value("alice")
        engine.run_until(60.0)
        assert fcs.fairshare_value("alice") == before
