"""Unit tests for the Fairshare Calculation Service (FCS)."""

import pytest

from repro.core.decay import NoDecay
from repro.core.distance import FairshareParameters
from repro.core.policy import PolicyTree
from repro.core.projection import DictionaryOrderingProjection
from repro.core.usage import UsageRecord
from repro.services.fcs import FairshareCalculationService
from repro.services.network import Network
from repro.services.pds import PolicyDistributionService
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def stack():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    uss = UsageStatisticsService("a", engine, network,
                                 histogram_interval=60.0, exchange_interval=5.0)
    ums = UsageMonitoringService("a", engine, sources=[uss],
                                 decay=NoDecay(), refresh_interval=5.0)
    policy = PolicyTree.from_dict({"alice": 3, "bob": 1})
    pds = PolicyDistributionService("a", engine, policy=policy,
                                    refresh_interval=100.0)
    fcs = FairshareCalculationService("a", engine, pds=pds, ums=ums,
                                      refresh_interval=5.0)
    return engine, uss, ums, pds, fcs


class TestPrecomputation:
    def test_initial_refresh_at_construction(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.refreshes == 1
        assert fcs.tree() is not None

    def test_values_served_from_precomputed_state(self, stack):
        engine, uss, _, _, fcs = stack
        before = fcs.fairshare_value("alice")
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        # not yet refreshed: value unchanged (no real-time calculation)
        assert fcs.fairshare_value("alice") == before
        engine.run_until(11.0)  # UMS then FCS refresh
        assert fcs.fairshare_value("alice") < before

    def test_zero_usage_priorities_ordered_by_share(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.priority("alice") > fcs.priority("bob")

    def test_usage_lowers_priority(self, stack):
        engine, uss, _, _, fcs = stack
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=1000.0))
        engine.run_until(11.0)
        assert fcs.priority("alice") < fcs.priority("bob")

    def test_vector_extraction(self, stack):
        _, _, _, _, fcs = stack
        vec = fcs.vector("alice")
        assert vec is not None and vec.depth == 1

    def test_policy_change_takes_effect_after_refresh(self, stack):
        engine, _, _, pds, fcs = stack
        pds.set_share("/carol", 10)
        assert fcs.fairshare_value("carol") == fcs.unknown_user_value
        engine.run_until(5.0)
        assert fcs.priority("carol") > fcs.priority("alice")

    def test_values_mapping_keys_are_paths(self, stack):
        _, _, _, _, fcs = stack
        assert set(fcs.values()) == {"/alice", "/bob"}


class TestIdentityResolution:
    def test_unknown_user_gets_default(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.fairshare_value("ghost") == fcs.unknown_user_value
        assert fcs.priority("ghost") == fcs.unknown_user_value
        assert fcs.vector("ghost") is None

    def test_leaf_path_lookup(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.fairshare_value("/alice") == fcs.fairshare_value("alice")

    def test_identity_map_aliases_dn(self, stack):
        engine, uss, _, _, fcs = stack
        dn = "/C=SE/O=Grid/CN=alice"
        fcs.register_identity(dn, "alice")
        assert fcs.fairshare_value(dn) == fcs.fairshare_value("alice")

    def test_usage_recorded_under_dn_reaches_leaf(self, stack):
        engine, uss, _, _, fcs = stack
        dn = "/C=SE/O=Grid/CN=alice"
        fcs.register_identity(dn, "alice")
        uss.record_job(UsageRecord(user=dn, site="a", start=0.0, end=1000.0))
        engine.run_until(11.0)
        assert fcs.priority("alice") < fcs.priority("bob")

    def test_register_identity_after_refresh_takes_effect(self, stack):
        engine, _, _, _, fcs = stack
        engine.run_until(11.0)  # several refreshes already done
        dn = "/C=SE/O=Grid/CN=alice"
        assert fcs.fairshare_value(dn) == fcs.unknown_user_value
        fcs.register_identity(dn, "alice")
        # lookup aliasing is live — no refresh needed for value resolution
        assert fcs.fairshare_value(dn) == fcs.fairshare_value("alice")
        assert fcs.priority(dn) == fcs.priority("alice")

    def test_alias_usage_folds_multiple_identities_onto_one_leaf(self, stack):
        engine, uss, ums, _, fcs = stack
        dn1 = "/C=SE/O=Grid/CN=alice"
        dn2 = "/C=DE/O=OtherGrid/CN=alice.b"
        fcs.register_identity(dn1, "alice")
        fcs.register_identity(dn2, "alice")
        uss.record_job(UsageRecord(user=dn1, site="a", start=0.0, end=400.0))
        uss.record_job(UsageRecord(user=dn2, site="a", start=0.0, end=600.0))
        engine.run_until(11.0)
        tree = fcs.tree()
        # both identities' usage lands on /alice: 1000 of 1000 total
        assert tree["/alice"].usage_share == pytest.approx(1.0)
        assert tree["/bob"].usage_share == 0.0

    def test_unregistered_alias_usage_is_ignored(self, stack):
        engine, uss, _, _, fcs = stack
        uss.record_job(UsageRecord(user="/C=SE/CN=stranger", site="a",
                                   start=0.0, end=500.0))
        engine.run_until(11.0)
        assert fcs.tree()["/alice"].usage_share == 0.0


class TestProjectionSwap:
    def test_set_projection_recomputes_values(self, stack):
        _, _, _, _, fcs = stack
        percental_values = fcs.values()
        fcs.set_projection(DictionaryOrderingProjection())
        dictionary_values = fcs.values()
        assert dictionary_values != percental_values
        # order must be preserved across projections
        assert (dictionary_values["/alice"] > dictionary_values["/bob"]) == \
            (percental_values["/alice"] > percental_values["/bob"])

    def test_parameters_respected(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network)
        ums = UsageMonitoringService("a", engine, sources=[uss], decay=NoDecay())
        pds = PolicyDistributionService(
            "a", engine, policy=PolicyTree.from_dict({"u": 12, "v": 88}))
        fcs = FairshareCalculationService(
            "a", engine, pds=pds, ums=ums,
            parameters=FairshareParameters(k=0.5))
        # zero usage: p = 0.5*(share + 1); the Figure 13b bound
        assert fcs.priority("u") == pytest.approx(0.5 * (1 + 0.12))

    def test_stop_halts_refresh(self, stack):
        engine, uss, ums, _, fcs = stack
        fcs.stop()
        ums.stop()
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        before = fcs.fairshare_value("alice")
        engine.run_until(60.0)
        assert fcs.fairshare_value("alice") == before


class TestRefreshCache:
    def test_idle_refreshes_hit_the_cache(self, stack):
        engine, _, _, _, fcs = stack
        engine.run_until(51.0)  # ten refresh periods, no usage, no policy change
        assert fcs.refreshes > 5
        # only the initial refresh computed; every periodic one was skipped
        assert fcs.refresh_stats.misses == 1
        assert fcs.refresh_stats.hits == fcs.refreshes - 1
        assert fcs.refresh_stats.hit_rate > 0.8

    def test_cache_hit_performs_no_tree_computation(self, stack):
        _, _, _, _, fcs = stack
        result_before = fcs.flat_result()
        values_before = fcs.values()
        hits_before = fcs.refresh_stats.hits
        fcs.refresh()
        assert fcs.refresh_stats.hits == hits_before + 1
        # the pre-computed state object is reused untouched
        assert fcs.flat_result() is result_before
        assert fcs.values() == values_before

    def test_usage_change_invalidates(self, stack):
        engine, uss, _, _, fcs = stack
        misses_before = fcs.refresh_stats.misses
        uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        engine.run_until(11.0)
        assert fcs.refresh_stats.misses > misses_before

    def test_policy_change_invalidates(self, stack):
        _, _, _, pds, fcs = stack
        misses_before = fcs.refresh_stats.misses
        pds.set_share("/carol", 10)
        fcs.refresh()
        assert fcs.refresh_stats.misses == misses_before + 1
        assert fcs.priority("carol") > fcs.priority("alice")

    def test_direct_policy_mutation_invalidates(self, stack):
        """Mutating the policy tree in place (as runtime_mount does) must be
        picked up by the next refresh even without a PDS version bump."""
        _, _, _, pds, fcs = stack
        pds.policy().set_share("/dave", 99)
        fcs.refresh()
        assert fcs.priority("dave") > fcs.priority("alice")

    def test_cache_hit_still_advances_timestamp(self, stack):
        engine, _, _, _, fcs = stack
        t0 = fcs.computed_at
        engine.run_until(11.0)
        assert fcs.computed_at > t0


class TestDuplicateLeafNames:
    @pytest.fixture
    def collision_stack(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network,
                                     histogram_interval=60.0, exchange_interval=5.0)
        ums = UsageMonitoringService("a", engine, sources=[uss],
                                     decay=NoDecay(), refresh_interval=5.0)
        policy = PolicyTree.from_dict({"p1": {"sam": 3}, "p2": {"sam": 1}})
        pds = PolicyDistributionService("a", engine, policy=policy,
                                        refresh_interval=100.0)
        fcs = FairshareCalculationService("a", engine, pds=pds, ums=ums,
                                          refresh_interval=5.0)
        return engine, uss, fcs

    def test_collision_counter_tracks_shadowed_names(self, collision_stack):
        _, _, fcs = collision_stack
        assert fcs.name_collisions == 1

    def test_full_paths_resolve_unambiguously(self, collision_stack):
        engine, uss, fcs = collision_stack
        uss.record_job(UsageRecord(user="/p1/sam", site="a", start=0.0, end=900.0))
        engine.run_until(11.0)
        # only p1's sam consumed: its priority must drop below p2's sam
        assert fcs.priority("/p1/sam") < fcs.priority("/p2/sam")
        assert fcs.fairshare_value("/p1/sam") != fcs.fairshare_value("/p2/sam")

    def test_bare_name_maps_to_first_preorder_leaf(self, collision_stack):
        _, _, fcs = collision_stack
        assert fcs.fairshare_value("sam") == fcs.fairshare_value("/p1/sam")

    def test_no_collisions_on_unique_names(self, stack):
        _, _, _, _, fcs = stack
        assert fcs.name_collisions == 0


class TestFreshnessHorizons:
    """The FCS inherits the UMS's refresh-time horizon set on every
    refresh — cached-epoch hits included — and exports the per-origin
    staleness distribution (the paper's Fig. 11, live)."""

    def remote_stack(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        local = UsageStatisticsService("a", engine, network,
                                       histogram_interval=60.0,
                                       exchange_interval=5.0)
        remote = UsageStatisticsService("b", engine, network,
                                        histogram_interval=60.0,
                                        exchange_interval=5.0)
        remote.add_peer("a")
        ums = UsageMonitoringService("a", engine, sources=[local],
                                     decay=NoDecay(), refresh_interval=5.0)
        policy = PolicyTree.from_dict({"alice": 3, "bob": 1})
        pds = PolicyDistributionService("a", engine, policy=policy,
                                        refresh_interval=100.0)
        fcs = FairshareCalculationService("a", engine, pds=pds, ums=ums,
                                          refresh_interval=5.0)
        return engine, remote, fcs

    def test_horizons_present_after_refresh(self, stack):
        engine, _, _, _, fcs = stack
        engine.run_until(11.0)
        assert fcs.usage_horizons()["a"] == pytest.approx(10.0)

    def test_cached_hit_still_advances_horizons(self, stack):
        """An idle site's refresh is a cache hit, but its horizon set must
        keep moving — freshness is about time, not about changed values."""
        engine, _, _, _, fcs = stack
        engine.run_until(26.0)
        assert fcs.refresh_stats.hits > 0
        assert fcs.usage_horizons()["a"] == pytest.approx(25.0)

    def test_remote_origin_tracked_through_chain(self):
        engine, remote, fcs = self.remote_stack()
        remote.record_job(UsageRecord(user="alice", site="b",
                                      start=0.0, end=700.0))
        engine.run_until(16.0)
        horizons = fcs.usage_horizons()
        assert "b" in horizons
        # USS received b's t=10 publish at 10.1; UMS captured it at 15;
        # FCS inherited that capture at its own t=15 refresh
        assert horizons["b"] == pytest.approx(10.0)
        # and the usage actually reached the served values
        assert fcs.fairshare_value("alice") < fcs.fairshare_value("bob")

    def test_staleness_histogram_exported(self):
        from repro.obs.export import render

        engine, remote, fcs = self.remote_stack()
        remote.record_job(UsageRecord(user="alice", site="b",
                                      start=0.0, end=700.0))
        engine.run_until(30.0)
        text = render(fcs.registry)
        assert "aequus_snapshot_staleness_seconds" in text
        assert 'origin="b"' in text

    def test_stub_ums_without_horizons_is_tolerated(self):
        """Benchmark harnesses drive the FCS with minimal UMS stubs; the
        horizon capture must degrade to an empty set, not crash."""
        engine = SimulationEngine()

        class StubUMS:
            def usage_totals(self):
                return {"alice": 10.0}

        policy = PolicyTree.from_dict({"alice": 1})
        pds = PolicyDistributionService("a", engine, policy=policy,
                                        refresh_interval=100.0)
        fcs = FairshareCalculationService("a", engine, pds=pds,
                                          ums=StubUMS(),
                                          refresh_interval=5.0)
        assert fcs.usage_horizons() == {}
