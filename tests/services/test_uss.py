"""Unit tests for the Usage Statistics Service (USS)."""

import pytest

from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, base_latency=0.1)


def make_uss(name, engine, network, **kwargs):
    return UsageStatisticsService(name, engine, network,
                                  histogram_interval=60.0,
                                  exchange_interval=10.0, **kwargs)


def record(user="u", site="s", start=0.0, end=60.0):
    return UsageRecord(user=user, site=site, start=start, end=end)


class TestLocalRecording:
    def test_record_job_lands_in_histogram(self, engine, network):
        uss = make_uss("a", engine, network)
        uss.record_job(record(end=120.0))
        assert uss.local.total("u") == pytest.approx(120.0)
        assert uss.records_received == 1


class TestExchange:
    def test_peers_receive_snapshots(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        assert "a" in b.remote
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_snapshot_is_full_state_idempotent(self, engine, network):
        """Repeated exchanges must not double-count usage."""
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(55.0)  # several exchange rounds
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_non_publishing_site_sends_nothing(self, engine, network):
        a = make_uss("a", engine, network, publish=False)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote

    def test_global_usage_merges_local_and_remote(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        a.record_job(record(user="u", end=50.0))
        b.record_job(record(user="u", end=70.0))
        engine.run_until(15.0)
        merged = a.global_usage()
        assert merged.total("u") == pytest.approx(120.0)

    def test_global_usage_local_only_view(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        b.record_job(record(user="u", end=70.0))
        engine.run_until(15.0)
        assert a.global_usage(include_remote=False).total("u") == 0.0

    def test_interval_mismatch_dropped(self, engine, network):
        a = make_uss("a", engine, network)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=30.0,
                                   exchange_interval=10.0)
        a.add_peer("b")
        a.record_job(record())
        engine.run_until(15.0)
        assert "a" not in b.remote

    def test_self_peering_rejected(self, engine, network):
        a = make_uss("a", engine, network)
        with pytest.raises(ValueError):
            a.add_peer("a")

    def test_known_sites(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        b.add_peer("a")
        b.record_job(record())
        engine.run_until(15.0)
        assert a.known_sites() == ["a", "b"]

    def test_stop_halts_exchange(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.stop()
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote

    def test_partition_isolates_sites(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        network.partition("uss:a", "uss:b")
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote
