"""Unit tests for the Usage Statistics Service (USS)."""

import pytest

from repro.core.usage import UsageRecord
from repro.services.messages import (UsageDeltaMessage, UsageExchangeMessage,
                                     UsageResyncRequest)
from repro.services.network import Network
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, base_latency=0.1)


def make_uss(name, engine, network, **kwargs):
    return UsageStatisticsService(name, engine, network,
                                  histogram_interval=60.0,
                                  exchange_interval=10.0, **kwargs)


def record(user="u", site="s", start=0.0, end=60.0):
    return UsageRecord(user=user, site=site, start=start, end=end)


class TestLocalRecording:
    def test_record_job_lands_in_histogram(self, engine, network):
        uss = make_uss("a", engine, network)
        uss.record_job(record(end=120.0))
        assert uss.local.total("u") == pytest.approx(120.0)
        assert uss.records_received == 1


class TestExchange:
    def test_peers_receive_snapshots(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        assert "a" in b.remote
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_snapshot_is_full_state_idempotent(self, engine, network):
        """Repeated exchanges must not double-count usage."""
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(55.0)  # several exchange rounds
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_non_publishing_site_sends_nothing(self, engine, network):
        a = make_uss("a", engine, network, publish=False)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote

    def test_global_usage_merges_local_and_remote(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        a.record_job(record(user="u", end=50.0))
        b.record_job(record(user="u", end=70.0))
        engine.run_until(15.0)
        merged = a.global_usage()
        assert merged.total("u") == pytest.approx(120.0)

    def test_global_usage_local_only_view(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        b.record_job(record(user="u", end=70.0))
        engine.run_until(15.0)
        assert a.global_usage(include_remote=False).total("u") == 0.0

    def test_interval_mismatch_dropped(self, engine, network):
        a = make_uss("a", engine, network)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=30.0,
                                   exchange_interval=10.0)
        a.add_peer("b")
        a.record_job(record())
        engine.run_until(15.0)
        assert "a" not in b.remote

    def test_self_peering_rejected(self, engine, network):
        a = make_uss("a", engine, network)
        with pytest.raises(ValueError):
            a.add_peer("a")

    def test_known_sites(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        b.add_peer("a")
        b.record_job(record())
        engine.run_until(15.0)
        assert a.known_sites() == ["a", "b"]

    def test_stop_halts_exchange(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.stop()
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote

    def test_partition_isolates_sites(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        network.partition("uss:a", "uss:b")
        a.record_job(record())
        engine.run_until(30.0)
        assert "a" not in b.remote


class TestDeltaProtocol:
    def test_first_publish_is_full_snapshot(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        assert b._recv_seq["a"] == 1
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_idle_ticks_send_heartbeats_not_data(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(55.0)  # one full publish, then idle ticks
        assert a.exchanges_skipped >= 3
        # heartbeats neither advance nor disturb the receiver
        assert b.exchanges_received == 1
        assert b.exchanges_stale == 0
        assert b._recv_seq["a"] == 1
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_subsequent_changes_ship_as_deltas(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        a.record_job(record(user="bob", start=20.0, end=50.0))
        engine.run_until(25.0)
        assert b._recv_seq["a"] == 2
        assert b.remote["a"].total("bob") == pytest.approx(30.0)
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_stale_delta_dropped_and_counted(self, engine, network):
        """Satellite: a reordered in-flight message older than the last
        applied one must be discarded, not applied as a rollback."""
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        a.record_job(record(user="alice", start=20.0, end=50.0))
        engine.run_until(25.0)
        assert b._recv_seq["a"] == 2
        total = b.remote["a"].total("alice")
        # a delayed duplicate of seq=2 arrives after it was already applied
        stale = UsageDeltaMessage(
            site="a", sent_at=20.0, interval=60.0, seq=2, full=False,
            user_table=["alice"], user_idx=[0], bin_idx=[0], charges=[1.0])
        b._on_message(stale)
        assert b.exchanges_stale == 1
        assert b.remote["a"].total("alice") == pytest.approx(total)

    def test_stale_full_snapshot_dropped_and_counted(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(25.0)
        stale = UsageDeltaMessage(
            site="a", sent_at=5.0, interval=60.0, seq=0, full=True)
        b._on_message(stale)
        assert b.exchanges_stale == 1
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_legacy_snapshot_reordering_dropped_by_sent_at(self, engine, network):
        """Satellite: the legacy dict-of-dict path gates on sent_at."""
        b = make_uss("b", engine, network)
        newer = UsageExchangeMessage(site="a", sent_at=10.0, interval=60.0,
                                     snapshot={"u": {0: 60.0}})
        older = UsageExchangeMessage(site="a", sent_at=5.0, interval=60.0,
                                     snapshot={"u": {0: 1.0}})
        b._on_message(newer)
        b._on_message(older)
        assert b.exchanges_stale == 1
        assert b.remote["a"].total("u") == pytest.approx(60.0)

    def test_sequence_gap_triggers_resync(self, engine, network):
        """A delta lost to a partition is repaired by request/reply resync
        once the link heals — even if the sender has gone idle since."""
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        network.partition("uss:a", "uss:b")
        a.record_job(record(user="alice", start=100.0, end=500.0))
        engine.run_until(25.0)  # delta seq=2 dropped at send
        assert b.remote["a"].total("alice") == pytest.approx(100.0)
        network.heal("uss:a", "uss:b")
        engine.run_until(45.0)  # heartbeat exposes the gap -> resync
        assert b.resyncs_requested >= 1
        assert a.resyncs_served >= 1
        assert b.remote["a"].total("alice") == pytest.approx(500.0)

    def test_late_joiner_catches_up_via_resync(self, engine, network):
        a = make_uss("a", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(25.0)  # publishes dropped: b does not exist yet
        b = make_uss("b", engine, network)
        engine.run_until(55.0)
        assert b.resyncs_requested >= 1
        assert b.remote["a"].total("alice") == pytest.approx(100.0)

    def test_pruned_bin_propagates_as_deletion(self, engine, network):
        a = make_uss("a", engine, network, prune_horizon=100.0)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="old", end=60.0))
        engine.run_until(15.0)
        assert b.remote["a"].total("old") == pytest.approx(60.0)
        # once bin 0 ages past the horizon, the prune is itself a change
        # and the next delta deletes it at every peer
        engine.run_until(200.0)
        assert a.local.total("old") == 0.0
        assert b.remote["a"].total("old") == 0.0

    def test_resync_request_wire_shape(self):
        req = UsageResyncRequest(site="b", sent_at=1.0, target="a")
        assert req.target == "a"

    def test_legacy_mode_still_full_snapshots(self, engine, network):
        a = make_uss("a", engine, network, delta_exchange=False)
        inbox = []
        network.connect("uss:b", inbox.append)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(25.0)
        assert inbox and all(isinstance(m, UsageExchangeMessage)
                             for m in inbox)
        assert inbox[-1].snapshot["alice"][0] == pytest.approx(60.0)

    def test_mixed_modes_interoperate(self, engine, network):
        """A legacy publisher's snapshots are understood by a delta peer."""
        a = make_uss("a", engine, network, delta_exchange=False)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(25.0)
        assert b.remote["a"].total("alice") == pytest.approx(100.0)


class TestFreshnessWatermarks:
    """Per-origin usage horizons (DESIGN.md §10): advance with applied
    deltas and current-seq heartbeats, stall across partitions."""

    def pair(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        return a, b

    def test_local_horizon_is_now(self, engine, network):
        a = make_uss("a", engine, network)
        engine.run_until(42.0)
        assert a.usage_horizons() == {"a": 42.0}
        assert a.usage_staleness() == {"a": 0.0}

    def test_delta_advances_remote_horizon(self, engine, network):
        a, b = self.pair(engine, network)
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(11.0)
        # a's t=10 delta (stamped horizon=10.0) arrived at 10.1
        assert b.usage_horizons()["a"] == pytest.approx(10.0)
        assert b.usage_staleness()["a"] == pytest.approx(1.0)

    def test_heartbeats_keep_idle_horizon_advancing(self, engine, network):
        a, b = self.pair(engine, network)
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(51.0)
        # a went idle after t=10, but its heartbeats carry fresh horizons:
        # b's watermark follows the t=50 heartbeat, not the last delta
        assert b.usage_horizons()["a"] == pytest.approx(50.0)

    def test_horizon_stalls_across_partition(self, engine, network):
        a, b = self.pair(engine, network)
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        network.partition("uss:a", "uss:b")
        a.record_job(record(user="alice", start=100.0, end=200.0))
        engine.run_until(45.0)
        # nothing got through: the horizon is frozen at the last delivery
        assert b.usage_horizons()["a"] == pytest.approx(10.0)
        assert b.usage_staleness()["a"] == pytest.approx(35.0)

    def test_resync_restores_horizon_after_heal(self, engine, network):
        a, b = self.pair(engine, network)
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(15.0)
        network.partition("uss:a", "uss:b")
        a.record_job(record(user="alice", start=100.0, end=200.0))
        engine.run_until(35.0)  # the seq=3 delta is lost
        network.heal("uss:a", "uss:b")
        engine.run_until(55.0)  # heartbeat exposes the gap -> full resync
        assert b.resyncs_requested >= 1
        # the resync reply is a fresh full snapshot: horizon jumps forward
        assert b.usage_horizons()["a"] >= 40.0
        assert b.remote["a"].total("alice") == pytest.approx(200.0)

    def test_gap_does_not_advance_horizon(self, engine, network):
        """A message that is *not applied* must not move the watermark."""
        b = make_uss("b", engine, network)
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=0.0, interval=60.0, seq=1, full=True,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[10.0],
            horizon=5.0))
        assert b.usage_horizons()["a"] == pytest.approx(5.0)
        # seq jumps 1 -> 5: gap detected, delta rejected, resync requested
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=20.0, interval=60.0, seq=5, full=False,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[99.0],
            horizon=20.0))
        assert b.usage_horizons()["a"] == pytest.approx(5.0)
        assert b.resyncs_requested == 1

    def test_legacy_full_snapshots_carry_horizons(self, engine, network):
        a = make_uss("a", engine, network, delta_exchange=False)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(11.0)
        assert b.usage_horizons()["a"] == pytest.approx(10.0)

    def test_staleness_histogram_exported(self, engine, network):
        from repro.obs.export import render

        a, b = self.pair(engine, network)
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(25.0)
        text = render(b.registry)
        assert "aequus_usage_staleness_seconds" in text
        assert 'origin="a"' in text


class TestDaemonRestartResync:
    """A USS that restarts loses its sequence space; peers must repair via
    resync instead of silently stale-dropping every post-restart exchange."""

    def test_restarted_peer_full_snapshot_accepted(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(2.0)   # t=0 tick: full seq=1 delivered
        a.record_job(record(user="alice", start=100.0, end=400.0))
        engine.run_until(12.0)  # t=10 tick: delta seq=2 delivered
        assert b._recv_seq["a"] == 2
        # "a" restarts: new instance, fresh seq space, reset clock histogram
        a.stop()
        a2 = make_uss("a", engine, network)
        a2.add_peer("b")
        a2.record_job(record(user="alice", end=50.0))
        engine.run_until(22.0)  # restarted a's first publish: full seq=1
        # without boot-id detection this full (seq=1 < last=2) was dropped
        assert b.peer_restarts == 1
        assert b._recv_seq["a"] == 1
        assert b.remote["a"].total("alice") == pytest.approx(50.0)
        assert b.exchanges_stale == 0

    def test_restarted_peer_delta_triggers_resync(self, engine, network):
        b = make_uss("b", engine, network)
        # first incarnation: full seq=1 then delta seq=2, both applied
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=5.0, interval=60.0, seq=1, full=True,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[10.0],
            boot="boot-1"))
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=15.0, interval=60.0, seq=2, full=False,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[20.0],
            boot="boot-1"))
        assert b._recv_seq["a"] == 2
        # second incarnation announces itself with a non-full delta whose
        # seq would read as stale against the dead incarnation's cursor
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=1.0, interval=60.0, seq=2, full=False,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[7.0],
            boot="boot-2"))
        assert b.peer_restarts == 1
        # not applied (gap from the fresh cursor), resync requested instead
        assert b.remote["a"].total("u") == pytest.approx(20.0)
        assert b.resyncs_requested == 1
        assert b.exchanges_stale == 0

    def test_restart_resync_round_trip_repairs_state(self, engine, network):
        a = make_uss("a", engine, network)
        b = make_uss("b", engine, network)
        a.add_peer("b")
        b.add_peer("a")
        a.record_job(record(user="alice", end=100.0))
        engine.run_until(12.0)
        assert b.remote["a"].total("alice") == pytest.approx(100.0)
        a.stop()
        a2 = make_uss("a", engine, network)
        a2.add_peer("b")
        # advance past the first tick (full seq=1, applied via boot change),
        # then let a2 churn and heartbeat so the protocol keeps flowing
        a2.record_job(record(user="bob", end=30.0))
        engine.run_until(42.0)
        # b's copy of "a" is exactly the new incarnation's state: the old
        # alice usage is gone (full snapshots drop unlisted entries)
        assert b.remote["a"].total("bob") == pytest.approx(30.0)
        assert b.remote["a"].total("alice") == pytest.approx(0.0)
        # and the restarted site pulled b's state the normal late-join way
        assert a2.known_sites() == ["a", "b"]

    def test_same_incarnation_stale_drops_still_work(self, engine, network):
        b = make_uss("b", engine, network)
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=5.0, interval=60.0, seq=1, full=True,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[10.0],
            boot="boot-1"))
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=15.0, interval=60.0, seq=2, full=False,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[20.0],
            boot="boot-1"))
        # reordered duplicate from the SAME incarnation: still stale-dropped
        b._on_message(UsageDeltaMessage(
            site="a", sent_at=10.0, interval=60.0, seq=2, full=False,
            user_table=["u"], user_idx=[0], bin_idx=[0], charges=[15.0],
            boot="boot-1"))
        assert b.exchanges_stale == 1
        assert b.peer_restarts == 0
        assert b.remote["a"].total("u") == pytest.approx(20.0)

    def test_stop_disconnects_endpoint(self, engine, network):
        a = make_uss("a", engine, network)
        assert "uss:a" in network.endpoints()
        a.stop()
        assert "uss:a" not in network.endpoints()
        a.stop()  # idempotent
