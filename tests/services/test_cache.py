"""Unit tests for the TTL cache (services + libaequus caching)."""

import pytest

from repro.services.cache import TTLCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestTTLCache:
    def test_first_lookup_is_miss(self, clock):
        cache = TTLCache(clock, ttl=10.0)
        assert cache.get("k", lambda: 42) == 42
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_within_ttl_is_hit(self, clock):
        cache = TTLCache(clock, ttl=10.0)
        cache.get("k", lambda: 1)
        clock.now = 9.9
        assert cache.get("k", lambda: 2) == 1
        assert cache.stats.hits == 1

    def test_after_ttl_reloads(self, clock):
        cache = TTLCache(clock, ttl=10.0)
        cache.get("k", lambda: 1)
        clock.now = 10.0
        assert cache.get("k", lambda: 2) == 2
        assert cache.stats.misses == 2

    def test_zero_ttl_disables_caching(self, clock):
        cache = TTLCache(clock, ttl=0.0)
        cache.get("k", lambda: 1)
        assert cache.get("k", lambda: 2) == 2
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_negative_ttl_rejected(self, clock):
        with pytest.raises(ValueError):
            TTLCache(clock, ttl=-1.0)

    def test_invalidate_forces_reload(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        cache.get("k", lambda: 1)
        cache.invalidate("k")
        assert cache.get("k", lambda: 2) == 2

    def test_clear(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.clear()
        assert len(cache) == 0

    def test_peek_does_not_touch_stats(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        cache.get("k", lambda: 1)
        misses = cache.stats.misses
        assert cache.peek("k") == 1
        assert cache.peek("missing") is None
        assert cache.stats.misses == misses

    def test_independent_keys(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        assert cache.get("a", lambda: 1) == 1
        assert cache.get("b", lambda: 2) == 2

    def test_hit_rate(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        cache.get("k", lambda: 1)
        cache.get("k", lambda: 1)
        cache.get("k", lambda: 1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty_is_zero(self, clock):
        assert TTLCache(clock, ttl=1.0).stats.hit_rate == 0.0


class TestTTLCacheEdgeCases:
    """Boundary semantics the services and libaequus depend on."""

    def test_expiry_exactly_at_the_boundary_is_a_miss(self, clock):
        # the contract is age < ttl, not <=: an entry exactly ttl old is
        # stale (delay-source analysis counts the full cache time as lag)
        cache = TTLCache(clock, ttl=10.0)
        cache.get("k", lambda: 1)
        clock.now = 10.0
        assert cache.get("k", lambda: 2) == 2
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_just_inside_the_boundary_is_a_hit(self, clock):
        cache = TTLCache(clock, ttl=10.0)
        cache.get("k", lambda: 1)
        clock.now = 10.0 - 1e-9
        assert cache.get("k", lambda: 2) == 1
        assert cache.stats.hits == 1

    def test_zero_ttl_still_counts_every_lookup(self, clock):
        cache = TTLCache(clock, ttl=0.0)
        for i in range(5):
            cache.get("k", lambda: i)
        assert cache.stats.lookups == 5
        assert cache.stats.hits == 0
        assert cache.stats.hit_rate == 0.0
        assert len(cache) == 0  # nothing is ever stored

    def test_negative_zero_ttl_behaves_like_zero(self, clock):
        cache = TTLCache(clock, ttl=-0.0)
        assert cache.ttl == 0.0
        cache.get("k", lambda: 1)
        assert cache.get("k", lambda: 2) == 2

    def test_negative_ttl_rejected_even_when_tiny(self, clock):
        with pytest.raises(ValueError):
            TTLCache(clock, ttl=-1e-12)

    def test_stats_survive_clear(self, clock):
        # clear() empties entries but keeps the counters: operators read
        # cumulative hit rates across cache resets
        cache = TTLCache(clock, ttl=100.0)
        cache.get("a", lambda: 1)
        cache.get("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        # and the next lookup after a clear is a fresh miss
        assert cache.get("a", lambda: 2) == 2
        assert cache.stats.misses == 2

    def test_invalidate_missing_key_is_a_noop(self, clock):
        cache = TTLCache(clock, ttl=100.0)
        cache.invalidate("never-stored")
        assert len(cache) == 0
