"""Unit tests for the service message payloads."""

from repro.core.policy import parse_policy
from repro.services.messages import PolicyExportMessage, UsageExchangeMessage


class TestUsageExchangeMessage:
    def test_total_charge(self):
        msg = UsageExchangeMessage(
            site="a", sent_at=0.0, interval=60.0,
            snapshot={"u1": {0: 10.0, 1: 20.0}, "u2": {0: 5.0}})
        assert msg.total_charge() == 35.0

    def test_empty_snapshot(self):
        msg = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                   snapshot={})
        assert msg.total_charge() == 0.0

    def test_frozen(self):
        msg = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                   snapshot={})
        try:
            msg.site = "b"
            assert False, "should be immutable"
        except AttributeError:
            pass


class TestPolicyExportMessage:
    def test_text_roundtrips_through_parser(self):
        msg = PolicyExportMessage(source="pds", sent_at=1.0,
                                  lines=["/g = 2", "/g/u = 3"])
        tree = parse_policy(msg.text())
        assert tree["/g/u"].weight == 3.0

    def test_empty_lines(self):
        msg = PolicyExportMessage(source="pds", sent_at=1.0)
        assert msg.text() == ""
        assert parse_policy(msg.text()).size() == 1
