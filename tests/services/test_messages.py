"""Unit tests for the service message payloads."""

from repro.core.policy import parse_policy
from repro.services.messages import (PolicyExportMessage, UsageDeltaMessage,
                                     UsageExchangeMessage, UsageResyncRequest)


class TestUsageExchangeMessage:
    def test_total_charge(self):
        msg = UsageExchangeMessage(
            site="a", sent_at=0.0, interval=60.0,
            snapshot={"u1": {0: 10.0, 1: 20.0}, "u2": {0: 5.0}})
        assert msg.total_charge() == 35.0

    def test_empty_snapshot(self):
        msg = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                   snapshot={})
        assert msg.total_charge() == 0.0

    def test_frozen(self):
        msg = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                   snapshot={})
        try:
            msg.site = "b"
            assert False, "should be immutable"
        except AttributeError:
            pass


class TestUsageExchangeWireAccounting:
    def test_wire_entries_counts_bins(self):
        msg = UsageExchangeMessage(
            site="a", sent_at=0.0, interval=60.0,
            snapshot={"u1": {0: 10.0, 1: 20.0}, "u2": {0: 5.0}})
        assert msg.wire_entries() == 3

    def test_wire_bytes_grow_with_payload(self):
        small = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                     snapshot={"u": {0: 1.0}})
        big = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                   snapshot={"u": {b: 1.0 for b in range(10)}})
        assert small.wire_bytes() < big.wire_bytes()


class TestUsageDeltaMessage:
    def delta(self, **kwargs):
        base = dict(site="a", sent_at=1.0, interval=60.0, seq=3, full=False,
                    user_table=["alice", "bob"], user_idx=[0, 0, 1],
                    bin_idx=[0, 1, 0], charges=[10.0, 20.0, 5.0])
        base.update(kwargs)
        return UsageDeltaMessage(**base)

    def test_total_charge(self):
        assert self.delta().total_charge() == 35.0

    def test_wire_entries(self):
        assert self.delta().wire_entries() == 3

    def test_heartbeat_is_tiny(self):
        hb = self.delta(user_table=[], user_idx=[], bin_idx=[], charges=[])
        assert hb.wire_entries() == 0
        assert hb.wire_bytes() < 50

    def test_array_format_more_compact_than_dicts_at_equal_content(self):
        """Packed arrays skip the per-map-entry framing that dict-of-dict
        serializations pay, so at identical content the array form is
        strictly smaller."""
        snapshot = {f"grid-user-{u:04d}": {b: float(b) for b in range(4)}
                    for u in range(50)}
        legacy = UsageExchangeMessage(site="a", sent_at=0.0, interval=60.0,
                                      snapshot=snapshot)
        user_table = list(snapshot)
        user_idx, bin_idx, charges = [], [], []
        for i, bins in enumerate(snapshot.values()):
            for b, c in bins.items():
                user_idx.append(i)
                bin_idx.append(b)
                charges.append(c)
        arrays = UsageDeltaMessage(
            site="a", sent_at=0.0, interval=60.0, seq=1, full=True,
            user_table=user_table, user_idx=user_idx, bin_idx=bin_idx,
            charges=charges)
        assert arrays.wire_entries() == legacy.wire_entries()
        assert arrays.wire_bytes() < legacy.wire_bytes()


class TestUsageResyncRequest:
    def test_carries_no_entries(self):
        req = UsageResyncRequest(site="b", sent_at=2.0, target="a")
        assert req.wire_entries() == 0
        assert req.wire_bytes() > 0


class TestPolicyExportMessage:
    def test_text_roundtrips_through_parser(self):
        msg = PolicyExportMessage(source="pds", sent_at=1.0,
                                  lines=["/g = 2", "/g/u = 3"])
        tree = parse_policy(msg.text())
        assert tree["/g/u"].weight == 3.0

    def test_empty_lines(self):
        msg = PolicyExportMessage(source="pds", sent_at=1.0)
        assert msg.text() == ""
        assert parse_policy(msg.text()).size() == 1
