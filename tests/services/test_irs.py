"""Unit tests for the Identity Resolution Service and its JSON protocol."""

import json

import pytest

from repro.services.irs import (
    IdentityResolutionError,
    IdentityResolutionService,
    table_endpoint,
)


class TestLookupTable:
    def test_store_and_resolve(self):
        irs = IdentityResolutionService("site")
        irs.store_mapping("alice", "/C=SE/CN=alice")
        assert irs.resolve("alice") == "/C=SE/CN=alice"
        assert irs.table_hits == 1

    def test_unknown_without_endpoint_raises(self):
        irs = IdentityResolutionService("site")
        with pytest.raises(IdentityResolutionError):
            irs.resolve("ghost")

    def test_known_users_snapshot(self):
        irs = IdentityResolutionService("site")
        irs.store_mapping("a", "A")
        assert irs.known_users() == {"a": "A"}


class TestJsonEndpoint:
    def test_endpoint_called_with_json_protocol(self):
        requests = []

        def endpoint(request: str) -> str:
            requests.append(json.loads(request))
            return json.dumps({"grid_identity": "/CN=bob"})

        irs = IdentityResolutionService("site", endpoint=endpoint)
        assert irs.resolve("bob") == "/CN=bob"
        assert requests == [{"query": "resolve", "system_user": "bob"}]
        assert irs.endpoint_calls == 1

    def test_endpoint_result_memoized(self):
        calls = []

        def endpoint(request: str) -> str:
            calls.append(request)
            return json.dumps({"grid_identity": "/CN=bob"})

        irs = IdentityResolutionService("site", endpoint=endpoint)
        irs.resolve("bob")
        irs.resolve("bob")
        assert len(calls) == 1
        assert irs.table_hits == 1

    def test_endpoint_error_response(self):
        irs = IdentityResolutionService(
            "site", endpoint=lambda req: json.dumps({"error": "unknown user"}))
        with pytest.raises(IdentityResolutionError):
            irs.resolve("ghost")

    def test_endpoint_invalid_json(self):
        irs = IdentityResolutionService("site", endpoint=lambda req: "not json")
        with pytest.raises(IdentityResolutionError):
            irs.resolve("x")

    def test_table_checked_before_endpoint(self):
        irs = IdentityResolutionService(
            "site", endpoint=lambda req: json.dumps({"grid_identity": "/CN=wrong"}))
        irs.store_mapping("alice", "/CN=right")
        assert irs.resolve("alice") == "/CN=right"
        assert irs.endpoint_calls == 0

    def test_set_endpoint_later(self):
        irs = IdentityResolutionService("site")
        irs.set_endpoint(table_endpoint({"u": "/CN=u"}))
        assert irs.resolve("u") == "/CN=u"


class TestTableEndpoint:
    def test_resolves_known_user(self):
        ep = table_endpoint({"alice": "/CN=alice"})
        response = json.loads(ep(json.dumps(
            {"query": "resolve", "system_user": "alice"})))
        assert response == {"grid_identity": "/CN=alice"}

    def test_unknown_user_error(self):
        ep = table_endpoint({})
        response = json.loads(ep(json.dumps(
            {"query": "resolve", "system_user": "x"})))
        assert "error" in response

    def test_malformed_request(self):
        ep = table_endpoint({})
        assert "error" in json.loads(ep("{{{"))

    def test_unsupported_query(self):
        ep = table_endpoint({})
        response = json.loads(ep(json.dumps({"query": "delete_everything"})))
        assert "error" in response
