"""Unit tests for the Usage Monitoring Service (UMS)."""

import pytest

from repro.core.decay import ExponentialDecay, LinearDecay, NoDecay
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def uss(engine):
    network = Network(engine, base_latency=0.1)
    return UsageStatisticsService("a", engine, network,
                                  histogram_interval=60.0,
                                  exchange_interval=10.0)


def make_ums(engine, uss, **kwargs):
    kwargs.setdefault("decay", NoDecay())
    kwargs.setdefault("refresh_interval", 10.0)
    return UsageMonitoringService("a", engine, sources=[uss], **kwargs)


class TestRefresh:
    def test_initial_refresh_at_construction(self, engine, uss):
        ums = make_ums(engine, uss)
        assert ums.refreshes == 1
        assert ums.usage_totals() == {}

    def test_totals_appear_after_refresh(self, engine, uss):
        ums = make_ums(engine, uss)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=100.0))
        assert ums.usage_totals() == {}  # not refreshed yet
        engine.run_until(10.0)
        assert ums.usage_totals()["u"] == pytest.approx(100.0)

    def test_serves_precomputed_state(self, engine, uss):
        """Queries between refreshes return the stale pre-computed value —
        the FCS/UMS cache time is delay source II."""
        ums = make_ums(engine, uss)
        engine.run_until(10.0)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=50.0))
        assert ums.usage_totals() == {}  # still the old snapshot
        engine.run_until(20.0)
        assert ums.usage_totals()["u"] == pytest.approx(50.0)

    def test_computed_at_tracks_refresh_time(self, engine, uss):
        ums = make_ums(engine, uss)
        engine.run_until(25.0)
        assert ums.computed_at == pytest.approx(20.0)

    def test_requires_a_source(self, engine):
        with pytest.raises(ValueError):
            UsageMonitoringService("a", engine, sources=[])

    def test_stop_halts_refresh(self, engine, uss):
        ums = make_ums(engine, uss)
        ums.stop()
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=50.0))
        engine.run_until(100.0)
        assert ums.usage_totals() == {}


class TestRemoteConsideration:
    def test_consider_remote_false_ignores_remote_usage(self, engine):
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=60.0, exchange_interval=5.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=60.0, exchange_interval=5.0)
        a.add_peer("b")
        b.add_peer("a")
        b.record_job(UsageRecord(user="u", site="b", start=0.0, end=80.0))
        ums_global = UsageMonitoringService("a", engine, sources=[a],
                                            decay=NoDecay(), refresh_interval=5.0,
                                            consider_remote=True)
        ums_local = UsageMonitoringService("a", engine, sources=[a],
                                           decay=NoDecay(), refresh_interval=5.0,
                                           consider_remote=False)
        engine.run_until(20.0)
        assert ums_global.usage_totals().get("u", 0.0) == pytest.approx(80.0)
        assert ums_local.usage_totals().get("u", 0.0) == 0.0


class TestUsageTree:
    def test_usage_tree_shaped_by_policy(self, engine, uss):
        ums = make_ums(engine, uss)
        uss.record_job(UsageRecord(user="u1", site="a", start=0.0, end=30.0))
        engine.run_until(10.0)
        policy = PolicyTree.from_dict({"g": (1, {"u1": 1, "u2": 1})})
        tree = ums.usage_tree(policy)
        assert tree["/g/u1"].usage == pytest.approx(30.0)
        assert tree["/g"].usage == pytest.approx(30.0)

    def test_multiple_sources_summed(self, engine):
        network = Network(engine, base_latency=0.1)
        u1 = UsageStatisticsService("a1", engine, network,
                                    histogram_interval=60.0, exchange_interval=5.0)
        u2 = UsageStatisticsService("a2", engine, network,
                                    histogram_interval=60.0, exchange_interval=5.0)
        u1.record_job(UsageRecord(user="u", site="a1", start=0.0, end=10.0))
        u2.record_job(UsageRecord(user="u", site="a2", start=0.0, end=20.0))
        ums = UsageMonitoringService("a", engine, sources=[u1, u2],
                                     decay=NoDecay(), refresh_interval=5.0)
        engine.run_until(5.0)
        assert ums.usage_totals()["u"] == pytest.approx(30.0)


class TestIncrementalRefresh:
    """The dirty-user incremental path must be indistinguishable from the
    full merge-and-decay reference (DESIGN.md §7)."""

    def paired(self, engine, uss, decay):
        inc = UsageMonitoringService("a", engine, sources=[uss], decay=decay,
                                     refresh_interval=10.0, incremental=True)
        ref = UsageMonitoringService("a", engine, sources=[uss], decay=decay,
                                     refresh_interval=10.0, incremental=False)
        return inc, ref

    def assert_match(self, inc, ref):
        ref_totals = ref.usage_totals()
        inc_totals = inc.usage_totals()
        for user in set(ref_totals) | set(inc_totals):
            assert inc_totals.get(user, 0.0) == pytest.approx(
                ref_totals.get(user, 0.0), rel=1e-9, abs=1e-9), user

    def test_matches_full_recompute_across_refreshes(self, engine, uss):
        inc, ref = self.paired(engine, uss,
                               ExponentialDecay(half_life=3600.0))
        uss.record_job(UsageRecord(user="u1", site="a", start=0.0, end=100.0))
        engine.run_until(10.0)
        self.assert_match(inc, ref)
        uss.record_job(UsageRecord(user="u2", site="a", start=10.0, end=15.0))
        engine.run_until(20.0)
        self.assert_match(inc, ref)
        # several idle refreshes: clean users age-shift analytically
        engine.run_until(60.0)
        assert inc.full_refreshes < inc.refreshes
        self.assert_match(inc, ref)

    def test_only_dirty_users_recomputed(self, engine, uss):
        ums = make_ums(engine, uss, decay=ExponentialDecay(half_life=3600.0))
        for u in range(5):
            uss.record_job(UsageRecord(user=f"u{u}", site="a",
                                       start=0.0, end=30.0))
        engine.run_until(10.0)   # priming covers all 5 (full path)
        engine.run_until(40.0)   # young users settle
        before = ums.users_recomputed
        uss.record_job(UsageRecord(user="u3", site="a", start=40.0, end=45.0))
        engine.run_until(50.0)
        assert ums.users_recomputed == before + 1

    def test_pruned_user_dropped_from_totals(self, engine):
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network,
                                     histogram_interval=60.0,
                                     exchange_interval=10.0,
                                     prune_horizon=100.0)
        uss.add_peer("nowhere")  # exchanges (and prunes) still tick
        ums = make_ums(engine, uss, decay=ExponentialDecay(half_life=3600.0))
        uss.record_job(UsageRecord(user="old", site="a", start=0.0, end=60.0))
        engine.run_until(20.0)
        assert "old" in ums.usage_totals()
        engine.run_until(250.0)  # bin 0 ages out past the horizon
        assert uss.local.total("old") == 0.0
        assert "old" not in ums.usage_totals()

    def test_non_multiplicative_decay_falls_back_to_full(self, engine, uss):
        ums = make_ums(engine, uss, decay=LinearDecay(window=3600.0))
        assert not ums.incremental
        engine.run_until(40.0)
        assert ums.full_refreshes == ums.refreshes

    def test_incremental_false_is_pure_reference(self, engine, uss):
        ums = make_ums(engine, uss, decay=ExponentialDecay(half_life=3600.0),
                       incremental=False)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=50.0))
        engine.run_until(40.0)
        assert ums.full_refreshes == ums.refreshes

    def test_young_user_stays_exact(self, engine, uss):
        """A job whose bin midpoint lies beyond ``now`` would break the
        analytic age shift (ages clamp at 0); the user must be recomputed
        until the midpoint passes — and totals must match throughout."""
        inc, ref = self.paired(engine, uss,
                               ExponentialDecay(half_life=600.0))
        # bin 0 covers [0, 60): its midpoint (30) is ahead of the first
        # refreshes at t=10 and t=20
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=5.0))
        for t in (10.0, 20.0, 30.0, 40.0, 50.0):
            engine.run_until(t)
            self.assert_match(inc, ref)

    def test_stop_releases_cursors(self, engine, uss):
        ums = make_ums(engine, uss, decay=ExponentialDecay(half_life=3600.0))
        assert uss._usage_cursors
        ums.stop()
        assert not uss._usage_cursors

    def test_remote_updates_mark_users_dirty(self, engine):
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=5.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=5.0)
        b.add_peer("a")
        ums = UsageMonitoringService("a", engine, sources=[a],
                                     decay=NoDecay(), refresh_interval=5.0)
        b.record_job(UsageRecord(user="u", site="b", start=0.0, end=80.0))
        engine.run_until(20.0)
        assert ums.usage_totals().get("u", 0.0) == pytest.approx(80.0)
        b.record_job(UsageRecord(user="u", site="b", start=20.0, end=30.0))
        engine.run_until(40.0)
        assert ums.usage_totals().get("u", 0.0) == pytest.approx(90.0)


class TestFreshnessHorizons:
    """The UMS freezes its sources' usage horizons at refresh time, so the
    FCS inherits a horizon set consistent with the totals it serves."""

    def test_horizons_frozen_at_refresh(self, engine, uss):
        ums = make_ums(engine, uss)
        engine.run_until(25.0)
        # last refresh at t=20: the local horizon is the refresh time,
        # not the live clock
        assert ums.usage_horizons() == {"a": pytest.approx(20.0)}
        assert ums.computed_at == pytest.approx(20.0)

    def test_remote_horizons_flow_through(self, engine):
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=10.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=10.0)
        b.add_peer("a")
        ums = make_ums(engine, a)
        b.record_job(UsageRecord(user="u", site="b", start=0.0, end=80.0))
        engine.run_until(25.0)
        horizons = ums.usage_horizons()
        # b's t=20 publish lands at 20.1 — after the UMS refresh at t=20 —
        # so the captured horizon is from b's t=10 publish
        assert horizons["b"] == pytest.approx(10.0)
        assert horizons["a"] == pytest.approx(20.0)

    def test_local_only_ums_ignores_remote_horizons(self, engine):
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=10.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=60.0,
                                   exchange_interval=10.0)
        b.add_peer("a")
        ums = make_ums(engine, a, consider_remote=False)
        b.record_job(UsageRecord(user="u", site="b", start=0.0, end=80.0))
        engine.run_until(25.0)
        assert set(ums.usage_horizons()) == {"a"}
