"""Unit tests for the Usage Monitoring Service (UMS)."""

import pytest

from repro.core.decay import NoDecay
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def uss(engine):
    network = Network(engine, base_latency=0.1)
    return UsageStatisticsService("a", engine, network,
                                  histogram_interval=60.0,
                                  exchange_interval=10.0)


def make_ums(engine, uss, **kwargs):
    kwargs.setdefault("decay", NoDecay())
    kwargs.setdefault("refresh_interval", 10.0)
    return UsageMonitoringService("a", engine, sources=[uss], **kwargs)


class TestRefresh:
    def test_initial_refresh_at_construction(self, engine, uss):
        ums = make_ums(engine, uss)
        assert ums.refreshes == 1
        assert ums.usage_totals() == {}

    def test_totals_appear_after_refresh(self, engine, uss):
        ums = make_ums(engine, uss)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=100.0))
        assert ums.usage_totals() == {}  # not refreshed yet
        engine.run_until(10.0)
        assert ums.usage_totals()["u"] == pytest.approx(100.0)

    def test_serves_precomputed_state(self, engine, uss):
        """Queries between refreshes return the stale pre-computed value —
        the FCS/UMS cache time is delay source II."""
        ums = make_ums(engine, uss)
        engine.run_until(10.0)
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=50.0))
        assert ums.usage_totals() == {}  # still the old snapshot
        engine.run_until(20.0)
        assert ums.usage_totals()["u"] == pytest.approx(50.0)

    def test_computed_at_tracks_refresh_time(self, engine, uss):
        ums = make_ums(engine, uss)
        engine.run_until(25.0)
        assert ums.computed_at == pytest.approx(20.0)

    def test_requires_a_source(self, engine):
        with pytest.raises(ValueError):
            UsageMonitoringService("a", engine, sources=[])

    def test_stop_halts_refresh(self, engine, uss):
        ums = make_ums(engine, uss)
        ums.stop()
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=50.0))
        engine.run_until(100.0)
        assert ums.usage_totals() == {}


class TestRemoteConsideration:
    def test_consider_remote_false_ignores_remote_usage(self, engine):
        network = Network(engine, base_latency=0.1)
        a = UsageStatisticsService("a", engine, network,
                                   histogram_interval=60.0, exchange_interval=5.0)
        b = UsageStatisticsService("b", engine, network,
                                   histogram_interval=60.0, exchange_interval=5.0)
        a.add_peer("b")
        b.add_peer("a")
        b.record_job(UsageRecord(user="u", site="b", start=0.0, end=80.0))
        ums_global = UsageMonitoringService("a", engine, sources=[a],
                                            decay=NoDecay(), refresh_interval=5.0,
                                            consider_remote=True)
        ums_local = UsageMonitoringService("a", engine, sources=[a],
                                           decay=NoDecay(), refresh_interval=5.0,
                                           consider_remote=False)
        engine.run_until(20.0)
        assert ums_global.usage_totals().get("u", 0.0) == pytest.approx(80.0)
        assert ums_local.usage_totals().get("u", 0.0) == 0.0


class TestUsageTree:
    def test_usage_tree_shaped_by_policy(self, engine, uss):
        ums = make_ums(engine, uss)
        uss.record_job(UsageRecord(user="u1", site="a", start=0.0, end=30.0))
        engine.run_until(10.0)
        policy = PolicyTree.from_dict({"g": (1, {"u1": 1, "u2": 1})})
        tree = ums.usage_tree(policy)
        assert tree["/g/u1"].usage == pytest.approx(30.0)
        assert tree["/g"].usage == pytest.approx(30.0)

    def test_multiple_sources_summed(self, engine):
        network = Network(engine, base_latency=0.1)
        u1 = UsageStatisticsService("a1", engine, network,
                                    histogram_interval=60.0, exchange_interval=5.0)
        u2 = UsageStatisticsService("a2", engine, network,
                                    histogram_interval=60.0, exchange_interval=5.0)
        u1.record_job(UsageRecord(user="u", site="a1", start=0.0, end=10.0))
        u2.record_job(UsageRecord(user="u", site="a2", start=0.0, end=20.0))
        ums = UsageMonitoringService("a", engine, sources=[u1, u2],
                                     decay=NoDecay(), refresh_interval=5.0)
        engine.run_until(5.0)
        assert ums.usage_totals()["u"] == pytest.approx(30.0)
