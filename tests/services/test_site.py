"""Unit tests for per-site wiring and participation modes."""

import pytest

from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.site import AequusSite, ParticipationMode, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine


def make_policy():
    return PolicyTree.from_dict({"u1": 1, "u2": 1})


def make_site(name, engine, network, mode=ParticipationMode.FULL):
    config = SiteConfig(histogram_interval=60.0, uss_exchange_interval=5.0,
                        ums_refresh_interval=5.0, fcs_refresh_interval=5.0)
    return AequusSite(name, engine, network, policy=make_policy(),
                      config=config, mode=mode)


@pytest.fixture
def engine():
    return SimulationEngine()


@pytest.fixture
def network(engine):
    return Network(engine, base_latency=0.1)


class TestParticipationModes:
    def test_mode_flags(self):
        assert ParticipationMode.FULL.publishes
        assert ParticipationMode.FULL.consumes_remote
        assert not ParticipationMode.READ_ONLY.publishes
        assert ParticipationMode.READ_ONLY.consumes_remote
        assert ParticipationMode.LOCAL_ONLY.publishes
        assert not ParticipationMode.LOCAL_ONLY.consumes_remote
        assert not ParticipationMode.DISJUNCT.publishes
        assert not ParticipationMode.DISJUNCT.consumes_remote

    def test_full_sites_exchange_usage(self, engine, network):
        a = make_site("a", engine, network)
        b = make_site("b", engine, network)
        connect_sites([a, b])
        a.uss.record_job(UsageRecord(user="u1", site="a", start=0.0, end=100.0))
        engine.run_until(20.0)
        assert b.ums.usage_totals().get("u1", 0.0) == pytest.approx(100.0)

    def test_read_only_receives_but_never_contributes(self, engine, network):
        ro = make_site("ro", engine, network, mode=ParticipationMode.READ_ONLY)
        full = make_site("full", engine, network)
        connect_sites([ro, full])
        ro.uss.record_job(UsageRecord(user="u1", site="ro", start=0.0, end=50.0))
        full.uss.record_job(UsageRecord(user="u2", site="full", start=0.0, end=70.0))
        engine.run_until(20.0)
        # ro sees full's usage...
        assert ro.ums.usage_totals().get("u2", 0.0) == pytest.approx(70.0)
        # ...but full never sees ro's
        assert full.ums.usage_totals().get("u1", 0.0) == 0.0

    def test_local_only_contributes_but_prioritizes_locally(self, engine, network):
        lo = make_site("lo", engine, network, mode=ParticipationMode.LOCAL_ONLY)
        full = make_site("full", engine, network)
        connect_sites([lo, full])
        full.uss.record_job(UsageRecord(user="u2", site="full", start=0.0, end=70.0))
        lo.uss.record_job(UsageRecord(user="u1", site="lo", start=0.0, end=50.0))
        engine.run_until(20.0)
        # lo's data reaches full
        assert full.ums.usage_totals().get("u1", 0.0) == pytest.approx(50.0)
        # lo ignores remote usage for prioritization
        assert lo.ums.usage_totals().get("u2", 0.0) == 0.0

    def test_disjunct_site_fully_isolated(self, engine, network):
        dj = make_site("dj", engine, network, mode=ParticipationMode.DISJUNCT)
        full = make_site("full", engine, network)
        connect_sites([dj, full])
        dj.uss.record_job(UsageRecord(user="u1", site="dj", start=0.0, end=50.0))
        full.uss.record_job(UsageRecord(user="u2", site="full", start=0.0, end=70.0))
        engine.run_until(20.0)
        assert full.ums.usage_totals().get("u1", 0.0) == 0.0
        assert dj.ums.usage_totals().get("u2", 0.0) == 0.0


class TestWiring:
    def test_fcs_reflects_local_usage(self, engine, network):
        site = make_site("a", engine, network)
        before = site.fcs.priority("u1")
        site.uss.record_job(UsageRecord(user="u1", site="a", start=0.0, end=500.0))
        engine.run_until(20.0)
        assert site.fcs.priority("u1") < before

    def test_connect_sites_full_mesh(self, engine, network):
        sites = [make_site(f"s{i}", engine, network) for i in range(3)]
        connect_sites(sites)
        for site in sites:
            assert len(site.uss.peers) == 2

    def test_stop_cancels_periodic_tasks(self, engine, network):
        site = make_site("a", engine, network)
        site.stop()
        refreshes = site.fcs.refreshes
        engine.run_until(60.0)
        assert site.fcs.refreshes == refreshes

    def test_config_decay_and_parameters(self):
        cfg = SiteConfig(decay_half_life=100.0, k=0.7, resolution=999)
        assert cfg.decay().half_life == 100.0
        params = cfg.parameters()
        assert params.k == 0.7 and params.resolution == 999
