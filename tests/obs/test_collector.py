"""FleetCollector unit tests — fake daemons, manual clock, no sockets.

The grid integration test (tests/grid/test_collector.py) proves the
collector against real daemons; here every derived series and merge rule
is pinned down deterministically via the ``client_factory`` seam.
"""

import json
import math

import pytest

from repro.obs.collector import (FleetCollector, bucket_quantile,
                                 merge_exposition)


class TestBucketQuantile:
    def test_no_observations_is_zero(self):
        assert bucket_quantile([], 0.0, 0.5) == 0.0
        assert bucket_quantile([(1.0, 0.0)], 0.0, 0.5) == 0.0

    def test_picks_smallest_covering_bound(self):
        buckets = [(0.5, 2.0), (2.0, 8.0), (5.0, 10.0), (math.inf, 10.0)]
        assert bucket_quantile(buckets, 10.0, 0.50) == 2.0
        assert bucket_quantile(buckets, 10.0, 0.99) == 5.0
        assert bucket_quantile(buckets, 10.0, 0.10) == 0.5

    def test_only_inf_bucket_covers_returns_inf(self):
        buckets = [(1.0, 0.0), (math.inf, 4.0)]
        assert bucket_quantile(buckets, 4.0, 0.5) == math.inf


class TestMergeExposition:
    def test_site_label_forced_and_sorted(self):
        text = merge_exposition({
            "b": [("m", {}, 2.0)],
            "a": [("m", {"op": "QUERY"}, 1.0)],
        })
        lines = text.strip().splitlines()
        assert lines == ['m{op="QUERY",site="a"} 1.0', 'm{site="b"} 2.0']

    def test_site_label_overrides_daemon_constant_label(self):
        text = merge_exposition({"a": [("m", {"site": "stale"}, 1.0)]})
        assert 'site="a"' in text and "stale" not in text

    def test_label_values_escaped(self):
        text = merge_exposition({"a": [("m", {"x": 'q"\\'}, 1.0)]})
        assert '\\"' in text and "\\\\" in text

    def test_empty_renders_empty(self):
        assert merge_exposition({}) == ""


class FakeDaemon:
    """Canned front-door surface for one site; mutate fields between
    scrapes to model counter movement."""

    def __init__(self, site, peers=(), virtual_epoch=100.0):
        self.site = site
        self.peers = [p for p in peers if p != site]
        self.virtual_epoch = virtual_epoch
        self.requests = 0.0
        self.frames_out = 0.0
        self.reconnects = 0.0
        self.dirty_fraction = 0.0
        self.compiles = {}
        self.bytes_out = {}      # dst -> cumulative bytes framed
        self.bytes_in = {}       # src -> cumulative bytes received
        self.staleness = {}      # origin -> seconds behind
        self.hist = []           # (le_label, cumulative) staleness buckets
        self.hist_count = 0.0
        self.trace_dropped = 0.0
        self.pending_events = []
        self.fail = False
        self.closed = False
        self.exports = 0

    # -- the client duck-type the collector dials -------------------------

    def metrics(self):
        if self.fail:
            raise ConnectionError("down")
        lines = [f"aequus_requests_total{{site=\"{self.site}\"}} "
                 f"{self.requests}",
                 f"aequus_grid_frames_total{{direction=\"out\"}} "
                 f"{self.frames_out}",
                 f"aequus_grid_reconnects_total {self.reconnects}",
                 f"aequus_refresh_dirty_fraction {self.dirty_fraction}",
                 f"aequus_trace_dropped_total {self.trace_dropped}"]
        for kind, value in self.compiles.items():
            lines.append(f"aequus_compile_total{{kind=\"{kind}\"}} {value}")
        for dst, value in self.bytes_out.items():
            lines.append('aequus_grid_peer_bytes_total{peer="uss:%s",'
                         'direction="out"} %s' % (dst, value))
        for src, value in self.bytes_in.items():
            lines.append('aequus_grid_peer_bytes_total{peer="uss:%s",'
                         'direction="in"} %s' % (src, value))
        for le, cumulative in self.hist:
            lines.append('aequus_snapshot_staleness_seconds_bucket'
                         '{origin="peer",le="%s"} %s' % (le, cumulative))
        if self.hist_count:
            lines.append('aequus_snapshot_staleness_seconds_count'
                         '{origin="peer"} %s' % self.hist_count)
        return "\n".join(lines) + "\n"

    def info(self):
        if self.fail:
            raise ConnectionError("down")
        horizons = {origin: {"horizon": 0.0, "staleness": seconds}
                    for origin, seconds in self.staleness.items()}
        return {"ok": True, "info": {"site": self.site,
                                     "usage_horizons": horizons}}

    def trace_export(self):
        if self.fail:
            raise ConnectionError("down")
        self.exports += 1
        events, self.pending_events = self.pending_events, []
        return {"ok": True, "site": self.site,
                "virtual_epoch": self.virtual_epoch,
                "events": events, "dropped": 0}

    def close(self):
        self.closed = True


@pytest.fixture
def fleet():
    daemons = {name: FakeDaemon(name, peers=("a", "b"))
               for name in ("a", "b")}

    class ManualClock(FleetCollector):
        t = 0.0

        def now(self):
            return self.t

    collector = ManualClock(
        {"a": ("x", 1), "b": ("x", 2)},
        client_factory=lambda host, port: daemons[
            {1: "a", 2: "b"}[port]])
    return collector, daemons


class TestScraping:
    def test_rates_need_two_scrapes(self, fleet):
        collector, daemons = fleet
        daemons["a"].requests = 10.0
        collector.scrape_once()
        assert collector.store["qps/a"].last()[1] == 0.0
        collector.t = 2.0
        daemons["a"].requests = 110.0
        collector.scrape_once()
        assert collector.store["qps/a"].last() == (2.0, 50.0)
        assert collector.scrapes == 2 and collector.scrape_errors == 0

    def test_counter_reset_clamps_rate_to_zero(self, fleet):
        collector, daemons = fleet
        daemons["a"].requests = 100.0
        collector.scrape_once()
        collector.t = 1.0
        daemons["a"].requests = 3.0  # daemon restarted
        collector.scrape_once()
        assert collector.store["qps/a"].last()[1] == 0.0

    def test_staleness_excludes_own_site(self, fleet):
        collector, daemons = fleet
        daemons["a"].staleness = {"a": 99.0, "b": 1.5}
        collector.scrape_once()
        assert collector.store["staleness_max/a"].last()[1] == 1.5

    def test_fleet_gauges(self, fleet):
        collector, daemons = fleet
        daemons["a"].staleness = {"b": 2.5}
        daemons["b"].staleness = {"a": 0.5}
        daemons["a"].dirty_fraction = 0.9
        daemons["b"].dirty_fraction = 0.2
        daemons["a"].requests = 10.0
        daemons["b"].requests = 30.0
        collector.scrape_once()
        collector.t = 1.0
        daemons["a"].requests = 20.0
        daemons["b"].requests = 70.0
        collector.scrape_once()
        assert collector.store["fleet/max_staleness"].last()[1] == 2.5
        assert collector.store["fleet/qps"].last()[1] == pytest.approx(50.0)
        assert collector.store["fleet/dirty_fraction_spread"].last()[1] == \
            pytest.approx(0.7)

    def test_frame_backlog_per_directed_link(self, fleet):
        collector, daemons = fleet
        daemons["a"].bytes_out["b"] = 1000.0
        daemons["b"].bytes_in["a"] = 800.0
        collector.scrape_once()
        assert collector.store["frame_backlog/a->b"].last()[1] == 200.0
        # the reverse link saw no bytes: no series invented for it
        assert "frame_backlog/b->a" not in collector.store

    def test_down_site_marks_up_zero_and_keeps_scraping_others(self, fleet):
        collector, daemons = fleet
        collector.scrape_once()
        client_a = collector._clients["a"]
        daemons["a"].fail = True
        daemons["b"].requests = 5.0
        collector.t = 1.0
        collector.scrape_once()
        assert collector.scrape_errors == 1
        assert collector.store["up/a"].last()[1] == 0.0
        assert collector.store["up/b"].last()[1] == 1.0
        assert client_a.closed  # dropped so the next scrape redials
        assert "a" not in collector._clients


class TestTraceMerging:
    def test_events_shift_onto_the_fleet_timeline(self, fleet):
        collector, daemons = fleet
        # daemon epoch 100.0 s: a span stamped at wall 103.5 s lands at
        # fleet t=3.5 s (in µs)
        daemons["a"].pending_events = [
            {"name": "uss.publish", "ph": "X", "ts": 103.5 * 1e6,
             "dur": 10.0, "pid": 7, "tid": 1, "args": {"id": 1}}]
        collector.scrape_once()
        spans = [e for e in collector.events() if e["ph"] == "X"]
        assert spans[0]["ts"] == pytest.approx(3.5 * 1e6)
        assert spans[0]["args"]["site"] == "a"

    def test_process_metadata_emitted_once_per_pid(self, fleet):
        collector, daemons = fleet
        for _ in range(2):
            daemons["a"].pending_events = [
                {"name": "x", "ph": "X", "ts": 0.0, "pid": 7, "args": {}}]
            collector.scrape_once()
        metas = [e for e in collector.events() if e["ph"] == "M"]
        assert len(metas) == 1
        assert metas[0]["args"]["name"] == "aequusd a [7]"

    def test_each_export_drained_once_per_scrape(self, fleet):
        collector, daemons = fleet
        collector.scrape_once()
        collector.scrape_once()
        assert daemons["a"].exports == 2

    def test_fault_instants_land_in_the_trace(self, fleet):
        collector, daemons = fleet
        collector.t = 4.0
        collector.note_event("fault.partition", a="a", b="b")
        (event,) = collector.events()
        assert event["ph"] == "i" and event["s"] == "g"
        assert event["ts"] == pytest.approx(4.0 * 1e6)
        assert event["args"] == {"a": "a", "b": "b"}
        assert event in collector.chrome_trace()["traceEvents"]

    def test_event_cap_drops_oldest(self, fleet):
        collector, daemons = fleet
        collector.max_events = 3
        daemons["a"].pending_events = [
            {"name": f"s{i}", "ph": "X", "ts": float(i), "pid": 7,
             "args": {}} for i in range(5)]
        collector.scrape_once()
        # 5 spans + 1 process_name metadata event, capped at 3: the
        # oldest three (metadata, s0, s1) fall off the front
        names = [e["name"] for e in collector.events() if e["ph"] == "X"]
        assert names == ["s2", "s3", "s4"]
        assert collector._events_dropped == 3


class TestReadSurfaces:
    def test_table_rows(self, fleet):
        collector, daemons = fleet
        a = daemons["a"]
        a.requests = 10.0
        a.reconnects = 2.0
        a.trace_dropped = 5.0
        a.compiles = {"full": 1.0, "incremental": 7.0}
        a.hist = [("0.5", 2.0), ("2.0", 8.0), ("5.0", 10.0),
                  ("+Inf", 10.0)]
        a.hist_count = 10.0
        a.staleness = {"b": 1.25}
        collector.scrape_once()
        collector.t = 1.0
        a.requests = 40.0
        collector.scrape_once()
        row_a, row_b = collector.table()
        assert row_a["site"] == "a" and row_a["up"]
        assert row_a["qps"] == pytest.approx(30.0)
        assert row_a["reconnects"] == 2.0
        assert row_a["trace_dropped"] == 5.0
        assert row_a["compiles"] == {"full": 1.0, "incremental": 7.0}
        assert row_a["staleness_p50"] == 2.0
        assert row_a["staleness_p99"] == 5.0
        assert row_a["staleness_now"] == 1.25
        assert row_b["site"] == "b" and row_b["qps"] == 0.0

    def test_render_merged_covers_every_site(self, fleet):
        collector, daemons = fleet
        collector.scrape_once()
        text = collector.render_merged()
        assert 'aequus_requests_total{site="a"}' in text
        assert 'aequus_requests_total{site="b"}' in text

    def test_snapshot_writes_series_and_trace(self, fleet, tmp_path):
        collector, daemons = fleet
        daemons["a"].pending_events = [
            {"name": "x", "ph": "X", "ts": 0.0, "pid": 7, "args": {}}]
        collector.scrape_once()
        paths = collector.snapshot(str(tmp_path / "fleet"))
        with open(paths["trace"], encoding="utf-8") as fh:
            doc = json.load(fh)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        jsonl = (tmp_path / "fleet.jsonl").read_text()
        assert '"series": "fleet/qps"' in jsonl.replace('","', '", "') \
            or "fleet/qps" in jsonl
        assert (tmp_path / "fleet.csv").read_text().startswith(
            "series,time,value")
