"""Span tracing: nesting, the ring bound, and the Chrome trace exports."""

import io
import json

import pytest

from repro.obs.trace import Tracer, default_tracer, set_default_tracer, span


@pytest.fixture
def tracer():
    return Tracer(capacity=64, clock=lambda: 100.0, enabled=True)


class TestSpans:
    def test_span_records_a_complete_event(self, tracer):
        with tracer.span("fcs.refresh", site="a"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "fcs.refresh"
        assert event["ph"] == "X"
        assert event["ts"] == 100.0 * 1e6      # clock, in microseconds
        assert event["dur"] >= 0.0
        assert event["args"]["site"] == "a"

    def test_nesting_links_parent_and_child(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()  # inner closes (and lands) first
        assert inner["name"] == "inner"
        assert inner["args"]["parent"] == outer["args"]["id"]
        assert "parent" not in outer["args"]

    def test_siblings_share_a_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.events()
        assert a["args"]["parent"] == outer["args"]["id"]
        assert b["args"]["parent"] == outer["args"]["id"]

    def test_body_may_annotate_the_span(self, tracer):
        with tracer.span("fcs.refresh") as sp:
            sp["cache"] = "hit"
        (event,) = tracer.events()
        assert event["args"]["cache"] == "hit"

    def test_span_records_even_when_the_body_raises(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [e["name"] for e in tracer.events()] == ["boom"]
        # the parent stack unwound: a following span is a root again
        with tracer.span("next"):
            pass
        assert "parent" not in tracer.events()[-1]["args"]

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as sp:
            assert sp is None
        assert tracer.events() == []
        assert tracer.started == 0


class TestRingBuffer:
    def test_buffer_is_bounded_and_drops_oldest(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        events = tracer.events()
        assert len(events) == 4
        assert [e["name"] for e in events] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_empties_the_buffer(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestExport:
    def _record(self, tracer):
        with tracer.span("fcs.refresh", site="a"):
            with tracer.span("fcs.rollup"):
                pass

    def test_jsonl_is_one_trace_event_per_line(self, tracer):
        self._record(tracer)
        buf = io.StringIO()
        assert tracer.export_jsonl(buf) == 2
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            event = json.loads(line)
            assert {"name", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ph"] == "X"

    def test_jsonl_to_path_roundtrips(self, tracer, tmp_path):
        self._record(tracer)
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["fcs.rollup", "fcs.refresh"]

    def test_chrome_document_loads_as_trace_event_json(self, tracer, tmp_path):
        self._record(tracer)
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(str(path)) == 2
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)

    def test_jsonl_lines_wrap_into_a_chrome_array(self, tracer):
        # the documented jq/grep pipeline: [line, line, ...] is loadable
        self._record(tracer)
        buf = io.StringIO()
        tracer.export_jsonl(buf)
        wrapped = "[" + ",".join(buf.getvalue().strip().splitlines()) + "]"
        assert len(json.loads(wrapped)) == 2


class TestDefaultTracer:
    def test_module_span_records_to_the_default_tracer(self):
        replacement = Tracer(enabled=True)
        previous = set_default_tracer(replacement)
        try:
            with span("x", k="v"):
                pass
            assert default_tracer() is replacement
            assert replacement.events()[0]["args"]["k"] == "v"
        finally:
            set_default_tracer(previous)


class TestDrain:
    def test_drain_is_exactly_once(self, tracer):
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        first = tracer.drain()
        assert [e["name"] for e in first] == ["a", "b", "c"]
        assert tracer.drain() == []
        # draining is a handoff, not a loss: nothing counts as dropped
        assert tracer.dropped == 0
        with tracer.span("d"):
            pass
        assert [e["name"] for e in tracer.drain()] == ["d"]

    def test_dropped_counts_ring_evictions_only(self):
        t = Tracer(capacity=2, enabled=True)
        for name in ("a", "b", "c"):
            with t.span(name):
                pass
        assert t.dropped == 1
        t.drain()
        assert t.dropped == 1  # drain did not add to the count


class TestBindRegistry:
    def test_counter_pre_created_and_tracks_evictions(self):
        from repro.obs.export import render
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        t = Tracer(capacity=2, enabled=True)
        t.bind_registry(registry)
        # satellite: the family renders at zero before any eviction
        assert "aequus_trace_dropped_total 0" in render(registry)
        for name in ("a", "b", "c", "d"):
            with t.span(name):
                pass
        assert "aequus_trace_dropped_total 2" in render(registry)

    def test_bind_folds_in_pre_bind_evictions(self):
        from repro.obs.export import render
        from repro.obs.registry import MetricsRegistry

        t = Tracer(capacity=1, enabled=True)
        for name in ("a", "b", "c"):
            with t.span(name):
                pass
        registry = MetricsRegistry(enabled=True)
        t.bind_registry(registry)
        assert "aequus_trace_dropped_total 2" in render(registry)


class TestTraceSpool:
    """The flock-guarded JSONL handoff between a daemon and its workers."""

    def _spool(self, tmp_path):
        from repro.obs.trace import TraceSpool
        return TraceSpool(str(tmp_path / "spool.jsonl"))

    def test_append_then_drain_round_trips(self, tmp_path):
        spool = self._spool(tmp_path)
        events = [{"name": "a", "ts": 1.0}, {"name": "b", "ts": 2.0}]
        assert spool.append(events) == 2
        assert spool.drain() == events

    def test_drain_is_exactly_once_across_instances(self, tmp_path):
        from repro.obs.trace import TraceSpool
        spool = self._spool(tmp_path)
        spool.append([{"name": "a"}])
        # a second handle on the same path (another process, in real use)
        other = TraceSpool(spool.path)
        assert other.drain() == [{"name": "a"}]
        assert spool.drain() == []
        assert other.drain() == []

    def test_missing_file_drains_empty(self, tmp_path):
        spool = self._spool(tmp_path)
        assert spool.drain() == []
        spool.unlink()  # idempotent on a missing file

    def test_append_accumulates_between_drains(self, tmp_path):
        spool = self._spool(tmp_path)
        spool.append([{"name": "a"}])
        spool.append([{"name": "b"}])
        assert [e["name"] for e in spool.drain()] == ["a", "b"]

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        spool = self._spool(tmp_path)
        spool.append([{"name": "a"}])
        with open(spool.path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "tor')  # a crashed writer's partial line
        assert [e["name"] for e in spool.drain()] == ["a"]

    def test_empty_append_is_a_no_op(self, tmp_path):
        spool = self._spool(tmp_path)
        assert spool.append([]) == 0
        assert spool.drain() == []
        spool.unlink()
