"""Unit + integration tests for the structured JSON operational log."""

import io
import json
import threading
import time

import pytest

from repro.obs.jsonlog import JsonLogger


def parse_lines(text):
    """Every non-empty line must parse as one JSON object."""
    records = []
    for line in text.splitlines():
        assert line.strip(), "blank line in JSONL output"
        record = json.loads(line)
        assert isinstance(record, dict)
        records.append(record)
    return records


class TestJsonLogger:
    def test_one_line_per_event(self):
        buf = io.StringIO()
        log = JsonLogger(buf, clock=lambda: 12.5)
        log.log("tick", n=1)
        log.log("refresh", site="a", cache="hit")
        records = parse_lines(buf.getvalue())
        assert len(records) == 2 and log.lines == 2
        assert records[0] == {"ts": 12.5, "event": "tick", "n": 1}
        assert records[1]["event"] == "refresh"
        assert records[1]["site"] == "a" and records[1]["cache"] == "hit"

    def test_clock_stamps_every_record(self):
        now = [0.0]
        buf = io.StringIO()
        log = JsonLogger(buf, clock=lambda: now[0])
        for t in (1.0, 2.0):
            now[0] = t
            log.log("tick")
        records = parse_lines(buf.getvalue())
        assert [r["ts"] for r in records] == [1.0, 2.0]

    def test_non_serializable_degrades_to_repr(self):
        buf = io.StringIO()
        log = JsonLogger(buf, clock=lambda: 0.0)
        log.log("weird", payload=object())
        (record,) = parse_lines(buf.getvalue())
        assert record["event"] == "weird"
        assert "object object" in record["repr"]

    def test_concurrent_writers_keep_lines_whole(self):
        """N threads x M events: still valid one-object-per-line JSONL."""
        buf = io.StringIO()
        log = JsonLogger(buf, clock=lambda: 0.0)
        n_threads, per_thread = 8, 50

        def worker(tid):
            for i in range(per_thread):
                log.log("tick", thread=tid, i=i, pad="x" * 64)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = parse_lines(buf.getvalue())
        assert len(records) == n_threads * per_thread == log.lines
        seen = {(r["thread"], r["i"]) for r in records}
        assert len(seen) == n_threads * per_thread


class TestDaemonLog:
    """The daemon's operational log under live concurrent server load."""

    @pytest.fixture
    def daemon_log(self):
        from repro.serve.daemon import AequusDaemon, build_demo_site
        from repro.services.site import SiteConfig

        engine, site = build_demo_site(
            60, seed=3, config=SiteConfig(histogram_interval=60.0,
                                          uss_exchange_interval=5.0,
                                          ums_refresh_interval=5.0,
                                          fcs_refresh_interval=5.0))
        # no real peers in the demo stack: a ghost peer forces the USS to
        # publish (dropped on the floor) so exchange lines appear
        site.uss.add_peer("ghost")
        buf = io.StringIO()
        daemon = AequusDaemon(engine, site, port=0, tick_interval=0.02,
                              time_factor=600.0, json_log=buf)
        daemon.start()
        try:
            yield daemon, buf
        finally:
            daemon.stop()

    def test_tick_refresh_exchange_lines_under_load(self, daemon_log):
        from repro.serve.client import SyncAequusClient

        daemon, buf = daemon_log
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                with SyncAequusClient(daemon.host, daemon.port,
                                      timeout=5.0) as client:
                    while not stop.is_set():
                        client.lookup_fairshare("u0")
                        client.info()
            except Exception as exc:  # surfaced below
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(3)]
        for w in workers:
            w.start()
        deadline = time.monotonic() + 5.0
        while daemon.ticks < 10 and time.monotonic() < deadline:
            time.sleep(0.02)
        stop.set()
        for w in workers:
            w.join(5.0)
        daemon.stop()
        assert not errors
        records = parse_lines(buf.getvalue())
        by_event = {}
        for r in records:
            by_event.setdefault(r["event"], []).append(r)
        assert len(by_event.get("tick", [])) >= 10
        for r in by_event["tick"]:
            assert {"ts", "n", "engine_now", "advanced",
                    "duration"} <= r.keys()
        # 600 virtual s/s across >= 10 ticks crosses many 5 s intervals
        assert by_event.get("refresh"), "no refresh lines logged"
        for r in by_event["refresh"]:
            assert {"site", "seq", "duration", "cache", "users",
                    "origins", "staleness_max"} <= r.keys()
            assert r["cache"] in ("hit", "miss")
            assert r["origins"] >= 1  # the local origin is always tracked
            assert r["staleness_max"] >= 0.0
        assert by_event.get("exchange"), "no exchange lines logged"
        for r in by_event["exchange"]:
            assert {"site", "rounds", "seq", "stale", "skipped"} <= r.keys()
            assert r["rounds"] >= 1
