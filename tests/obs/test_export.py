"""Prometheus text exposition: escaping, histogram cumulativity, dedupe."""

import math
import re

import pytest

from repro.obs.export import (escape_help, escape_label_value, render,
                              render_many)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestEscaping:
    @pytest.mark.parametrize("raw,escaped", [
        ("plain", "plain"),
        ('with"quote', r'with\"quote'),
        ("back\\slash", r"back\\slash"),
        ("new\nline", r"new\nline"),
        ("\\\"\n", r'\\\"\n'),
    ])
    def test_label_values(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    def test_help_escapes_backslash_and_newline_but_not_quotes(self):
        assert escape_help('a\\b\nc"d') == r'a\\b\nc"d'

    def test_escaped_labels_render_into_samples(self, registry):
        registry.counter("x_total", "", ("path",)).labels(
            path='C:\\tmp\n"x"').inc()
        text = render(registry)
        assert r'x_total{path="C:\\tmp\n\"x\""} 1' in text


class TestHeaders:
    def test_help_and_type_lines(self, registry):
        registry.counter("x_total", "things counted").labels().inc(3)
        text = render(registry)
        assert "# HELP x_total things counted\n" in text
        assert "# TYPE x_total counter\n" in text
        assert "x_total 3\n" in text

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total")
        registry.counter("a_total")
        text = render(registry)
        assert text.index("a_total") < text.index("z_total")

    def test_children_sorted_by_label_values(self, registry):
        family = registry.counter("x_total", "", ("op",))
        family.labels(op="z").inc()
        family.labels(op="a").inc()
        text = render(registry)
        assert text.index('op="a"') < text.index('op="z"')

    def test_constant_labels_attach_to_every_sample(self):
        registry = MetricsRegistry(constant_labels={"site": "a"},
                                   enabled=True)
        registry.counter("x_total", "", ("op",)).labels(op="r").inc()
        assert 'x_total{site="a",op="r"} 1' in render(registry)


class TestHistogramExposition:
    def test_buckets_are_cumulative_and_le_monotone(self, registry):
        h = registry.histogram("d_seconds", "lat",
                               buckets=(0.1, 1.0, 10.0)).labels()
        for value in (0.05, 0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        text = render(registry)
        buckets = re.findall(
            r'd_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
        assert [b[0] for b in buckets] == ["0.1", "1", "10", "+Inf"]
        counts = [int(b[1]) for b in buckets]
        assert counts == [2, 3, 4, 5]
        assert counts == sorted(counts)  # le-cumulativity is monotone

    def test_inf_bucket_equals_count(self, registry):
        h = registry.histogram("d_seconds", buckets=(1.0,)).labels()
        h.observe(0.5)
        h.observe(2.0)
        text = render(registry)
        assert 'd_seconds_bucket{le="+Inf"} 2' in text
        assert "d_seconds_count 2" in text

    def test_sum_and_count_samples(self, registry):
        h = registry.histogram("d_seconds", buckets=(1.0,)).labels()
        h.observe(0.25)
        h.observe(0.5)
        text = render(registry)
        assert "d_seconds_sum 0.75" in text
        assert "d_seconds_count 2" in text

    def test_labeled_histogram_keeps_op_before_le(self, registry):
        h = registry.histogram("d_seconds", "", ("op",),
                               buckets=(1.0,)).labels(op="GET")
        h.observe(0.5)
        text = render(registry)
        assert 'd_seconds_bucket{op="GET",le="1"} 1' in text
        assert 'd_seconds_sum{op="GET"} 0.5' in text

    def test_type_line_says_histogram(self, registry):
        registry.histogram("d_seconds", "lat")
        assert "# TYPE d_seconds histogram\n" in render(registry)


class TestValueFormatting:
    def test_integral_floats_render_as_integers(self, registry):
        registry.gauge("g").labels().set(3.0)
        assert "g 3\n" in render(registry)

    def test_non_finite_values(self, registry):
        registry.gauge("g_inf").labels().set(math.inf)
        registry.gauge("g_nan").labels().set(math.nan)
        text = render(registry)
        assert "g_inf +Inf" in text
        assert "g_nan NaN" in text


class TestRenderMany:
    def test_registries_deduped_by_identity(self, registry):
        registry.counter("x_total").labels().inc()
        assert render_many([registry, registry]) == render(registry)

    def test_same_family_name_keeps_one_header(self):
        a = MetricsRegistry(constant_labels={"site": "a"}, enabled=True)
        b = MetricsRegistry(constant_labels={"site": "b"}, enabled=True)
        a.counter("x_total", "help").labels().inc(1)
        b.counter("x_total", "help").labels().inc(2)
        text = render_many([a, b])
        assert text.count("# TYPE x_total counter") == 1
        assert 'x_total{site="a"} 1' in text
        assert 'x_total{site="b"} 2' in text

    def test_children_render_with_the_parent(self):
        parent = MetricsRegistry(constant_labels={"site": "a"}, enabled=True)
        child = parent.child(component="server")
        child.counter("x_total").labels().inc()
        assert 'x_total{component="server",site="a"} 1' in render(parent)

    def test_empty_registry_renders_empty(self):
        assert render(MetricsRegistry()) == ""

    def test_rendering_is_deterministic(self, registry):
        family = registry.counter("x_total", "", ("op",))
        family.labels(op="b").inc()
        family.labels(op="a").inc()
        registry.histogram("d_seconds").labels().observe(0.01)
        assert render(registry) == render(registry)
