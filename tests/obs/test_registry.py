"""MetricsRegistry: families, labels, views, enabled gating, hierarchy."""

import threading

import pytest

from repro.obs.registry import (LATENCY_BUCKETS, MetricsRegistry, StatsView,
                                metric_property)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounterGauge:
    def test_counter_inc_and_set(self, registry):
        c = registry.counter("x_total", "help").labels()
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(0)
        assert c.value == 0

    def test_gauge_up_and_down(self, registry):
        g = registry.gauge("x_active").labels()
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1

    def test_labeled_children_are_independent(self, registry):
        family = registry.counter("x_total", "", ("op",))
        family.labels(op="a").inc(2)
        family.labels(op="b").inc(5)
        assert family.labels(op="a").value == 2
        assert family.labels(op="b").value == 5

    def test_labels_get_or_create_returns_same_child(self, registry):
        family = registry.counter("x_total", "", ("op",))
        assert family.labels(op="a") is family.labels(op="a")

    def test_wrong_labelnames_rejected(self, registry):
        family = registry.counter("x_total", "", ("op",))
        with pytest.raises(ValueError):
            family.labels(kind="a")

    def test_family_get_or_create_idempotent(self, registry):
        a = registry.counter("x_total", "", ("op",))
        b = registry.counter("x_total", "", ("op",))
        assert a is b

    def test_type_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_labelname_mismatch_rejected(self, registry):
        registry.counter("x_total", "", ("op",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "", ("kind",))


class TestHistogram:
    def test_observe_fills_the_right_bucket(self, registry):
        h = registry.histogram("d_seconds", buckets=(0.1, 1.0, 10.0)).labels()
        h.observe(0.05)    # <= 0.1
        h.observe(0.5)     # <= 1.0
        h.observe(100.0)   # overflow
        assert h.counts == [1, 1, 0, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(100.55)

    def test_boundary_lands_in_le_bucket(self, registry):
        # Prometheus buckets are le= (inclusive upper bounds)
        h = registry.histogram("d_seconds", buckets=(0.1, 1.0)).labels()
        h.observe(0.1)
        assert h.counts == [1, 0, 0]

    def test_default_buckets_are_shared_latency_scale(self, registry):
        h = registry.histogram("d_seconds").labels()
        assert h.buckets == tuple(sorted(LATENCY_BUCKETS))
        assert len(h.counts) == len(LATENCY_BUCKETS) + 1

    def test_timer_observes_duration(self, registry):
        h = registry.histogram("d_seconds").labels()
        with h.time():
            pass
        assert h.count == 1
        assert h.sum >= 0.0

    def test_disabled_registry_skips_observations(self):
        registry = MetricsRegistry(enabled=False)
        h = registry.histogram("d_seconds").labels()
        h.observe(1.0)
        assert h.count == 0 and h.sum == 0.0

    def test_disabled_registry_still_counts(self):
        # counters/gauges back public stats APIs: never gated
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x_total").labels()
        c.inc()
        assert c.value == 1

    def test_histogram_cannot_be_set(self, registry):
        h = registry.histogram("d_seconds").labels()
        with pytest.raises(TypeError):
            h.set(1.0)


class TestHierarchy:
    def test_child_inherits_and_extends_constant_labels(self):
        parent = MetricsRegistry(constant_labels={"site": "a"})
        child = parent.child(component="server")
        assert child.constant_labels == {"site": "a", "component": "server"}

    def test_collect_recurses_children(self):
        parent = MetricsRegistry()
        child = parent.child(component="x")
        child.counter("x_total").labels().inc()
        names = [family.name for family, _ in parent.collect()]
        assert "x_total" in names

    def test_adopt_attaches_existing_registry(self):
        parent = MetricsRegistry()
        other = MetricsRegistry(constant_labels={"site": "b"})
        other.counter("y_total")
        parent.adopt(other)
        assert "y_total" in [f.name for f, _ in parent.collect()]

    def test_adopt_is_idempotent_and_never_self(self):
        parent = MetricsRegistry()
        parent.adopt(parent)
        other = MetricsRegistry()
        parent.adopt(other)
        parent.adopt(other)
        assert parent._children == [other]

    def test_clock_drives_timestamp(self):
        registry = MetricsRegistry(clock=lambda: 42.0)
        assert registry.timestamp() == 42.0


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("x_total").labels()
        n, per = 8, 5_000

        def work():
            for _ in range(per):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per


class _Service:
    refreshes = metric_property("refreshes")

    def __init__(self, registry):
        self._metrics = {
            "refreshes": registry.counter("svc_refreshes_total").labels()}


class TestViews:
    def test_metric_property_reads_and_writes_the_metric(self, registry):
        svc = _Service(registry)
        svc.refreshes += 1
        svc.refreshes += 1
        assert svc.refreshes == 2
        assert registry.counter("svc_refreshes_total").labels().value == 2
        svc.refreshes = 0
        assert registry.counter("svc_refreshes_total").labels().value == 0

    def test_stats_view_behaves_like_the_old_dict(self, registry):
        view = StatsView({
            "requests": registry.counter("r_total").labels(),
            "errors": registry.counter("e_total").labels()})
        view["requests"] += 3
        assert view["requests"] == 3
        assert dict(view) == {"requests": 3, "errors": 0}
        assert set(view) == {"requests", "errors"}
        assert len(view) == 2

    def test_stats_view_keys_are_a_fixed_contract(self, registry):
        view = StatsView({"requests": registry.counter("r_total").labels()})
        with pytest.raises(KeyError):
            view["nope"]
        with pytest.raises(TypeError):
            del view["requests"]
