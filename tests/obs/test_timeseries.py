"""Unit tests for the bounded ring-series store."""

import io
import json

import pytest

from repro.obs.timeseries import RingSeries, SeriesStore


class TestRingSeries:
    def test_append_and_reads(self):
        s = RingSeries("x", capacity=10)
        for t in range(5):
            s.append(float(t), float(t) * 2.0)
        assert len(s) == 5 and s.appended == 5
        assert s.times() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert s.values() == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert s.first() == (0.0, 0.0) and s.last() == (4.0, 8.0)
        assert s.min() == 0.0 and s.max() == 8.0
        assert s.mean() == pytest.approx(4.0)

    def test_capacity_evicts_oldest(self):
        s = RingSeries("x", capacity=3)
        for t in range(10):
            s.append(float(t), float(t))
        assert len(s) == 3
        assert s.times() == [7.0, 8.0, 9.0]
        assert s.appended == 10  # lifetime count survives eviction

    def test_since_filters_by_time(self):
        s = RingSeries("x", capacity=10)
        for t in range(6):
            s.append(float(t), float(t))
        assert s.since(3.0) == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]
        assert s.since(99.0) == []

    def test_time_must_not_go_backwards(self):
        s = RingSeries("x")
        s.append(5.0, 1.0)
        s.append(5.0, 2.0)  # equal times are fine (same tick)
        with pytest.raises(ValueError):
            s.append(4.0, 3.0)

    def test_empty_and_bad_capacity(self):
        s = RingSeries("x")
        assert s.last() is None and s.first() is None and len(s) == 0
        with pytest.raises(ValueError):
            RingSeries("x", capacity=0)


class TestSeriesStore:
    def test_sample_creates_series_on_demand(self):
        store = SeriesStore()
        store.sample("a/b", 1.0, 2.0)
        assert "a/b" in store and len(store) == 1
        assert store["a/b"].last() == (1.0, 2.0)
        assert "missing" not in store

    def test_sample_many_prefixes_keys(self):
        store = SeriesStore()
        store.sample_many("staleness/s0", 5.0, {"s1": 30.0, "s2": 40.0})
        assert store.names() == ["staleness/s0/s1", "staleness/s0/s2"]
        assert store.names(prefix="staleness/") == store.names()
        assert store.names(prefix="nope") == []

    def test_store_capacity_applies_to_new_series(self):
        store = SeriesStore(capacity=2)
        for t in range(5):
            store.sample("x", float(t), float(t))
        assert store["x"].times() == [3.0, 4.0]

    def test_csv_round_shape(self):
        store = SeriesStore()
        store.sample("b", 1.0, 2.5)
        store.sample("a", 1.0, 1.5)
        buf = io.StringIO()
        assert store.to_csv(buf) == 2
        lines = buf.getvalue().splitlines()
        assert lines[0] == "series,time,value"
        assert lines[1].startswith("a,") and lines[2].startswith("b,")

    def test_jsonl_round_trip(self):
        store = SeriesStore()
        for t in range(4):
            store.sample("d/max", float(t), 0.1 * t)
            store.sample("d/mean", float(t), 0.05 * t)
        buf = io.StringIO()
        assert store.to_jsonl(buf) == 8
        for line in buf.getvalue().splitlines():
            record = json.loads(line)
            assert set(record) == {"series", "t", "v"}
        loaded = SeriesStore.from_jsonl(io.StringIO(buf.getvalue()))
        assert loaded.names() == store.names()
        assert loaded["d/max"].values() == store["d/max"].values()

    def test_from_jsonl_skips_torn_and_blank_lines(self):
        text = ('{"series":"x","t":1.0,"v":2.0}\n'
                "\n"
                '{"series":"x","t":2.0,"v":3.0}\n'
                '{"series":"x","t":3.0,"v"')  # writer mid-line
        store = SeriesStore.from_jsonl(io.StringIO(text))
        assert store["x"].values() == [2.0, 3.0]

    def test_file_target_round_trip(self, tmp_path):
        store = SeriesStore()
        store.sample("x", 1.0, 2.0)
        path = str(tmp_path / "series.jsonl")
        store.to_jsonl(path)
        loaded = SeriesStore.from_jsonl(path)
        assert loaded["x"].last() == (1.0, 2.0)


class TestClockedSeries:
    """Satellite fix: a series wired to the daemon's virtual-epoch clock
    stamps samples itself and clamps (rather than raises on) the small
    backward steps that wall-clock adjustments can produce."""

    def test_clock_overrides_caller_timestamps(self):
        ticks = iter([10.0, 11.0, 12.0])
        s = RingSeries("x", capacity=8, clock=lambda: next(ticks))
        s.append(999.0, 1.0)   # caller t is ignored
        s.append(-5.0, 2.0)
        assert s.times() == [10.0, 11.0]

    def test_backward_clock_steps_clamp_instead_of_raising(self):
        ticks = iter([10.0, 9.5, 11.0])
        s = RingSeries("x", capacity=8, clock=lambda: next(ticks))
        for v in (1.0, 2.0, 3.0):
            s.append(0.0, v)
        assert s.times() == [10.0, 10.0, 11.0]
        assert s.clamped == 1
        assert s.values() == [1.0, 2.0, 3.0]  # no sample was lost

    def test_unclocked_series_still_rejects_backward_time(self):
        s = RingSeries("x")
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 2.0)

    def test_store_clock_propagates_to_created_series(self):
        ticks = iter([1.0, 2.0, 1.5])
        store = SeriesStore(clock=lambda: next(ticks))
        store.sample("a", 0.0, 1.0)
        store.sample("a", 0.0, 2.0)
        store.sample("a", 0.0, 3.0)
        assert store["a"].times() == [1.0, 2.0, 2.0]
        assert store["a"].clamped == 1

    def test_from_jsonl_keeps_file_timestamps(self):
        src = SeriesStore()
        src.sample("a", 3.0, 1.0)
        src.sample("a", 7.0, 2.0)
        buf = io.StringIO()
        src.to_jsonl(buf)
        clone = SeriesStore.from_jsonl(io.StringIO(buf.getvalue()))
        assert clone["a"].times() == [3.0, 7.0]
