"""Unit tests for the fairness-quality recorder and report renderers."""

import pytest

from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.obs.evaluate import (FairnessRecorder, convergence_half_life,
                                cross_site_divergence, distance_stats,
                                parse_exposition, render_report,
                                report_from_daemon)
from repro.obs.timeseries import RingSeries, SeriesStore
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine


def make_sites(n=2, latency=0.1, exchange=10.0):
    engine = SimulationEngine()
    network = Network(engine, base_latency=latency)
    policy = PolicyTree.from_dict({"p": {"a": 1, "b": 1, "c": 2}})
    config = SiteConfig(histogram_interval=60.0,
                        uss_exchange_interval=exchange,
                        ums_refresh_interval=exchange,
                        fcs_refresh_interval=exchange)
    sites = [AequusSite(f"s{i}", engine, network, policy=policy,
                        config=config) for i in range(n)]
    connect_sites(sites)
    return engine, sites


class TestDistanceStats:
    def test_zero_distance_when_usage_matches_policy(self):
        engine, (site,) = make_sites(1)
        # usage proportional to target shares: a=1, b=1, c=2
        for user, hours in (("a", 1.0), ("b", 1.0), ("c", 2.0)):
            site.uss.record_job(UsageRecord(user=user, site="s0", start=0.0,
                                            end=3600.0 * hours))
        engine.run_until(25.0)
        stats = distance_stats(site.fcs.flat_result())
        assert stats["max"] == pytest.approx(0.0, abs=1e-9)

    def test_skew_increases_distance(self):
        engine, (site,) = make_sites(1)
        site.uss.record_job(UsageRecord(user="a", site="s0",
                                        start=0.0, end=3600.0))
        engine.run_until(25.0)
        stats = distance_stats(site.fcs.flat_result())
        assert stats["max"] > 0.2
        assert 0.0 < stats["mean"] <= stats["max"]

    def test_empty_result(self):
        assert distance_stats(None) == {"mean": 0.0, "max": 0.0}


class TestCrossSiteDivergence:
    def test_identical_maps_diverge_zero(self):
        worst, users = cross_site_divergence(
            [{"a": 0.5, "b": 0.2}, {"a": 0.5, "b": 0.2}])
        assert worst == 0.0 and users == 2

    def test_aligned_fast_path(self):
        worst, users = cross_site_divergence(
            [{"a": 0.5, "b": 0.2}, {"a": 0.1, "b": 0.25}])
        assert worst == pytest.approx(0.4) and users == 2

    def test_ragged_maps_fall_back(self):
        worst, users = cross_site_divergence(
            [{"a": 0.5, "b": 0.2}, {"b": 0.3, "c": 0.9}])
        assert worst == pytest.approx(0.1)
        assert users == 1  # only b is shared

    def test_fewer_than_two_sites(self):
        assert cross_site_divergence([]) == (0.0, 0)
        assert cross_site_divergence([{"a": 0.5}]) == (0.0, 0)
        assert cross_site_divergence([{"a": 0.5}, {}]) == (0.0, 0)


class TestConvergenceHalfLife:
    def series(self, samples):
        s = RingSeries("x")
        for t, v in samples:
            s.append(t, v)
        return s

    def test_exponential_decay_half_life(self):
        s = self.series([(float(t), 0.8 * 0.5 ** (t / 10.0))
                         for t in range(0, 60, 2)])
        hl = convergence_half_life(s, 0.0)
        # final value ~0 -> halfway point at v=~0.4, reached near t=10
        assert hl == pytest.approx(10.0, abs=2.0)

    def test_flat_series_has_no_half_life(self):
        s = self.series([(float(t), 0.5) for t in range(5)])
        assert convergence_half_life(s, 0.0) is None

    def test_window_after_t0_only(self):
        s = self.series([(0.0, 9.0), (10.0, 1.0), (20.0, 0.5), (30.0, 0.0)])
        # the pre-t0 spike at t=0 must be ignored
        hl = convergence_half_life(s, 5.0)
        assert hl == pytest.approx(15.0)

    def test_insufficient_samples(self):
        assert convergence_half_life(self.series([(0.0, 1.0)]), 0.0) is None


class TestFairnessRecorder:
    def test_periodic_sampling_populates_all_series(self):
        engine, sites = make_sites(2)
        rec = FairnessRecorder(sites, interval=10.0)
        rec.attach(engine)
        sites[0].uss.record_job(UsageRecord(user="a", site="s0",
                                            start=0.0, end=3600.0))
        engine.run_for(100.0)
        assert rec.samples == 10
        names = set(rec.store.names())
        for site in ("s0", "s1"):
            assert f"distance_mean/{site}" in names
            assert f"distance_max/{site}" in names
        assert "divergence_max" in names and "divergence_users" in names
        assert rec.store.names(prefix="staleness/s0/")  # remote horizons
        assert rec.divergence().last()[1] == pytest.approx(0.0)
        assert rec.staleness_series("s0", "s1") is not None
        assert rec.staleness_series("s0", "ghost") is None

    def test_single_site_skips_divergence(self):
        engine, sites = make_sites(1)
        rec = FairnessRecorder(sites, interval=10.0)
        rec.attach(engine)
        engine.run_for(30.0)
        assert rec.divergence() is None
        assert rec.samples == 3

    def test_divergence_spikes_then_converges(self):
        engine, sites = make_sites(2)
        rec = FairnessRecorder(sites, interval=5.0)
        rec.attach(engine)
        engine.run_for(50.0)
        # a large one-sided burst: sites disagree until it propagates
        sites[0].uss.record_job(UsageRecord(user="a", site="s0",
                                            start=50.0, end=30_000.0))
        engine.run_for(100.0)
        div = rec.divergence()
        assert div.max() > 0.05
        assert div.last()[1] == pytest.approx(0.0, abs=1e-9)
        assert convergence_half_life(div, 50.0) is not None

    def test_stop_cancels_sampling(self):
        engine, sites = make_sites(1)
        rec = FairnessRecorder(sites, interval=10.0)
        task = rec.attach(engine)
        assert rec.attach(engine) is task  # idempotent
        engine.run_for(20.0)
        rec.stop()
        engine.run_for(50.0)
        assert rec.samples == 2

    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError):
            FairnessRecorder([])

    def test_disabled_recorder_is_quiet(self):
        engine, sites = make_sites(1)
        rec = FairnessRecorder(sites, interval=10.0, enabled=False)
        rec.attach(engine)
        engine.run_for(50.0)
        assert rec.samples == 0
        assert len(rec.store) == 0

    def test_kill_switch_snapshot_at_construction(self):
        """Like registries, the recorder freezes the global observability
        flag at construction: built under REPRO_OBS_DISABLED it stays
        quiet even though it is attached and ticking."""
        from repro import obs

        engine, sites = make_sites(1)
        previous = obs.default_enabled()
        obs.set_enabled(False)
        try:
            rec = FairnessRecorder(sites, interval=10.0)
        finally:
            obs.set_enabled(previous)
        rec.attach(engine)
        engine.run_for(30.0)
        assert rec.samples == 0


class TestRenderReport:
    def test_empty_store(self):
        text = render_report(SeriesStore())
        assert "no samples recorded" in text

    def test_sections_and_rows(self):
        store = SeriesStore()
        store.sample("distance_mean/s0", 10.0, 0.25)
        store.sample("staleness/s0/s1", 10.0, 30.0)
        store.sample("divergence_max", 10.0, 0.0)
        store.sample("custom_series", 10.0, 1.0)
        text = render_report(store, title="T")
        assert text.startswith("# T")
        assert "## Policy-vs-usage distance" in text
        assert "## Usage staleness" in text
        assert "## Cross-site divergence" in text
        assert "## Other series" in text
        assert "| distance_mean/s0 | 0.25 |" in text


class TestExpositionParsing:
    TEXT = """# HELP aequus_snapshot_staleness_seconds x
# TYPE aequus_snapshot_staleness_seconds histogram
aequus_snapshot_staleness_seconds_bucket{origin="s1",le="30.0"} 8
aequus_snapshot_staleness_seconds_bucket{origin="s1",le="60.0"} 10
aequus_snapshot_staleness_seconds_bucket{origin="s1",le="+Inf"} 10
aequus_snapshot_staleness_seconds_count{origin="s1"} 10
aequus_snapshot_staleness_seconds_sum{origin="s1"} 250.0
plain_counter 42
"""

    def test_parse_exposition(self):
        samples = parse_exposition(self.TEXT)
        assert ("plain_counter", {}, 42.0) in samples
        buckets = [s for s in samples
                   if s[0] == "aequus_snapshot_staleness_seconds_bucket"]
        assert len(buckets) == 3
        assert buckets[0][1] == {"origin": "s1", "le": "30.0"}

    def test_parse_escaped_label_values(self):
        samples = parse_exposition(
            'm{k="a\\"b\\nc"} 1.0\n')
        assert samples == [("m", {"k": 'a"b\nc'}, 1.0)]

    def test_report_from_daemon(self):
        info = {
            "site": "s0", "time": 120.0, "refresh_interval": 30.0,
            "usage_horizons": {
                "s1": {"horizon": 90.0, "staleness": 30.0},
                "s0": {"horizon": 120.0, "staleness": 0.0},
            },
        }
        text = report_from_daemon(info, self.TEXT)
        assert "site s0" in text
        assert "| s1 | 90 | 30 |" in text
        assert "## Snapshot staleness distribution" in text
        assert "| s1 | 10 | 25 | 60 |" in text  # count / mean / p99 bucket

    def test_report_from_daemon_empty(self):
        text = report_from_daemon({"site": "x"}, "")
        assert "no per-origin horizons" in text
        assert "no staleness observations" in text
