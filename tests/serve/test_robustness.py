"""Protocol robustness: garbage input, restarts, slow clients.

These are the failure modes the serve plane must survive: a broken peer
sending garbage or giant frames, aequusd restarting under a client with
requests in flight, and a client that stops reading while the server keeps
producing replies.
"""

import asyncio
import socket
import time

import pytest

from repro.serve.backend import SiteBackend
from repro.serve.client import SyncAequusClient
from repro.serve.protocol import (ERR_MALFORMED, ERR_OVERSIZED, HEADER,
                                  encode_frame, read_frame)
from repro.serve.server import AequusServer, ServerThread


def raw_exchange(host, port, blobs, expect_replies, timeout=5.0):
    """Write raw bytes, then read up to ``expect_replies`` frames."""

    async def _run():
        reader, writer = await asyncio.open_connection(host, port)
        for blob in blobs:
            writer.write(blob)
        await writer.drain()
        replies = []
        for _ in range(expect_replies):
            try:
                replies.append(await asyncio.wait_for(read_frame(reader),
                                                      timeout))
            except Exception as exc:
                replies.append(exc)
                break
        writer.close()
        return replies

    return asyncio.run(_run())


class TestMalformedFrames:
    def test_malformed_payload_gets_structured_error(self, served):
        _, _, thread = served
        body = b"this is not json {"
        replies = raw_exchange(thread.host, thread.port,
                               [HEADER.pack(len(body)) + body], 1)
        assert replies[0]["ok"] is False
        assert replies[0]["error"]["code"] == ERR_MALFORMED

    def test_connection_survives_malformed_frame(self, served):
        # framing was intact, only the payload was garbage: the next valid
        # request on the same connection must still be answered
        _, _, thread = served
        body = b"[]"
        replies = raw_exchange(
            thread.host, thread.port,
            [HEADER.pack(len(body)) + body,
             encode_frame({"op": "PING", "id": 2})], 2)
        assert replies[0]["error"]["code"] == ERR_MALFORMED
        assert replies[1] == {"id": 2, "ok": True, "pong": True}

    def test_malformed_frames_counted(self, served):
        _, _, thread = served
        body = b"nope"
        raw_exchange(thread.host, thread.port,
                     [HEADER.pack(len(body)) + body], 1)
        assert thread.server.stats["malformed_frames"] >= 1


class TestOversizedFrames:
    def test_oversized_frame_rejected_and_connection_closed(self, small_site):
        _, site = small_site
        server = AequusServer(SiteBackend.for_site(site), max_frame=1024)
        thread = ServerThread(server).start()
        try:
            replies = raw_exchange(
                thread.host, thread.port,
                [HEADER.pack(1 << 20)], 2)  # 1 MiB declared, cap is 1 KiB
            assert replies[0]["ok"] is False
            assert replies[0]["error"]["code"] == ERR_OVERSIZED
            # the stream is no longer frame-aligned: server must close
            assert len(replies) == 1 or not isinstance(replies[1], dict)
            assert server.stats["oversized_frames"] == 1
        finally:
            thread.stop()

    def test_server_never_buffers_the_declared_payload(self, small_site):
        # the reply must arrive although the declared payload never does:
        # proof the server rejected on the prefix instead of buffering
        _, site = small_site
        server = AequusServer(SiteBackend.for_site(site), max_frame=1024)
        thread = ServerThread(server).start()
        try:
            replies = raw_exchange(thread.host, thread.port,
                                   [HEADER.pack(2 ** 31)], 1)
            assert replies[0]["error"]["code"] == ERR_OVERSIZED
        finally:
            thread.stop()


class TestServerRestart:
    def test_client_retries_through_a_restart_mid_batch(self, small_site):
        _, site = small_site
        backend = SiteBackend.for_site(site)
        thread = ServerThread(AequusServer(backend)).start()
        port = thread.port
        users = ["alice", "bob", "carol", "dave"]
        # pool_size=1 forces the follow-up batch onto the connection the
        # restart killed, so the client must notice and re-dial
        with SyncAequusClient(thread.host, port, timeout=2.0, retries=5,
                              backoff_base=0.02, pool_size=1) as client:
            first = client.batch_lookup_fairshare(users)
            assert len(first) == 4
            # kill the daemon under the client's warm pooled connection...
            thread.stop()
            # ...and bring a fresh one up on the same port
            thread2 = ServerThread(AequusServer(backend, port=port)).start()
            try:
                second = client.batch_lookup_fairshare(users)
                assert second == first
                # the dead connection healed either out-of-band (the reader
                # task saw EOF before the next call: a silent reconnect) or
                # in-band (the call failed mid-flight: a counted retry)
                assert client.stats["reconnects"] + \
                    client.stats["retries"] >= 1
            finally:
                thread2.stop()

    def test_requests_in_flight_at_kill_time_are_retried(self, small_site):
        _, site = small_site
        backend = SiteBackend.for_site(site)
        thread = ServerThread(AequusServer(backend)).start()
        port = thread.port
        with SyncAequusClient(thread.host, port, timeout=2.0, retries=8,
                              backoff_base=0.05) as client:
            client.ping()  # warm the pool

            results = []

            def hammer():
                for _ in range(40):
                    results.append(client.get_fairshare("alice"))

            import threading
            worker = threading.Thread(target=hammer)
            worker.start()
            thread.stop()  # rip the server out mid-stream
            thread2 = ServerThread(AequusServer(backend, port=port)).start()
            worker.join(30.0)
            try:
                assert not worker.is_alive()
                assert len(results) == 40
                assert set(results) == {site.fcs.fairshare_value("alice")}
            finally:
                thread2.stop()


class TestSlowClientBackpressure:
    def test_server_bounds_memory_for_a_non_reading_client(self, small_site):
        _, site = small_site
        max_inflight = 8
        server = AequusServer(SiteBackend.for_site(site),
                              max_inflight=max_inflight,
                              write_buffer_limit=4096)
        thread = ServerThread(server).start()
        n_requests = 400
        # PING echoes its payload, so each reply is ~8 KiB: 400 of them is
        # ~3 MiB, far beyond what the write buffer + socket buffers can hide
        payload = encode_frame({"op": "PING", "id": 1, "payload": "x" * 8192})
        # shrink our receive window BEFORE connecting (after the handshake
        # the advertised window is already negotiated and the option is moot)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        sock.connect((thread.host, thread.port))
        try:
            sock.settimeout(10.0)
            blob = payload * n_requests
            sent = 0
            # send without ever reading; our own send may block once the
            # server stops consuming, so use a short timeout and give up
            sock.settimeout(0.5)
            try:
                while sent < len(blob):
                    sent += sock.send(blob[sent:sent + 65536])
            except socket.timeout:
                pass
            time.sleep(1.0)
            processed = server.stats["requests"]
            # the server must have stalled its reader: far fewer requests
            # executed than the client pushed at it, bounded by the reply
            # queue + write buffer + socket buffers, not by our send volume
            assert processed < n_requests
            # now drain: every processed request's reply must still arrive
            sock.settimeout(10.0)
            received = bytearray()
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                received.extend(chunk)
                if server.stats["requests"] >= min(sent // len(payload),
                                                   n_requests):
                    # keep reading until the pipe goes quiet
                    sock.settimeout(0.5)
            assert len(received) > 0
        finally:
            sock.close()
            thread.stop()

    def test_inflight_cap_limits_unanswered_requests(self, small_site):
        # with the client reading normally, the queue bound is invisible:
        # everything completes
        _, site = small_site
        server = AequusServer(SiteBackend.for_site(site), max_inflight=4)
        thread = ServerThread(server).start()
        try:
            with SyncAequusClient(thread.host, thread.port) as client:
                values = [client.get_fairshare("alice") for _ in range(50)]
            assert len(values) == 50
        finally:
            thread.stop()
