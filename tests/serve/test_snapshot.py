"""Snapshot store semantics: publication hook, atomicity, lookups."""

import threading

import pytest

from repro.core.projection import DictionaryOrderingProjection
from repro.serve.snapshot import SnapshotStore, snapshot_from_fcs


class TestPublicationHook:
    def test_store_attaches_and_sees_current_state(self, small_site):
        _, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        snap = store.current()
        assert snap is not None
        assert snap.site == "a"
        assert snap.values == site.fcs.values()

    def test_every_refresh_publishes(self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        before = store.published
        engine.run_until(engine.now + 15.0)  # three refresh periods
        assert store.published >= before + 3

    def test_cached_epoch_refresh_still_publishes_fresh_timestamp(
            self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        first = store.current()
        site.fcs.refresh()  # no usage change: cache hit path
        second = store.current()
        assert second.seq > first.seq
        assert second.computed_at >= first.computed_at
        assert second.result is first.result  # not recomputed, just restamped

    def test_projection_switch_publishes(self, small_site):
        _, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        before = store.current()
        site.fcs.set_projection(DictionaryOrderingProjection())
        after = store.current()
        assert after.seq > before.seq
        assert after.values != before.values

    def test_seq_is_monotone(self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        seqs = [store.current().seq]
        for _ in range(4):
            engine.run_until(engine.now + 5.0)
            seqs.append(store.current().seq)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestSnapshotQueries:
    def test_lookup_known_user_matches_fcs(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        value, known = snap.lookup("alice")
        assert known
        assert value == site.fcs.fairshare_value("alice")

    def test_lookup_by_full_path(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        by_name = snap.lookup("alice")
        by_path = snap.lookup("/hpc/alice")
        assert by_name == by_path

    def test_unknown_user_gets_fallback_and_flag(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        value, known = snap.lookup("ghost")
        assert not known
        assert value == site.fcs.unknown_user_value

    def test_identity_map_is_a_point_in_time_copy(self, small_site):
        _, site = small_site
        site.fcs.register_identity("/DC=org/CN=alice", "alice")
        snap = snapshot_from_fcs(site.fcs)
        assert snap.lookup("/DC=org/CN=alice")[1]
        # aliases registered after the snapshot do not leak into it
        site.fcs.register_identity("/DC=org/CN=bob", "bob")
        assert not snap.lookup("/DC=org/CN=bob")[1]

    def test_vector_for_leaf(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        vector = snap.vector("alice")
        assert vector is not None
        assert vector == site.fcs.vector("alice")

    def test_vector_for_unknown_is_none(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        assert snap.vector("ghost") is None

    def test_snapshot_is_immutable(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        with pytest.raises(AttributeError):
            snap.seq = 999
        with pytest.raises(TypeError):
            snap.values["alice"] = 1.0

    def test_age(self, small_site):
        engine, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        t0 = snap.computed_at
        assert snap.age(t0) == 0.0
        assert snap.age(t0 + 12.5) == 12.5
        assert snap.age(t0 - 1.0) == 0.0  # clock skew clamps to zero


class TestStoreConcurrency:
    def test_wait_for_seq(self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        target = store.current().seq + 1

        waiter_saw = []

        def wait():
            waiter_saw.append(store.wait_for_seq(target, timeout=5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        engine.run_until(engine.now + 5.0)  # next refresh publishes
        thread.join(5.0)
        assert waiter_saw == [True]

    def test_wait_for_seq_timeout(self, small_site):
        _, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        assert not store.wait_for_seq(store.current().seq + 100, timeout=0.05)

    def test_old_snapshot_stays_consistent_after_new_publishes(
            self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        old = store.current()
        old_values = dict(old.values)
        # change usage so the next refresh recomputes different values
        from repro.core.usage import UsageRecord
        site.uss.record_job(UsageRecord(user="bob", site="a",
                                        start=engine.now,
                                        end=engine.now + 5000.0))
        engine.run_until(engine.now + 15.0)
        new = store.current()
        assert new.seq > old.seq
        assert dict(old.values) == old_values  # held reference never moved
        assert new.values["/hpc/bob"] != old.values["/hpc/bob"]


class TestSnapshotHorizons:
    def test_snapshot_carries_fcs_horizons(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        assert snap.horizons == site.fcs.usage_horizons()
        assert snap.horizons["a"] > 0.0
        assert snap.describe()["origins"] == len(snap.horizons)

    def test_staleness_clamps_to_zero(self, small_site):
        _, site = small_site
        snap = snapshot_from_fcs(site.fcs)
        horizon = snap.horizons["a"]
        assert snap.staleness(horizon + 7.5)["a"] == pytest.approx(7.5)
        assert snap.staleness(horizon - 5.0)["a"] == 0.0

    def test_horizons_are_point_in_time(self, small_site):
        engine, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        old = store.current()
        old_horizon = old.horizons["a"]
        engine.run_until(engine.now + 15.0)
        new = store.current()
        assert new.horizons["a"] > old_horizon
        assert old.horizons["a"] == old_horizon  # held snapshot unchanged
