"""The METRICS op, the metrics CLI, snapshot staleness, and the
connections_active gauge under abnormal-disconnect churn."""

import socket
import time

import pytest

from repro.cli import main
from repro.obs.export import render_many
from repro.serve.backend import SiteBackend
from repro.serve.protocol import HEADER, encode_frame
from repro.serve.server import AequusServer, ServerThread
from repro.serve.snapshot import SnapshotStore

from .test_robustness import raw_exchange


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestMetricsOp:
    def test_scrape_is_prometheus_exposition(self, served, client):
        client.lookup_fairshare("alice")
        text = client.metrics()
        assert text.endswith("\n")
        # server, FCS, USS/UMS and cache series in one scrape (the site
        # registry is shared across the service stack)
        assert "# TYPE aequus_requests_total counter" in text
        assert "# TYPE aequus_request_seconds histogram" in text
        assert "aequus_fcs_refreshes_total" in text
        assert "aequus_refresh_seconds_bucket" in text
        assert "aequus_uss_records_total" in text
        assert "aequus_ums_refreshes_total" in text
        assert "aequus_cache_lookups_total" in text
        assert "aequus_connections_active" in text

    def test_scrape_carries_content_type(self, client):
        reply = client.batch([{"op": "METRICS"}])[0]
        assert reply["ok"] is True
        assert reply["content_type"] == "text/plain; version=0.0.4"

    def test_scrape_matches_direct_render_byte_for_byte(self, served, client):
        _, _, thread = served
        client.ping()
        client.lookup_fairshare("alice")
        text = client.metrics()
        server = thread.server
        # nothing ran since the scrape (engine parked, connection idle), so
        # a direct render of the same registries must agree exactly
        assert text == render_many([server.registry,
                                    server.backend.registry])

    def test_scrape_observes_itself_exactly_once(self, served, client):
        _, _, thread = served
        before = thread.server.stats["requests"]
        text = client.metrics()
        assert thread.server.stats["requests"] == before + 1
        # ...and the reply already includes its own request
        assert f"aequus_requests_total" in text
        line = next(l for l in text.splitlines()
                    if l.startswith("aequus_requests_total"))
        assert line.rsplit(" ", 1)[1] == str(before + 1)

    def test_metrics_op_is_never_latency_timed(self, served, client):
        _, _, thread = served
        client.metrics()
        client.metrics()
        hist = thread.server._op_latency["METRICS"]
        assert hist.count == 0


class TestMetricsCli:
    def test_cli_prints_the_scrape(self, served, capsys):
        _, _, thread = served
        rc = main(["metrics", "--host", thread.host,
                   "--port", str(thread.port)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE aequus_requests_total counter" in out
        assert "aequus_refresh_seconds_bucket" in out

    def test_cli_unreachable_daemon_exits_nonzero(self, capsys):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        rc = main(["metrics", "--port", str(port), "--timeout", "0.5"])
        assert rc == 2
        assert "unreachable" in capsys.readouterr().err


class TestSnapshotStaleness:
    def test_info_reports_age_and_staleness(self, client):
        info = client.info()["info"]
        assert info["snapshot_age"] >= 0.0
        assert info["staleness"] == "fresh"

    def test_staleness_degrades_with_age(self, small_site):
        engine, site = small_site
        backend = SiteBackend.for_site(site)
        site.fcs.stop()  # refresh loop gone: the snapshot only ages
        interval = backend.refresh_interval
        now = site.fcs.computed_at
        assert backend.store.staleness(now + interval, interval) == "fresh"
        assert backend.store.staleness(now + 2 * interval, interval) == "stale"
        assert backend.store.staleness(now + 4 * interval, interval) == "dead"

    def test_empty_store_has_no_age_or_verdict(self):
        store = SnapshotStore()
        assert store.age(100.0) is None
        assert store.staleness(100.0, 30.0) is None

    def test_store_age_tracks_current_snapshot(self, small_site):
        _, site = small_site
        store = SnapshotStore.for_fcs(site.fcs)
        t0 = store.current().computed_at
        assert store.age(t0) == 0.0
        assert store.age(t0 + 7.5) == 7.5


class TestConnectionGaugeChurn:
    """Satellite: no disconnect path may leak connections_active."""

    def _gauge(self, server):
        return server.stats["connections_active"]

    def test_clean_connect_disconnect(self, served):
        _, _, thread = served
        for _ in range(3):
            raw_exchange(thread.host, thread.port,
                         [encode_frame({"op": "PING", "id": 1})], 1)
        assert wait_until(lambda: self._gauge(thread.server) == 0)
        assert thread.server.stats["connections"] >= 3

    def test_oversized_frame_abort_releases_the_gauge(self, small_site):
        _, site = small_site
        server = AequusServer(SiteBackend.for_site(site), max_frame=1024)
        thread = ServerThread(server).start()
        try:
            for _ in range(5):
                raw_exchange(thread.host, thread.port,
                             [HEADER.pack(1 << 20)], 2)
            assert wait_until(lambda: self._gauge(server) == 0)
            assert self._gauge(server) == 0  # and never negative
        finally:
            thread.stop()

    def test_malformed_frame_then_abrupt_close(self, served):
        _, _, thread = served
        body = b"garbage {"
        for _ in range(5):
            # close without reading the error reply
            sock = socket.create_connection((thread.host, thread.port))
            sock.sendall(HEADER.pack(len(body)) + body)
            sock.close()
        assert wait_until(lambda: self._gauge(thread.server) == 0)

    def test_partial_frame_then_close(self, served):
        _, _, thread = served
        for _ in range(5):
            sock = socket.create_connection((thread.host, thread.port))
            sock.sendall(HEADER.pack(4096) + b"only-a-prefix")
            sock.close()
        assert wait_until(lambda: self._gauge(thread.server) == 0)

    def test_non_reading_client_killed_under_backpressure(self, small_site):
        # fill the bounded reply queue (writer blocked on a dead socket),
        # then vanish: the reader must still unwind and drop the gauge
        _, site = small_site
        server = AequusServer(SiteBackend.for_site(site), max_inflight=4,
                              write_buffer_limit=4096)
        thread = ServerThread(server).start()
        try:
            payload = encode_frame(
                {"op": "PING", "id": 1, "payload": "x" * 8192})
            for _ in range(3):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
                sock.connect((thread.host, thread.port))
                sock.settimeout(0.5)
                try:
                    for _ in range(100):
                        sock.sendall(payload)
                except socket.timeout:
                    pass
                # abort (RST) instead of FIN: the writer dies mid-drain
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                b"\x01\x00\x00\x00\x00\x00\x00\x00")
                sock.close()
            assert wait_until(lambda: self._gauge(server) == 0, timeout=10.0)
        finally:
            thread.stop()

    def test_gauge_matches_live_connections(self, served, client):
        _, _, thread = served
        client.ping()  # the pooled connection is dialed lazily
        assert wait_until(lambda: self._gauge(thread.server) == 1)
        total = thread.server.stats["connections"]
        assert total >= 1
