"""Binary (v2) wire protocol: negotiation matrix, frames, recovery.

The upgrade contract: clients send a JSON HELLO on every new connection
and only speak binary when the server advertises ``binary: 2``.  Every
other cell of the matrix — binary client against a JSON-only server,
JSON client against a binary server, a server predating HELLO — must
degrade to plain JSON without the caller noticing.  Malformed binary
frames get structured error statuses, and a leaf-table recompile
invalidates cached ids via EPOCH_CHANGED, which clients recover from by
re-resolving names.
"""

import asyncio
import random

import pytest

from repro.serve import server as server_module
from repro.serve.client import AequusServerError, SyncAequusClient
from repro.serve.protocol import (BF_BY_ID, BIN_HEADER, BIN_REQ_MAGIC,
                                  BOP_BATCH_FAIRSHARE, BOP_GET_FAIRSHARE,
                                  BOP_PING, BST_BAD_BATCH, BST_MALFORMED,
                                  BST_OK, BST_OVERSIZED, BST_UNSUPPORTED_OP,
                                  bin_request, read_bin_reply)
from repro.serve.server import AequusServer, ServerThread


def _bin_exchange(host, port, frames, expect_replies):
    """Open a raw connection, send frames, read binary replies."""

    async def _run():
        reader, writer = await asyncio.open_connection(host, port)
        for frame in frames:
            writer.write(frame)
        await writer.drain()
        replies = []
        try:
            for _ in range(expect_replies):
                replies.append(await asyncio.wait_for(
                    read_bin_reply(reader), 5.0))
        finally:
            writer.close()
        return replies

    return asyncio.run(_run())


class TestNegotiationMatrix:
    def test_binary_client_binary_server_upgrades(self, served, client):
        _, _, thread = served
        value, known = client.lookup_fairshare("alice")
        assert known is True
        client.lookup_fairshare("alice")  # second hit goes by leaf id
        assert client.stats["binary_upgrades"] >= 1
        assert thread.server.stats["binary_requests"] >= 2

    def test_binary_client_json_only_server_falls_back(self, small_site):
        from repro.serve.backend import SiteBackend
        _, site = small_site
        thread = ServerThread(AequusServer(SiteBackend.for_site(site),
                                           binary=False)).start()
        try:
            with SyncAequusClient(thread.host, thread.port,
                                  timeout=5.0) as client:
                hello = client.hello()
                assert hello["binary"] == 0
                value, known = client.lookup_fairshare("alice")
                assert known is True
                assert client.get_vector("alice").elements
                assert client.report_usage("alice", 0.0, 10.0) is True
                assert client.batch_lookup_fairshare(
                    ["alice", "bob"])["bob"][1] is True
                assert client.stats["binary_upgrades"] == 0
                assert thread.server.stats["binary_requests"] == 0
        finally:
            thread.stop()

    def test_binary_client_pre_hello_server_falls_back(self, served,
                                                       monkeypatch):
        """A server from before the HELLO op answers UNSUPPORTED_OP; the
        client must treat that as JSON-only, not an error."""
        _, _, thread = served
        monkeypatch.setattr(
            server_module, "OPS",
            frozenset(op for op in server_module.OPS if op != "HELLO"))
        with SyncAequusClient(thread.host, thread.port,
                              timeout=5.0) as client:
            value, known = client.lookup_fairshare("alice")
            assert known is True
            assert client.stats["binary_upgrades"] == 0

    def test_json_client_binary_server_unmodified(self, served):
        """binary=False reproduces the pre-upgrade client byte for byte —
        the compatibility guarantee for deployed JSON clients."""
        _, _, thread = served
        with SyncAequusClient(thread.host, thread.port, binary=False,
                              timeout=5.0) as client:
            value, known = client.lookup_fairshare("alice")
            assert known is True
            assert client.get_vector("alice").elements
            assert client.resolve_identity("sys_alice") == "alice"
            info = client.info()
            assert info["server"]["binary"] == 2  # offered, just unused
        assert thread.server.stats["binary_requests"] == 0


class TestMalformedBinaryFrames:
    def test_unknown_opcode_is_structured_error(self, served):
        _, _, thread = served
        replies = _bin_exchange(
            thread.host, thread.port,
            [bin_request(99, 1, b""), bin_request(BOP_PING, 2, b"hi")],
            expect_replies=2)
        status, _, rid, _ = replies[0]
        assert (status, rid) == (BST_UNSUPPORTED_OP, 1)
        # the connection survived: the PING after it still answered
        status, _, rid, body = replies[1]
        assert (status, rid, body) == (BST_OK, 2, b"hi")

    def test_bad_by_id_body_is_malformed(self, served):
        _, _, thread = served
        replies = _bin_exchange(
            thread.host, thread.port,
            [bin_request(BOP_GET_FAIRSHARE, 7, b"\x01\x02", flags=BF_BY_ID)],
            expect_replies=1)
        assert replies[0][0] == BST_MALFORMED

    def test_non_utf8_name_is_malformed(self, served):
        _, _, thread = served
        replies = _bin_exchange(
            thread.host, thread.port,
            [bin_request(BOP_GET_FAIRSHARE, 8, b"\xff\xfe\xfd")],
            expect_replies=1)
        assert replies[0][0] == BST_MALFORMED

    def test_batch_without_by_id_flag_rejected(self, served):
        _, _, thread = served
        replies = _bin_exchange(
            thread.host, thread.port,
            [bin_request(BOP_BATCH_FAIRSHARE, 9, b"\x00" * 8, flags=0)],
            expect_replies=1)
        assert replies[0][0] == BST_BAD_BATCH

    def test_oversized_binary_frame_errors_and_closes(self, small_site):
        from repro.serve.backend import SiteBackend
        _, site = small_site
        thread = ServerThread(AequusServer(SiteBackend.for_site(site),
                                           max_frame=1024)).start()
        try:
            header = BIN_HEADER.pack(BIN_REQ_MAGIC, BOP_GET_FAIRSHARE, 0,
                                     3, 1 << 20)

            async def _run():
                reader, writer = await asyncio.open_connection(
                    thread.host, thread.port)
                writer.write(header)
                await writer.drain()
                status, _, rid, _ = await asyncio.wait_for(
                    read_bin_reply(reader), 5.0)
                # ...and the server hangs up rather than buffering 1MiB
                eof = await asyncio.wait_for(reader.read(), 5.0)
                writer.close()
                return status, rid, eof

            status, rid, eof = asyncio.run(_run())
            assert (status, rid, eof) == (BST_OVERSIZED, 3, b"")
        finally:
            thread.stop()


class TestEpochChangedRecovery:
    def test_cached_leaf_id_survives_policy_recompile(self, served, client):
        engine, site, thread = served
        before = client.lookup_fairshare("alice")
        assert before[1] is True
        assert client.lookup_fairshare("alice") == before  # id-cached now
        # grow the policy tree: the FCS recompiles its flat table on the
        # next refresh and every old leaf id is invalidated
        site.pds.set_share("/hpc/eve", 5)
        engine.run_until(engine.now
                         + site.config.fcs_refresh_interval + 1.0)
        value, known = client.lookup_fairshare("alice")
        assert known is True
        assert client.stats["epoch_changes"] >= 1
        # the re-minted id works and subsequent lookups stay binary
        assert client.lookup_fairshare("alice") == (value, known)
        assert client.lookup_fairshare("eve")[1] is True

    def test_batch_recovers_from_recompile(self, served, client):
        engine, site, _ = served
        users = ["alice", "bob", "carol", "dave"]
        first = client.batch_lookup_fairshare(users)
        assert all(first[u][1] for u in users)
        site.pds.set_share("/astro/fred", 2)
        engine.run_until(engine.now
                         + site.config.fcs_refresh_interval + 1.0)
        second = client.batch_lookup_fairshare(users)
        assert all(second[u][1] for u in users)


class TestFullJitterBackoff:
    def test_backoff_is_full_jitter_within_cap(self):
        from repro.serve.client import AequusClient
        client = AequusClient(backoff_base=0.05, backoff_max=1.0,
                              rng=random.Random(7))
        for attempt in range(8):
            cap = min(1.0, 0.05 * 2 ** attempt)
            samples = [client._backoff(attempt) for _ in range(300)]
            assert all(0.0 <= s <= cap for s in samples)
            # uniform over [0, cap]: actually spread out, not clustered
            # at the exponential mark the way pre-jitter backoff was
            assert len(set(samples)) > 100
            assert max(samples) > 0.7 * cap
            assert min(samples) < 0.3 * cap

    def test_backoff_cap_never_exceeds_max(self):
        from repro.serve.client import AequusClient
        client = AequusClient(backoff_base=0.5, backoff_max=2.0,
                              rng=random.Random(3))
        samples = [client._backoff(30) for _ in range(100)]
        assert all(0.0 <= s <= 2.0 for s in samples)
        assert max(samples) > 1.0  # the cap (not the base) is in force
