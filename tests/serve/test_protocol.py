"""Framing-layer tests: length prefixes, caps, malformed payloads."""

import asyncio

import pytest

from repro.serve.protocol import (HEADER, PROTOCOL_VERSION, ConnectionClosed,
                                  FrameTooLarge, MalformedFrame,
                                  decode_payload, encode_frame, error_reply,
                                  ok_reply, read_frame)


def feed_reader(*chunks: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


def read_one(data: bytes, max_frame: int = 1 << 20):
    async def _run():
        return await read_frame(feed_reader(data), max_frame)
    return asyncio.run(_run())


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"op": "PING", "id": 7})
        assert read_one(frame) == {"op": "PING", "id": 7}

    def test_multiple_frames_in_sequence(self):
        frames = encode_frame({"id": 1}) + encode_frame({"id": 2})

        async def _run():
            reader = feed_reader(frames)
            return (await read_frame(reader), await read_frame(reader))

        first, second = asyncio.run(_run())
        assert (first["id"], second["id"]) == (1, 2)

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        (length,) = HEADER.unpack(frame[:4])
        assert length == len(frame) - 4

    def test_clean_eof_raises_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_one(b"")

    def test_truncated_frame_raises_connection_closed(self):
        frame = encode_frame({"op": "PING"})
        with pytest.raises(ConnectionClosed):
            read_one(frame[:-2])

    def test_oversized_frame_rejected_before_payload_read(self):
        # declared length over the cap must raise without the body present
        with pytest.raises(FrameTooLarge):
            read_one(HEADER.pack(10_000), max_frame=1024)

    def test_at_cap_is_allowed(self):
        payload = {"pad": "x" * 100}
        frame = encode_frame(payload)
        assert read_one(frame, max_frame=len(frame) - 4) == payload

    def test_garbage_payload_is_malformed(self):
        body = b"\xff\xfe not json"
        with pytest.raises(MalformedFrame):
            read_one(HEADER.pack(len(body)) + body)

    def test_non_object_payload_is_malformed(self):
        body = b"[1, 2, 3]"
        with pytest.raises(MalformedFrame):
            read_one(HEADER.pack(len(body)) + body)


class TestPayloads:
    def test_decode_payload_object(self):
        assert decode_payload(b'{"x": 1}') == {"x": 1}

    def test_ok_reply_shape(self):
        reply = ok_reply(3, value=0.5)
        assert reply == {"id": 3, "ok": True, "value": 0.5}

    def test_error_reply_shape(self):
        reply = error_reply(9, "UNKNOWN_USER", "no such user")
        assert reply["ok"] is False
        assert reply["error"]["code"] == "UNKNOWN_USER"
        assert reply["error"]["message"] == "no such user"

    def test_protocol_version_pinned(self):
        # bump deliberately; the probe and BAD_VERSION tests key off it
        assert PROTOCOL_VERSION == 1
