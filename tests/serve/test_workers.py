"""Sharded serve plane: worker pool over shared-memory snapshots.

Forks real worker processes (small counts, generous timeouts) and
exercises the cross-process contracts: queries answered from the mapped
snapshot in both protocols, worker identity in INFO, fleet-wide stats
aggregation (``connections_active`` sums over every worker, whichever
one answers), usage ingress riding the pipe back to the parent, crash
restart, and clean shutdown with nothing left in /dev/shm.
"""

import glob
import os
import signal
import time

import pytest

from repro.serve.client import SyncAequusClient
from repro.serve.shm import ShmSnapshotWriter
from repro.serve.workers import WorkerPool


def _wait(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def sharded(small_site):
    """The small site served by a 2-worker pool; usage lands in a list."""
    _, site = small_site
    usage = []
    writer = ShmSnapshotWriter(site.name)
    writer.attach_fcs(site.fcs, irs=site.irs)
    pool = WorkerPool(writer.name, 2, site=site.name,
                      usage_sink=lambda *record: usage.append(record),
                      refresh_interval=site.config.fcs_refresh_interval)
    pool.start()
    assert pool.wait_ready(15.0)
    yield site, pool, usage
    pool.stop()
    writer.close()


class TestShardedServing:
    def test_both_protocols_answer_from_shm(self, sharded, small_site):
        site, pool, _ = sharded
        expect = site.fcs.fairshare_value("alice")
        with SyncAequusClient(port=pool.port, timeout=5.0) as binary:
            value, known = binary.lookup_fairshare("alice")
            assert known is True and value == pytest.approx(expect)
            assert binary.get_vector("alice").elements
            assert binary.resolve_identity("sys_alice") == "alice"
            assert binary.stats["binary_upgrades"] >= 1
        with SyncAequusClient(port=pool.port, binary=False,
                              timeout=5.0) as json_only:
            value, known = json_only.lookup_fairshare("alice")
            assert known is True and value == pytest.approx(expect)
            batch = json_only.batch_lookup_fairshare(["alice", "bob"])
            assert batch["bob"][1] is True

    def test_info_carries_worker_identity(self, sharded):
        _, pool, _ = sharded
        with SyncAequusClient(port=pool.port, timeout=5.0) as client:
            server = client.info()["server"]
        assert server["mode"] == "shm"
        assert server["workers"] == 2
        assert server["worker"] in (0, 1)
        assert server["pid"] in pool.worker_pids()
        assert server["binary"] == 2

    def test_connections_active_sums_across_workers(self, sharded):
        """However the kernel spread them, INFO must report every open
        connection — the aggregation bug this PR fixes."""
        _, pool, _ = sharded
        held = [SyncAequusClient(port=pool.port, timeout=5.0)
                for _ in range(4)]
        try:
            for client in held:
                client.ping()  # force the pooled connection open

            def total():
                return held[0].info()["stats"]["connections_active"]

            assert _wait(lambda: total() >= 4, timeout=10.0), \
                f"aggregated connections_active stuck at {total()}"
        finally:
            for client in held:
                client.close()

    def test_usage_reports_reach_the_parent(self, sharded):
        _, pool, usage = sharded
        with SyncAequusClient(port=pool.port, timeout=5.0) as client:
            assert client.report_usage("alice", 100.0, 400.0, cores=2) is True
        assert _wait(lambda: len(usage) == 1, timeout=10.0)
        assert usage[0] == ("alice", 100.0, 400.0, 2)

    def test_metrics_scrape_includes_worker_lines(self, sharded):
        _, pool, _ = sharded
        with SyncAequusClient(port=pool.port, timeout=5.0) as client:
            text = client.metrics()
        assert 'aequus_worker_requests_total{worker="' in text
        assert 'aequus_worker_connections_active{worker="' in text

    def test_crashed_worker_restarts_and_serves(self, sharded):
        _, pool, _ = sharded
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        assert _wait(lambda: pool.restarts >= 1, timeout=10.0)
        assert _wait(lambda: pool.alive() == 2, timeout=10.0)
        assert pool.wait_ready(15.0)
        with SyncAequusClient(port=pool.port, pool_size=1, retries=4,
                              backoff_base=0.05, timeout=5.0) as client:
            assert client.lookup_fairshare("bob")[1] is True
        assert victim not in pool.worker_pids()


class TestShardedLifecycle:
    def test_clean_shutdown_leaves_no_segments(self, small_site):
        _, site = small_site
        writer = ShmSnapshotWriter(site.name, token="wk1")
        writer.attach_fcs(site.fcs)
        pool = WorkerPool(writer.name, 2, site=site.name).start()
        assert pool.wait_ready(15.0)
        stats_name = pool._stats.name
        pool.stop()
        writer.close()
        assert glob.glob("/dev/shm/aqshm_wk1*") == []
        assert not os.path.exists(f"/dev/shm/{stats_name}")

    def test_daemon_workers_mode_end_to_end(self, small_site):
        from repro.serve.daemon import AequusDaemon
        engine, site = small_site
        daemon = AequusDaemon(engine, site, port=0, tick_interval=0.1,
                              workers=2).start()
        try:
            with SyncAequusClient(port=daemon.port, timeout=5.0) as client:
                assert client.lookup_fairshare("alice")[1] is True
                assert client.report_usage("alice", 0.0, 50.0) is True
                stats = client.info()["stats"]
                assert stats["workers"] == 2
            assert daemon.stats()["workers"] == 2
        finally:
            daemon.stop()
