"""End-to-end server/client tests over a real TCP connection."""

import asyncio

import pytest

from repro.serve.client import (AequusClient, AequusServerError,
                                AequusTransportError, SyncAequusClient)
from repro.serve.protocol import (ERR_BAD_VERSION, ERR_NOT_A_LEAF,
                                  ERR_UNSUPPORTED_OP, PROTOCOL_VERSION)
from repro.services.irs import IdentityResolutionError


class TestSingleKeyOps:
    def test_get_fairshare_matches_direct_dispatch(self, served, client):
        _, site, _ = served
        assert client.get_fairshare("alice") == \
            site.fcs.fairshare_value("alice")

    def test_lookup_flags_unknown_user(self, served, client):
        _, site, _ = served
        value, known = client.lookup_fairshare("ghost")
        assert not known
        assert value == site.fcs.unknown_user_value

    def test_full_path_lookup(self, served, client):
        _, site, _ = served
        assert client.get_fairshare("/astro/carol") == \
            site.fcs.fairshare_value("carol")

    def test_get_vector_round_trips(self, served, client):
        _, site, _ = served
        assert client.get_vector("alice") == site.fcs.vector("alice")

    def test_vector_for_internal_node_is_not_a_leaf(self, served, client):
        with pytest.raises(AequusServerError) as err:
            client.get_vector("/hpc")
        assert err.value.code == ERR_NOT_A_LEAF

    def test_resolve_identity(self, served, client):
        assert client.resolve_identity("sys_alice") == "alice"

    def test_resolve_unknown_raises_identity_error(self, served, client):
        with pytest.raises(IdentityResolutionError):
            client.resolve_identity("nobody")

    def test_report_usage_lands_in_uss_at_next_tick(self, served, client):
        engine, site, _ = served
        before = site.uss.local.total("bob")
        assert client.report_usage("bob", start=engine.now,
                                   end=engine.now + 300.0)
        assert site.uss.records_enqueued >= 1
        engine.run_until(engine.now + 5.0)  # exchange tick drains ingress
        assert site.uss.local.total("bob") == pytest.approx(before + 300.0)

    def test_ping_and_info(self, served, client):
        assert client.ping()["pong"] is True
        reply = client.info()
        assert reply["protocol"] == PROTOCOL_VERSION
        assert reply["info"]["snapshot"]["site"] == "a"
        assert reply["info"]["snapshot"]["users"] == 4


class TestBatch:
    def test_batch_lookup(self, served, client):
        _, site, _ = served
        users = ["alice", "bob", "carol", "dave"]
        values = client.batch_lookup_fairshare(users)
        for user in users:
            assert values[user][0] == site.fcs.fairshare_value(user)

    def test_batch_reports_per_item_errors_in_place(self, served, client):
        replies = client.batch([
            {"op": "GET_FAIRSHARE", "user": "alice"},
            {"op": "GET_VECTOR", "user": "ghost"},
            {"op": "NO_SUCH_OP"},
        ])
        assert replies[0]["ok"] is True
        assert replies[1]["ok"] is False
        assert replies[2]["error"]["code"] == ERR_UNSUPPORTED_OP

    def test_batch_is_served_from_one_snapshot(self, served, client):
        replies = client.batch(
            [{"op": "GET_FAIRSHARE", "user": u}
             for u in ["alice", "bob", "carol", "dave"]])
        seqs = {r["seq"] for r in replies}
        assert len(seqs) == 1

    def test_nested_batch_rejected(self, served, client):
        replies = client.batch([{"op": "BATCH", "requests": []}])
        assert replies[0]["ok"] is False

    def test_mixed_batch(self, served, client):
        engine, site, _ = served
        replies = client.batch([
            {"op": "RESOLVE_IDENTITY", "user": "sys_bob"},
            {"op": "REPORT_USAGE", "user": "bob", "start": engine.now,
             "end": engine.now + 60.0},
            {"op": "PING"},
        ])
        assert replies[0]["identity"] == "bob"
        assert replies[1]["accepted"] is True
        assert replies[2]["pong"] is True


class TestServerBehaviour:
    def test_coalescing_counts_repeated_keys(self, served):
        # the reply cache is a JSON-path feature (binary by-id replies are
        # already minimal), so pin it with a JSON-only client
        _, _, thread = served
        from repro.serve.client import SyncAequusClient
        before = thread.server.stats["coalesced"]
        with SyncAequusClient(thread.host, port=thread.port,
                              binary=False, timeout=5.0) as json_client:
            for _ in range(10):
                json_client.get_fairshare("alice")
        assert thread.server.stats["coalesced"] >= before + 9

    def test_bad_version_rejected(self, served):
        # the real client always stamps its own version; speak raw frames
        _, _, thread = served
        from repro.serve.protocol import encode_frame, read_frame

        async def _run():
            reader, writer = await asyncio.open_connection(
                thread.host, thread.port)
            writer.write(encode_frame({"op": "PING", "v": 99, "id": 1}))
            await writer.drain()
            reply = await read_frame(reader)
            writer.close()
            return reply

        reply = asyncio.run(_run())
        assert reply["ok"] is False
        assert reply["error"]["code"] == ERR_BAD_VERSION

    def test_pipelined_requests_all_answered(self, served):
        _, site, thread = served

        async def _run():
            async with AequusClient(thread.host, thread.port) as c:
                return await asyncio.gather(*[
                    c.get_fairshare("alice") for _ in range(200)])

        values = asyncio.run(_run())
        assert len(values) == 200
        assert set(values) == {site.fcs.fairshare_value("alice")}

    def test_snapshot_seq_advances_for_clients(self, served, client):
        engine, _, _ = served
        first = client.batch([{"op": "GET_FAIRSHARE", "user": "alice"}])
        engine.run_until(engine.now + 5.0)  # next FCS refresh
        second = client.batch([{"op": "GET_FAIRSHARE", "user": "alice"}])
        assert second[0]["seq"] > first[0]["seq"]


class TestTransportResilience:
    def test_unreachable_server_raises_transport_error(self):
        with SyncAequusClient("127.0.0.1", 1, timeout=0.2, retries=1,
                              backoff_base=0.01) as client:
            with pytest.raises(AequusTransportError):
                client.ping()

    def test_stats_track_requests(self, served, client):
        client.ping()
        client.ping()
        assert client.stats["requests"] >= 2
        assert client.stats["transport_errors"] == 0


class TestFreshnessSurface:
    """GET_FAIRSHARE with horizons, INFO usage_horizons, detail client."""

    def test_plain_lookup_omits_horizons(self, served, client):
        (reply,) = client.batch([{"op": "GET_FAIRSHARE", "user": "alice"}])
        assert "horizons" not in reply and "staleness" not in reply

    def test_detail_lookup_reports_horizons(self, served, client):
        _, site, _ = served
        reply = client.lookup_fairshare_detail("alice")
        assert reply["known"] is True
        assert reply["value"] == site.fcs.fairshare_value("alice")
        assert reply["horizons"] == site.fcs.usage_horizons()
        assert set(reply["staleness"]) == set(reply["horizons"])
        assert all(v >= 0.0 for v in reply["staleness"].values())

    def test_detail_bypasses_coalescing(self, served, client):
        """The horizons flag changes the reply shape, so it must not be
        answered from a plain request's coalesced cache entry."""
        (plain,) = client.batch([{"op": "GET_FAIRSHARE", "user": "alice"}])
        detail = client.lookup_fairshare_detail("alice")
        assert "horizons" not in plain
        assert "horizons" in detail and detail["value"] == plain["value"]

    def test_info_reports_usage_horizons(self, served, client):
        _, site, _ = served
        info = client.info()["info"]
        horizons = info["usage_horizons"]
        assert set(horizons) == set(site.fcs.usage_horizons())
        for entry in horizons.values():
            assert entry["staleness"] >= 0.0
            assert entry["horizon"] <= info["time"]

    def test_async_detail_lookup(self, served):
        _, site, thread = served

        async def go():
            async with AequusClient(thread.host, thread.port) as c:
                return await c.lookup_fairshare_detail("alice")

        reply = asyncio.run(go())
        assert reply["horizons"] == site.fcs.usage_horizons()
