"""Concurrency proof: readers observe only whole snapshots.

A writer keeps mutating usage and refreshing the FCS (new snapshot per
refresh) while reader threads hammer the server with batch reads.  Every
batch reply must be internally consistent: one snapshot sequence number
across all items, and values exactly equal to what the FCS published under
that sequence number — never a mix of two refreshes.
"""

import threading
import time

from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.serve.backend import SiteBackend
from repro.serve.client import SyncAequusClient
from repro.serve.server import AequusServer, ServerThread
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig
from repro.sim.engine import SimulationEngine

N_USERS = 24
N_REFRESHES = 30
N_READERS = 3
BATCHES_PER_READER = 40


def build_site():
    engine = SimulationEngine()
    network = Network(engine)
    users = {f"u{i}": i + 1 for i in range(N_USERS)}
    site = AequusSite("torn", engine, network,
                      policy=PolicyTree.from_dict({"grp": users}),
                      config=SiteConfig(histogram_interval=10.0,
                                        uss_exchange_interval=5.0,
                                        ums_refresh_interval=5.0,
                                        fcs_refresh_interval=5.0))
    engine.run_until(6.0)
    return engine, site


class TestNoTornReads:
    def test_batches_never_straddle_a_refresh(self):
        engine, site = build_site()
        users = [f"u{i}" for i in range(N_USERS)]

        # record every published value set BEFORE the snapshot goes live
        # (listeners run in registration order; the store attaches second)
        published = {}
        site.fcs.add_refresh_listener(
            lambda fcs: published.setdefault(fcs.publishes,
                                             dict(fcs.values_view())))
        thread = ServerThread(AequusServer(SiteBackend.for_site(site))).start()

        failures = []
        batches_done = threading.Semaphore(0)

        def reader(idx):
            try:
                with SyncAequusClient(thread.host, thread.port,
                                      timeout=10.0) as client:
                    for _ in range(BATCHES_PER_READER):
                        replies = client.batch(
                            [{"op": "GET_FAIRSHARE", "user": u}
                             for u in users])
                        seqs = {r["seq"] for r in replies}
                        if len(seqs) != 1:
                            failures.append(
                                f"reader {idx}: torn batch across {seqs}")
                            continue
                        seq = seqs.pop()
                        expected = published.get(seq)
                        if expected is None:
                            failures.append(
                                f"reader {idx}: unpublished seq {seq}")
                            continue
                        got = {u: r["value"]
                               for u, r in zip(users, replies)}
                        want = {u: expected[f"/grp/{u}"] for u in users}
                        if got != want:
                            failures.append(
                                f"reader {idx}: seq {seq} values mixed")
                        batches_done.release()
            except Exception as exc:  # surface, don't hang the test
                failures.append(f"reader {idx}: {type(exc).__name__}: {exc}")

        readers = [threading.Thread(target=reader, args=(i,))
                   for i in range(N_READERS)]
        for r in readers:
            r.start()

        try:
            # the writer: keep changing usage so every refresh recomputes
            for i in range(N_REFRESHES):
                site.uss.record_job(UsageRecord(
                    user=f"u{i % N_USERS}", site="torn",
                    start=engine.now, end=engine.now + 100.0 * (i + 1)))
                engine.run_until(engine.now + 5.0)
                # let readers interleave with the next publish
                batches_done.acquire(timeout=2.0)
            for r in readers:
                r.join(60.0)
                assert not r.is_alive(), "reader thread hung"
        finally:
            thread.stop()

        assert failures == []
        # sanity: the writer actually produced many distinct value sets,
        # so the consistency above is a real claim, not a constant function
        distinct = {tuple(sorted(v.items())) for v in published.values()}
        assert len(distinct) >= N_REFRESHES // 2

    def test_single_reads_see_monotone_seq(self):
        engine, site = build_site()
        thread = ServerThread(AequusServer(SiteBackend.for_site(site))).start()
        seqs = []
        stop = threading.Event()

        def reader():
            with SyncAequusClient(thread.host, thread.port,
                                  timeout=10.0) as client:
                while not stop.is_set():
                    replies = client.batch(
                        [{"op": "GET_FAIRSHARE", "user": "u0"}])
                    seqs.append(replies[0]["seq"])

        worker = threading.Thread(target=reader)
        worker.start()
        try:
            # run_until advances VIRTUAL time and returns in microseconds,
            # so pace each refresh on real reader progress — otherwise all
            # ten publishes land before the reader's first request
            for i in range(10):
                observed = len(seqs)
                site.uss.record_job(UsageRecord(
                    user="u1", site="torn", start=engine.now,
                    end=engine.now + 500.0))
                engine.run_until(engine.now + 5.0)
                deadline = time.monotonic() + 5.0
                while len(seqs) < observed + 2 and \
                        time.monotonic() < deadline:
                    time.sleep(0.005)
        finally:
            stop.set()
            worker.join(30.0)
            thread.stop()
        assert not worker.is_alive()
        # a reader can never travel back in time across snapshots
        assert seqs == sorted(seqs)
        assert len(set(seqs)) >= 2  # it really did observe refreshes
