"""Shared fixtures for serve-plane tests: one small served site per test."""

import pytest

from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.serve.backend import SiteBackend
from repro.serve.client import SyncAequusClient
from repro.serve.server import AequusServer, ServerThread
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig
from repro.sim.engine import SimulationEngine


@pytest.fixture
def small_site():
    """A two-VO site with usage folded in and a published FCS refresh."""
    engine = SimulationEngine()
    network = Network(engine)
    policy = PolicyTree.from_dict({
        "hpc": {"alice": 3, "bob": 1},
        "astro": {"carol": 2, "dave": 2},
    })
    site = AequusSite("a", engine, network, policy=policy,
                      config=SiteConfig(histogram_interval=10.0,
                                        uss_exchange_interval=5.0,
                                        ums_refresh_interval=5.0,
                                        fcs_refresh_interval=5.0))
    site.irs.store_mapping("sys_alice", "alice")
    site.irs.store_mapping("sys_bob", "bob")
    site.uss.record_job(UsageRecord(user="alice", site="a",
                                    start=0.0, end=900.0))
    site.uss.record_job(UsageRecord(user="carol", site="a",
                                    start=0.0, end=300.0))
    engine.run_until(11.0)
    return engine, site


@pytest.fixture
def served(small_site):
    """The small site behind a live aequusd on an ephemeral port."""
    engine, site = small_site
    backend = SiteBackend.for_site(site)
    thread = ServerThread(AequusServer(backend)).start()
    yield engine, site, thread
    thread.stop()


@pytest.fixture
def client(served):
    _, _, thread = served
    with SyncAequusClient(thread.host, thread.port, timeout=5.0,
                          retries=2, backoff_base=0.01) as c:
        yield c
