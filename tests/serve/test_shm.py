"""Shared-memory snapshot plane: segment lifecycle, seqlock integrity.

Covers the contracts the sharded serve plane leans on: epochs publish
atomically (a reader never observes a torn epoch, even under concurrent
republish), segments are unlinked on clean shutdown and reaped after the
grace period on relayout, readers survive writer relayouts by
re-attaching, and nothing trips the multiprocessing resource tracker.
"""

import glob
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve.shm import (ShmBackend, ShmSnapshotReader,
                             ShmSnapshotWriter, control_name)


def _segments(token: str):
    return sorted(os.path.basename(p)
                  for p in glob.glob(f"/dev/shm/aqshm_{token}*"))


def _keys(n):
    return {f"u{i}": i for i in range(n)}


def _publish(writer, seq, n=8, value=1.0, keys=None):
    writer.publish_arrays(
        seq=seq, leaf_gen=1, computed_at=float(seq),
        unknown_user_value=0.5, resolution=9999,
        values=np.full(n, value, dtype=np.float64),
        keys=keys if keys is not None else _keys(n))


class TestSegmentLifecycle:
    def test_publish_attach_lookup_roundtrip(self):
        with ShmSnapshotWriter("t", token="lc1") as writer:
            _publish(writer, seq=1, n=4, value=0.25)
            reader = ShmSnapshotReader(writer.name)
            value, known, view = reader.lookup("u2")
            assert (value, known) == (0.25, True)
            assert view.seq == 1 and view.n_leaves == 4
            assert reader.lookup("nobody")[:2] == (0.5, False)
            reader.close()

    def test_republish_advances_epochs(self):
        with ShmSnapshotWriter("t", token="lc2") as writer:
            reader = ShmSnapshotReader(writer.name)
            for seq in range(1, 6):
                _publish(writer, seq=seq, value=float(seq))
                view = reader.view()
                assert view.seq == seq
                assert reader.lookup("u0")[0] == float(seq)
            reader.close()

    def test_clean_close_unlinks_every_segment(self):
        writer = ShmSnapshotWriter("t", token="lc3")
        _publish(writer, seq=1)
        assert _segments("lc3")  # ctl + double-buffered pair exist
        writer.close()
        assert _segments("lc3") == []

    def test_close_is_idempotent(self):
        writer = ShmSnapshotWriter("t", token="lc4")
        _publish(writer, seq=1)
        writer.close()
        writer.close()
        assert _segments("lc4") == []

    def test_relayout_retires_old_generation_after_grace(self):
        writer = ShmSnapshotWriter("t", token="lc5", grace=0.05)
        try:
            _publish(writer, seq=1, n=4)
            first_gen = set(_segments("lc5"))
            # growing the leaf table forces new, larger segments
            _publish(writer, seq=2, n=4096, keys=_keys(4096))
            assert set(_segments("lc5")) > first_gen  # both gens alive
            time.sleep(0.1)
            _publish(writer, seq=3, n=4096, keys=_keys(4096))
            remaining = _segments("lc5")
            # the gen-1 data pair is gone; ctl + gen-2 pair remain
            assert len(remaining) == 3
            assert control_name("lc5") in remaining
        finally:
            writer.close()
        assert _segments("lc5") == []

    def test_reader_follows_relayout(self):
        writer = ShmSnapshotWriter("t", token="lc6", grace=10.0)
        reader = ShmSnapshotReader(writer.name)
        try:
            _publish(writer, seq=1, n=4)
            assert reader.lookup("u3")[0] == 1.0
            _publish(writer, seq=2, n=512, value=2.0, keys=_keys(512))
            value, known, view = reader.lookup("u400")
            assert (value, known) == (2.0, True)
            assert view.seq == 2
            assert reader.reattaches >= 1
        finally:
            reader.close()
            writer.close()

    def test_reader_crash_leaks_nothing(self):
        """A SIGKILLed reader process must not leave segments behind
        (readers never own segments, and their tracker is never told
        about them)."""
        writer = ShmSnapshotWriter("t", token="lc7")
        try:
            _publish(writer, seq=1)
            child = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys, time\n"
                 "from repro.serve.shm import ShmSnapshotReader\n"
                 f"r = ShmSnapshotReader({writer.name!r})\n"
                 "assert r.lookup('u1')[1] is True\n"
                 "print('attached', flush=True)\n"
                 "time.sleep(30)\n"],
                stdout=subprocess.PIPE,
                env=dict(os.environ, PYTHONPATH="src"))
            assert child.stdout.readline().strip() == b"attached"
            os.kill(child.pid, signal.SIGKILL)
            child.wait(10)
            # the writer's segments are intact and still serve
            reader = ShmSnapshotReader(writer.name)
            assert reader.lookup("u1")[:2] == (1.0, True)
            reader.close()
        finally:
            writer.close()
        assert _segments("lc7") == []


class TestResourceTrackerHygiene:
    def test_full_cycle_emits_no_tracker_warnings(self):
        """Writer + same-process reader + forked reader must exit with a
        silent resource tracker (no 'leaked shared_memory' warnings, no
        KeyError tracebacks from double unregisters)."""
        script = (
            "import numpy as np, multiprocessing as mp\n"
            "from repro.serve.shm import ShmSnapshotReader, ShmSnapshotWriter\n"
            "w = ShmSnapshotWriter('t', token='rt1')\n"
            "w.publish_arrays(seq=1, leaf_gen=1, computed_at=0.0,\n"
            "                 unknown_user_value=0.5, resolution=9999,\n"
            "                 values=np.ones(8), \n"
            "                 keys={f'u{i}': i for i in range(8)})\n"
            "r = ShmSnapshotReader(w.name)\n"
            "assert r.lookup('u1')[:2] == (1.0, True)\n"
            "def child(name):\n"
            "    cr = ShmSnapshotReader(name)\n"
            "    assert cr.lookup('u2')[:2] == (1.0, True)\n"
            "    cr.close()\n"
            "p = mp.get_context('fork').Process(target=child, args=(w.name,))\n"
            "p.start(); p.join(10)\n"
            "assert p.exitcode == 0\n"
            "r.close(); w.close()\n"
            "print('done')\n")
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, timeout=60,
                                env=dict(os.environ, PYTHONPATH="src"))
        assert result.returncode == 0, result.stderr
        assert "done" in result.stdout
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr
        assert _segments("rt1") == []


class TestTornReadImpossibility:
    def test_concurrent_republish_never_tears_an_epoch(self):
        """Every epoch is published with all values equal to its seq; a
        stamp-validated batch read that mixed two epochs would show two
        distinct values and fail."""
        n = 512
        stop = threading.Event()
        errors = []

        writer = ShmSnapshotWriter("t", token="tr1")
        _publish(writer, seq=1, n=n, value=1.0)

        def republish():
            seq = 2
            while not stop.is_set():
                _publish(writer, seq=seq, n=n, value=float(seq))
                seq += 1

        thread = threading.Thread(target=republish, daemon=True)
        thread.start()
        try:
            reader = ShmSnapshotReader(writer.name)
            ids = np.arange(n, dtype=np.int64)
            validated = 0
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline and not errors:
                view = reader.view()
                if view is None:
                    continue
                stamp = view.stamp()
                if stamp is None:
                    continue  # write in flight on this buffer
                values, known = view.values_for_ids(ids)
                distinct = set(np.unique(values))
                if not view.still(stamp):
                    continue  # raced a republish: read is void, retry
                validated += 1
                if len(distinct) != 1:
                    errors.append(sorted(distinct))
                elif distinct != {float(view.seq)}:
                    errors.append((distinct, view.seq))
            reader.close()
        finally:
            stop.set()
            thread.join(5.0)
            writer.close()
        assert not errors, f"torn epoch observed: {errors[0]}"
        assert validated > 100  # the validated-read loop actually ran

    def test_single_key_lookup_is_stamp_validated(self):
        n = 64
        stop = threading.Event()
        writer = ShmSnapshotWriter("t", token="tr2")
        _publish(writer, seq=1, n=n, value=1.0)

        def republish():
            seq = 2
            while not stop.is_set():
                _publish(writer, seq=seq, n=n, value=float(seq))
                seq += 1

        thread = threading.Thread(target=republish, daemon=True)
        thread.start()
        try:
            reader = ShmSnapshotReader(writer.name)
            deadline = time.monotonic() + 2.0
            reads = 0
            while time.monotonic() < deadline:
                value, known, view = reader.lookup("u13")
                assert known is True
                # reader.lookup only returns stamp-validated reads, so the
                # value must exactly match an epoch constant
                assert value == float(int(value))
                reads += 1
            assert reads > 100
            reader.close()
        finally:
            stop.set()
            thread.join(5.0)
            writer.close()


class TestShmBackend:
    def test_backend_info_and_identity(self, small_site):
        _, site = small_site
        writer = ShmSnapshotWriter(site.name, token="bk1")
        writer.attach_fcs(site.fcs, irs=site.irs)
        try:
            backend = ShmBackend.attach(writer.name, site=site.name)
            value, known, _ = backend.lookup_fairshare("alice")
            assert known is True
            direct = site.fcs.fairshare_value("alice")
            assert value == pytest.approx(direct)
            assert backend.resolve_identity("sys_alice") == "alice"
            assert backend.resolve_identity("sys_nobody") is None
            info = backend.info()
            assert info["snapshot"]["site"] == site.name
            assert info["staleness"] in ("fresh", "stale", "dead")
            backend.reader.close()
        finally:
            writer.close()
