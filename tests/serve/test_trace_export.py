"""The TRACE_EXPORT op: tracer drain over the wire, solo and sharded.

Exactly-once is the property under test: every span recorded by the
daemon's services must come back in exactly one TRACE_EXPORT reply —
including under the PR 6 worker pool, where the process that records the
spans (the parent, which owns the engine) is never the process that
answers the request (a forked worker).  The parent spools its drained
ring through a flock-guarded JSONL file; whichever worker is asked drains
the spool, so N clients hammering N workers still see each event once.
"""

import time

import pytest

from repro.obs import trace
from repro.serve.client import SyncAequusClient
from repro.serve.daemon import AequusDaemon, build_demo_site


@pytest.fixture
def fresh_tracer():
    """An isolated default tracer per test (restored afterwards)."""
    tracer = trace.Tracer(enabled=True)
    previous = trace.set_default_tracer(tracer)
    yield tracer
    trace.set_default_tracer(previous)


def _span_keys(body):
    return {(event["pid"], event["args"]["id"])
            for event in body["events"]}


class TestSingleServer:
    def test_export_drains_tracer_exactly_once(self, fresh_tracer):
        engine, site = build_demo_site(20, "solo", seed=0)
        daemon = AequusDaemon(engine, site, port=0, tick_interval=0.05)
        daemon.start()
        try:
            with SyncAequusClient(port=daemon.port) as client:
                deadline = time.monotonic() + 5.0
                first = client.trace_export()
                while not first["events"] \
                        and time.monotonic() < deadline:
                    time.sleep(0.1)
                    first = client.trace_export()
                assert first["ok"] and first["site"] == "solo"
                assert first["events"], "no spans recorded while ticking"
                # clock-alignment metadata for the fleet collector
                assert "virtual_epoch" in first
                assert first["time_factor"] == 1.0
                second = client.trace_export()
                assert not (_span_keys(first) & _span_keys(second))
        finally:
            daemon.stop()

    def test_dropped_counter_pre_created_in_metrics(self, fresh_tracer):
        engine, site = build_demo_site(20, "solo2", seed=0)
        daemon = AequusDaemon(engine, site, port=0, tick_interval=0.05)
        daemon.start()
        try:
            with SyncAequusClient(port=daemon.port) as client:
                text = client.metrics()
        finally:
            daemon.stop()
        # satellite: the ring-buffer drop count renders from scrape one,
        # zero-valued, without waiting for the first eviction
        assert "aequus_trace_dropped_total" in text

    def test_custom_hook_overrides_default_drain(self, fresh_tracer):
        from repro.serve.backend import SiteBackend
        from repro.serve.server import AequusServer, ServerThread

        engine, site = build_demo_site(20, "hooked", seed=0)
        thread = ServerThread(AequusServer(
            SiteBackend.for_site(site), port=0,
            trace_export=lambda: {"events": [], "custom": True})).start()
        try:
            with SyncAequusClient(port=thread.port) as client:
                body = client.trace_export()
        finally:
            thread.stop()
        assert body["custom"] is True and body["ok"] is True


class TestWorkerPool:
    @pytest.fixture
    def pool_daemon(self, fresh_tracer):
        engine, site = build_demo_site(20, "pool", seed=1)
        daemon = AequusDaemon(engine, site, port=0, tick_interval=0.05,
                              workers=2)
        daemon.start()
        yield daemon
        daemon.stop()

    def test_any_worker_exports_parent_spans_once(self, pool_daemon):
        """Spans recorded in the parent reach exactly one export reply,
        no matter which workers the (many) clients land on."""
        seen = set()
        deadline = time.monotonic() + 8.0
        exported_workers = set()
        while time.monotonic() < deadline:
            # fresh client each round: SO_REUSEPORT may land it anywhere
            with SyncAequusClient(port=pool_daemon.port,
                                  pool_size=1) as client:
                body = client.trace_export()
            assert body["ok"] and body["site"] == "pool"
            exported_workers.add(body.get("worker"))
            keys = _span_keys(body)
            assert not (keys & seen), "event exported twice"
            seen |= keys
            if len(seen) >= 5 and len(exported_workers) >= 1:
                break
            time.sleep(0.1)
        assert len(seen) >= 5, "parent spans never reached the spool"
        # every exported span came from the parent's tracer (one pid,
        # which is not any worker's pid)
        pids = {pid for pid, _ in seen}
        assert len(pids) == 1
        assert not (pids & set(pool_daemon.pool.worker_pids()))

    def test_metrics_fleet_wide_from_any_worker(self, pool_daemon):
        with SyncAequusClient(port=pool_daemon.port) as client:
            text = client.metrics()
            info = client.info()
        # per-worker rows from the shared stats block: both workers are
        # visible in one scrape regardless of which one answered
        workers = {line.split('worker="')[1].split('"')[0]
                   for line in text.splitlines()
                   if line.startswith("aequus_worker_requests_total{")}
        assert workers == {"0", "1"}
        assert info["stats"]["workers"] == 2
        assert "aequus_worker_connections_active{" in text
