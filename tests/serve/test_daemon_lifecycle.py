"""AequusDaemon start/stop contract: idempotent, orderable, bounded.

Supervisors double-signal, test teardowns race construction, and a
daemon that was never started still gets stop() called by ``finally``
blocks — none of that may raise or hang.
"""

import threading
import time

from repro.serve.daemon import AequusDaemon, build_demo_site


def make_daemon(**kwargs):
    engine, site = build_demo_site(8, seed=3)
    kwargs.setdefault("port", 0)
    kwargs.setdefault("tick_interval", 0.05)
    return AequusDaemon(engine, site, **kwargs)


class TestStopIdempotence:
    def test_stop_before_start_is_safe(self):
        daemon = make_daemon()
        daemon.stop()  # never started: must not raise

    def test_double_stop_before_start_is_safe(self):
        daemon = make_daemon()
        daemon.stop()
        daemon.stop()

    def test_double_stop_after_start_is_safe(self):
        daemon = make_daemon().start()
        daemon.stop()
        daemon.stop()

    def test_stop_joins_tick_thread(self):
        daemon = make_daemon().start()
        assert daemon._ticker is not None
        ticker = daemon._ticker
        daemon.stop()
        assert not ticker.is_alive()
        assert daemon._ticker is None

    def test_stop_is_bounded_even_when_ticker_wedged(self):
        daemon = make_daemon().start()
        # replace the ticker with a thread that ignores the stop event:
        # stop() must come back after its bounded join, not hang forever
        wedge = threading.Event()
        daemon._ticker = threading.Thread(target=wedge.wait, daemon=True)
        daemon._ticker.start()
        start = time.monotonic()
        daemon.stop()
        assert time.monotonic() - start < 30.0
        wedge.set()

class TestTickLoop:
    def test_ticks_advance_engine_and_pump_transport(self):
        daemon = make_daemon(time_factor=50.0).start()
        try:
            before = daemon.engine.now
            deadline = time.monotonic() + 10.0
            while daemon.engine.now <= before and time.monotonic() < deadline:
                time.sleep(0.05)
            assert daemon.engine.now > before
        finally:
            daemon.stop()
