"""Unit tests for trace cleaning, categorization, ACF, phase detection."""

import numpy as np
import pytest

from repro.workload.analysis import (
    autocorrelation,
    categorize_users,
    clean_trace,
    detect_periodicity,
    detect_phases,
)
from repro.workload.trace import Trace, TraceJob

DAY = 86400.0


class TestCleaning:
    def test_removes_admin_flagged_jobs(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=10.0),
                   TraceJob(user="root", submit=1.0, duration=10.0, admin=True)])
        clean, report = clean_trace(t)
        assert clean.n_jobs == 1
        assert report.removed_job_fraction == pytest.approx(0.5)

    def test_removes_named_admin_users(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=10.0),
                   TraceJob(user="monitor", submit=1.0, duration=10.0)])
        clean, _ = clean_trace(t, admin_users=["monitor"])
        assert clean.users() == ["u"]

    def test_removes_zero_duration_outliers(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=10.0),
                   TraceJob(user="u", submit=1.0, duration=0.0)])
        clean, report = clean_trace(t)
        assert clean.n_jobs == 1
        assert report.removed_usage_fraction == 0.0

    def test_usage_fraction_reported(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=99.0),
                   TraceJob(user="root", submit=1.0, duration=1.0, admin=True)])
        _, report = clean_trace(t)
        assert report.removed_usage_fraction == pytest.approx(0.01)

    def test_empty_trace(self):
        clean, report = clean_trace(Trace([]))
        assert clean.n_jobs == 0
        assert report.removed_job_fraction == 0.0


class TestCategorization:
    @pytest.fixture
    def trace(self):
        jobs = []
        # big: 65% of usage, mid: 30%, small: 3%, tail users: 2%
        for usage, user, n in [(650.0, "big", 20), (300.0, "mid", 5),
                               (30.0, "small", 8)]:
            for i in range(n):
                jobs.append(TraceJob(user=user, submit=float(i),
                                     duration=usage / n))
        for i, u in enumerate(["t1", "t2"]):
            jobs.append(TraceJob(user=u, submit=float(i), duration=10.0))
        return Trace(jobs)

    def test_percent_labels(self, trace):
        cats = categorize_users(trace, top_n=3)
        assert cats.labels["big"] == "U65"
        assert cats.labels["mid"] == "U30"
        assert cats.labels["small"] == "U3"

    def test_tail_grouped_as_uoth(self, trace):
        cats = categorize_users(trace, top_n=3)
        assert cats.label_for("t1") == "Uoth"
        assert cats.label_for("t2") == "Uoth"

    def test_shares_computed_per_category(self, trace):
        cats = categorize_users(trace, top_n=3)
        assert cats.usage_shares["U65"] == pytest.approx(0.65)
        assert sum(cats.usage_shares.values()) == pytest.approx(1.0)
        assert sum(cats.job_shares.values()) == pytest.approx(1.0)

    def test_relabel_applies_categories(self, trace):
        cats = categorize_users(trace, top_n=3)
        labeled = cats.relabel(trace)
        assert set(labeled.users()) == {"U65", "U30", "U3", "Uoth"}

    def test_rank_labels(self, trace):
        cats = categorize_users(trace, top_n=2, label_style="rank")
        assert cats.labels["big"] == "U1"
        assert cats.labels["mid"] == "U2"

    def test_category_names_ordered(self, trace):
        cats = categorize_users(trace, top_n=3)
        assert cats.category_names() == ["U65", "U30", "U3", "Uoth"]


class TestAutocorrelation:
    def test_acf_zero_lag_is_one(self):
        rng = np.random.default_rng(0)
        acf = autocorrelation(rng.normal(size=500))
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_peaks_at_period(self):
        t = np.arange(400)
        signal = np.sin(2 * np.pi * t / 50.0)
        acf = autocorrelation(signal)
        assert acf[50] > 0.8

    def test_white_noise_no_structure(self):
        rng = np.random.default_rng(1)
        acf = autocorrelation(rng.normal(size=2000), max_lag=50)
        assert np.all(np.abs(acf[1:]) < 0.2)

    def test_max_lag_truncates(self):
        acf = autocorrelation(np.random.default_rng(2).normal(size=100),
                              max_lag=10)
        assert acf.size == 11

    def test_constant_series_zero(self):
        acf = autocorrelation(np.full(50, 3.0), max_lag=5)
        assert np.all(acf == 0.0)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.array([1.0]))


class TestPeriodicityDetection:
    def test_weekly_pattern_detected(self):
        rng = np.random.default_rng(3)
        times = []
        for week in range(26):
            base = week * 7 * DAY
            times.extend(base + rng.uniform(0, DAY, size=200))  # active day
        found = detect_periodicity(np.array(times), candidate_periods=[7 * DAY])
        assert 7 * DAY in found

    def test_uniform_arrivals_no_periodicity(self):
        rng = np.random.default_rng(4)
        times = rng.uniform(0, 180 * DAY, size=5000)
        found = detect_periodicity(times)
        assert found == {}

    def test_tiny_input(self):
        assert detect_periodicity(np.array([1.0])) == {}


class TestPhaseDetection:
    def _bumpy_times(self, centers, width=10 * DAY, n=800, seed=0):
        rng = np.random.default_rng(seed)
        times = []
        for c in centers:
            times.extend(rng.normal(c, width / 2, size=n))
        return np.array(times)

    def test_four_bumps_four_phases(self):
        centers = [50 * DAY, 140 * DAY, 230 * DAY, 320 * DAY]
        phases = detect_phases(self._bumpy_times(centers), n_phases=4)
        assert len(phases) == 4
        for (lo, hi), center in zip(phases, centers):
            assert lo <= center <= hi

    def test_phases_cover_range_contiguously(self):
        phases = detect_phases(self._bumpy_times([50 * DAY, 250 * DAY]),
                               n_phases=2)
        assert phases[0][1] == phases[1][0]

    def test_single_phase(self):
        times = np.linspace(0, 100 * DAY, 500)
        phases = detect_phases(times, n_phases=1)
        assert len(phases) == 1

    def test_quantile_fallback_on_flat_data(self):
        rng = np.random.default_rng(5)
        times = rng.uniform(0, 100 * DAY, size=3000)
        phases = detect_phases(times, n_phases=4)
        assert len(phases) == 4
        counts = [np.sum((times >= lo) & (times < hi)) for lo, hi in phases]
        assert min(counts) > 300  # roughly equal-count quarters

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            detect_phases(np.array([1.0, 2.0]), n_phases=4)
