"""Unit tests for the phase-weighted composite distribution (Eq. 1)."""

import numpy as np
import pytest

from repro.workload.composite import CompositeDistribution
from repro.workload.distributions import FAMILIES


@pytest.fixture
def two_bumps():
    d1 = FAMILIES["normal"].make(100.0, 10.0)
    d2 = FAMILIES["normal"].make(500.0, 20.0)
    return CompositeDistribution([(0.7, d1), (0.3, d2)])


class TestConstruction:
    def test_weights_normalized(self, two_bumps):
        np.testing.assert_allclose(two_bumps.weights, [0.7, 0.3])

    def test_unnormalized_weights_accepted(self):
        d = FAMILIES["normal"].make(0.0, 1.0)
        comp = CompositeDistribution([(2.0, d), (6.0, d)])
        np.testing.assert_allclose(comp.weights, [0.25, 0.75])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeDistribution([])

    def test_negative_weight_rejected(self):
        d = FAMILIES["normal"].make(0.0, 1.0)
        with pytest.raises(ValueError):
            CompositeDistribution([(-1.0, d)])

    def test_zero_total_weight_rejected(self):
        d = FAMILIES["normal"].make(0.0, 1.0)
        with pytest.raises(ValueError):
            CompositeDistribution([(0.0, d)])


class TestDensities:
    def test_pdf_is_weighted_sum(self, two_bumps):
        x = np.array([100.0])
        d1 = FAMILIES["normal"].make(100.0, 10.0)
        d2 = FAMILIES["normal"].make(500.0, 20.0)
        expected = 0.7 * d1.pdf(x) + 0.3 * d2.pdf(x)
        np.testing.assert_allclose(two_bumps.pdf(x), expected)

    def test_pdf_integrates_to_one(self, two_bumps):
        x = np.linspace(-100, 800, 20001)
        integral = np.trapezoid(two_bumps.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone_zero_to_one(self, two_bumps):
        x = np.linspace(-100, 800, 500)
        c = two_bumps.cdf(x)
        assert np.all(np.diff(c) >= -1e-12)
        assert c[0] == pytest.approx(0.0, abs=1e-6)
        assert c[-1] == pytest.approx(1.0, abs=1e-6)

    def test_loglik_finite(self, two_bumps):
        data = two_bumps.sample(100, np.random.default_rng(0))
        assert np.isfinite(two_bumps.loglik(data))


class TestInverse:
    def test_icdf_inverts_cdf(self, two_bumps):
        q = np.array([0.05, 0.35, 0.7, 0.95])
        x = two_bumps.icdf(q)
        np.testing.assert_allclose(two_bumps.cdf(x), q, atol=2e-3)

    def test_exact_mode_agrees_with_grid(self, two_bumps):
        q = np.array([0.2, 0.5, 0.8])
        approx = two_bumps.icdf(q)
        exact = two_bumps.icdf(q, exact=True)
        np.testing.assert_allclose(approx, exact, rtol=1e-3, atol=0.2)

    def test_median_between_bumps_weighted(self, two_bumps):
        # 70% of mass at the first bump: median lies inside it
        assert 80.0 < two_bumps.median() < 130.0

    def test_invalid_quantiles_rejected(self, two_bumps):
        with pytest.raises(ValueError):
            two_bumps.icdf(np.array([1.2]))


class TestSampling:
    def test_mixture_sampling_respects_weights(self, two_bumps):
        rng = np.random.default_rng(1)
        samples = two_bumps.sample(4000, rng, method="mixture")
        frac_first = np.mean(samples < 300.0)
        assert frac_first == pytest.approx(0.7, abs=0.03)

    def test_icdf_sampling_matches_mixture(self, two_bumps):
        rng = np.random.default_rng(2)
        samples = two_bumps.sample(4000, rng, method="icdf")
        frac_first = np.mean(samples < 300.0)
        assert frac_first == pytest.approx(0.7, abs=0.03)

    def test_unknown_method_rejected(self, two_bumps):
        with pytest.raises(ValueError):
            two_bumps.sample(10, np.random.default_rng(0), method="magic")

    def test_sample_count(self, two_bumps):
        assert two_bumps.sample(123, np.random.default_rng(0)).size == 123


class TestEquationOne:
    def test_paper_shape_four_gev_phases(self):
        """Equation 1: weighted sum of per-phase PDFs matches empirical mix."""
        phases = [FAMILIES["gev"].make(-0.386, 9.75, 51.0),
                  FAMILIES["gev"].make(-0.371, 15.3, 140.0),
                  FAMILIES["gev"].make(-0.457, 15.4, 232.0),
                  FAMILIES["gev"].make(-0.301, 10.7, 323.0)]
        weights = [0.28, 0.31, 0.23, 0.18]
        comp = CompositeDistribution(list(zip(weights, phases)))
        rng = np.random.default_rng(3)
        samples = comp.sample(8000, rng)
        # mass per quarter approximates the weights
        for (lo, hi), w in zip([(0, 95), (95, 190), (190, 280), (280, 365)],
                               weights):
            frac = np.mean((samples >= lo) & (samples < hi))
            assert frac == pytest.approx(w, abs=0.04)
