"""Unit tests for the 2012-national-grid reference model."""

import numpy as np
import pytest

from repro.workload.analysis import categorize_users, clean_trace
from repro.workload.reference import (
    BURSTY_JOB_SHARES,
    BURSTY_USAGE_SHARES,
    CATEGORIES,
    GRID_IDENTITIES,
    JOB_SHARES,
    USAGE_SHARES,
    U65_PHASES,
    arrival_distribution,
    build_production_trace,
    build_testbed_trace,
    duration_distribution,
    generate_reference_trace,
    user_models,
)


class TestConstants:
    def test_usage_shares_match_paper(self):
        assert USAGE_SHARES["U65"] == 0.6525
        assert USAGE_SHARES["U30"] == 0.3049
        assert USAGE_SHARES["U3"] == 0.0286
        assert USAGE_SHARES["Uoth"] == 0.0140
        assert sum(USAGE_SHARES.values()) == pytest.approx(1.0)

    def test_job_shares_match_paper(self):
        assert JOB_SHARES["U65"] == 0.8103
        assert sum(JOB_SHARES.values()) == pytest.approx(1.0, abs=1e-4)

    def test_bursty_shares_match_paper(self):
        assert BURSTY_JOB_SHARES == {"U65": 0.455, "U30": 0.065,
                                     "U3": 0.455, "Uoth": 0.03}
        assert BURSTY_USAGE_SHARES["U30"] == 0.385

    def test_four_phases_with_published_shapes(self):
        assert len(U65_PHASES) == 4
        assert [p.k for p in U65_PHASES] == [-0.386, -0.371, -0.457, -0.301]
        assert sum(p.weight for p in U65_PHASES) == pytest.approx(1.0)


class TestDistributions:
    def test_duration_families_match_table3(self):
        assert duration_distribution("U65").family.name == "birnbaum-saunders"
        assert duration_distribution("U30").family.name == "weibull"
        assert duration_distribution("U3").family.name == "burr"
        assert duration_distribution("Uoth").family.name == "birnbaum-saunders"

    def test_duration_medians_consistent_with_params(self):
        # published params: U65 BS beta=1.76e4 => median 1.76e4 s
        assert duration_distribution("U65").median() == pytest.approx(1.76e4)

    def test_u3_durations_much_shorter_than_u65(self):
        # the premise of the bursty test's share arithmetic
        assert duration_distribution("U3").median() < \
            duration_distribution("U65").median() / 100

    def test_arrival_distribution_u65_is_composite(self):
        dist = arrival_distribution("U65")
        assert dist.n_components == 4

    def test_arrival_unknown_user(self):
        with pytest.raises(KeyError):
            arrival_distribution("U99")

    def test_user_models_cover_categories(self):
        models = user_models()
        assert set(models) == set(CATEGORIES)


class TestReferenceTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_reference_trace(n_jobs=6000, seed=1)

    def test_pollution_levels(self, trace):
        _, report = clean_trace(trace)
        assert report.removed_job_fraction == pytest.approx(0.15, abs=0.01)
        assert report.removed_usage_fraction == pytest.approx(0.015, abs=0.003)

    def test_categorization_recovers_paper_shares(self, trace):
        clean, _ = clean_trace(trace)
        cats = categorize_users(clean)
        assert cats.usage_shares["U65"] == pytest.approx(0.6525, abs=1e-3)
        assert cats.job_shares["U65"] == pytest.approx(0.8103, abs=1e-3)

    def test_inter_arrival_medians_near_table2(self, trace):
        from repro.workload.fitting import whole_second_median
        clean, _ = clean_trace(trace)
        medians = {u: whole_second_median(clean.inter_arrival_times(u))
                   for u in CATEGORIES}
        assert medians["U3"] == 0.0          # paper: 0 s
        assert 1 <= medians["U65"] <= 4      # paper: 2 s
        assert 0 <= medians["U30"] <= 3      # paper: 1 s
        assert 5 <= medians["Uoth"] <= 40    # paper: 13 s

    def test_unpolluted_variant(self):
        t = generate_reference_trace(n_jobs=500, seed=0, pollution=False)
        assert t.n_jobs == 500
        assert all(j.duration > 0 and not j.admin for j in t)

    def test_deterministic_for_seed(self):
        a = generate_reference_trace(n_jobs=300, seed=9)
        b = generate_reference_trace(n_jobs=300, seed=9)
        assert [j.submit for j in a] == [j.submit for j in b]


class TestTestbedTrace:
    def test_paper_defaults_shape(self):
        trace = build_testbed_trace(n_jobs=2000, span=1000.0, total_cores=240,
                                    load=0.95, seed=0)
        assert trace.n_jobs == 2000
        assert trace.end <= 1000.0
        assert trace.total_usage() == pytest.approx(0.95 * 240 * 1000.0)

    def test_identities_are_grid_dns(self):
        trace = build_testbed_trace(n_jobs=200, span=1000.0, seed=0)
        assert set(trace.users()) <= set(GRID_IDENTITIES.values())

    def test_usage_shares_match_targets(self):
        trace = build_testbed_trace(n_jobs=2000, span=1000.0, seed=0)
        shares = trace.usage_shares()
        for user, share in USAGE_SHARES.items():
            assert shares[GRID_IDENTITIES[user]] == pytest.approx(share, abs=1e-6)

    def test_bursty_variant_shares(self):
        trace = build_testbed_trace(n_jobs=2000, span=1000.0, seed=0, bursty=True)
        shares = trace.usage_shares()
        for user, share in BURSTY_USAGE_SHARES.items():
            assert shares[GRID_IDENTITIES[user]] == pytest.approx(share, abs=1e-6)
        job_shares = trace.job_shares()
        # the paper's published job fractions sum to 1.005; the generator
        # normalizes, so the realized share is 0.455/1.005
        assert job_shares[GRID_IDENTITIES["U3"]] == pytest.approx(0.455 / 1.005,
                                                                  abs=1e-3)

    def test_bursty_u3_starts_after_one_third(self):
        trace = build_testbed_trace(n_jobs=3000, span=3000.0, seed=0, bursty=True)
        u3_times = trace.arrival_times(GRID_IDENTITIES["U3"])
        assert u3_times.min() >= 3000.0 / 3.0

    def test_average_rate_is_120_per_minute_at_paper_scale(self):
        # 43,200 jobs over 6 h = 120 jobs/min — checked via proportion
        trace = build_testbed_trace(n_jobs=4320, span=2160.0, seed=0)
        assert trace.n_jobs / (2160.0 / 60.0) == pytest.approx(120.0)


class TestProductionTrace:
    def test_scale(self):
        trace = build_production_trace(months=0.5, jobs_per_month=2000, seed=0)
        assert trace.n_jobs == 1000
        assert trace.span <= 0.5 * 30 * 86400.0

    def test_load_pinned(self):
        trace = build_production_trace(months=0.25, jobs_per_month=2000,
                                       total_cores=544, load=0.85, seed=0)
        span = 0.25 * 30 * 86400.0
        assert trace.total_usage() == pytest.approx(0.85 * 544 * span)
