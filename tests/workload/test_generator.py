"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.workload.distributions import FAMILIES
from repro.workload.generator import (
    ArrivalModel,
    BatchModel,
    DurationModel,
    SyntheticWorkloadGenerator,
    TruncatedICDFSampler,
    UserWorkloadModel,
    add_pollution,
    allocate_counts,
    compress_to_span,
    scale_trace_load,
)
from repro.workload.trace import Trace, TraceJob


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestTruncatedSampler:
    def test_samples_within_range(self, rng):
        dist = FAMILIES["normal"].make(100.0, 50.0)
        sampler = TruncatedICDFSampler(dist, 50.0, 150.0)
        samples = sampler.sample(2000, rng)
        assert samples.min() >= 50.0
        assert samples.max() <= 150.0

    def test_effective_range_is_cdf_pair(self):
        dist = FAMILIES["normal"].make(0.0, 1.0)
        sampler = TruncatedICDFSampler(dist, -1.0, 1.0)
        lo, hi = sampler.effective_range
        assert lo == pytest.approx(dist.cdf(-1.0))
        assert hi == pytest.approx(dist.cdf(1.0))

    def test_paper_u65_style_range(self):
        """The paper reports effective range [7.451e-3, 9.946e-1] for U65 —
        any distribution with mass outside the year gives such a pair."""
        dist = FAMILIES["normal"].make(182.0, 75.0)
        sampler = TruncatedICDFSampler(dist, 0.0, 365.0)
        lo, hi = sampler.effective_range
        assert 0.0 < lo < 0.05
        assert 0.95 < hi < 1.0

    def test_distribution_shape_preserved_inside_range(self, rng):
        dist = FAMILIES["normal"].make(100.0, 10.0)
        sampler = TruncatedICDFSampler(dist, 0.0, 200.0)  # range covers all
        samples = sampler.sample(4000, rng)
        assert np.mean(samples) == pytest.approx(100.0, abs=1.0)

    def test_no_mass_in_range_rejected(self):
        dist = FAMILIES["normal"].make(0.0, 0.1)
        with pytest.raises(ValueError):
            TruncatedICDFSampler(dist, 100.0, 200.0)

    def test_bad_range_rejected(self):
        dist = FAMILIES["normal"].make(0.0, 1.0)
        with pytest.raises(ValueError):
            TruncatedICDFSampler(dist, 1.0, 1.0)


class TestBatchModel:
    def test_sizes_sum_exactly(self, rng):
        model = BatchModel(mean_batch_size=10.0, mean_gap=1.0)
        sizes = model.batch_sizes(137, rng)
        assert sizes.sum() == 137

    def test_unit_batches_for_mean_one(self, rng):
        model = BatchModel(mean_batch_size=1.0)
        assert model.batch_sizes(10, rng).tolist() == [1] * 10

    def test_expand_preserves_count(self, rng):
        model = BatchModel(mean_batch_size=5.0, mean_gap=2.0)
        sizes = model.batch_sizes(50, rng)
        anchors = np.arange(len(sizes), dtype=float) * 1000.0
        times = model.expand(anchors, sizes, rng)
        assert times.size == 50

    def test_batch_members_cluster_near_anchor(self, rng):
        model = BatchModel(mean_batch_size=20.0, mean_gap=0.5)
        times = model.expand(np.array([1000.0]), np.array([20]), rng)
        assert times.min() == 1000.0
        assert times.max() < 1100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchModel(mean_batch_size=0.5)
        with pytest.raises(ValueError):
            BatchModel(mean_gap=-1.0)


class TestAllocateCounts:
    def test_sums_exactly(self):
        counts = allocate_counts({"a": 0.8103, "b": 0.0658, "c": 0.0947,
                                  "d": 0.0293}, 43200)
        assert sum(counts.values()) == 43200

    def test_proportions_respected(self):
        counts = allocate_counts({"a": 3, "b": 1}, 100)
        assert counts == {"a": 75, "b": 25}

    def test_largest_remainder_rounding(self):
        counts = allocate_counts({"a": 1, "b": 1, "c": 1}, 100)
        assert sum(counts.values()) == 100
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            allocate_counts({"a": 0.0}, 10)


class TestGenerator:
    def _models(self):
        dist = FAMILIES["normal"].make(500.0, 200.0)
        sampler = TruncatedICDFSampler(dist, 0.0, 1000.0)
        duration = DurationModel(FAMILIES["weibull"].make(50.0, 1.0),
                                 min_duration=1.0, max_duration=500.0)
        return {u: UserWorkloadModel(u, ArrivalModel(sampler), duration)
                for u in ("a", "b")}

    def test_job_counts_match_shares(self, rng):
        gen = SyntheticWorkloadGenerator(self._models(),
                                         job_shares={"a": 0.75, "b": 0.25},
                                         n_jobs=1000)
        trace = gen.generate(rng)
        assert trace.n_jobs == 1000
        assert trace.job_shares()["a"] == pytest.approx(0.75)

    def test_usage_shares_pinned_exactly(self, rng):
        gen = SyntheticWorkloadGenerator(self._models(),
                                         job_shares={"a": 0.5, "b": 0.5},
                                         n_jobs=500,
                                         usage_shares={"a": 0.9, "b": 0.1},
                                         total_charge=1e6)
        trace = gen.generate(rng)
        assert trace.total_usage() == pytest.approx(1e6)
        assert trace.usage_shares()["a"] == pytest.approx(0.9)

    def test_missing_model_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(self._models(),
                                       job_shares={"ghost": 1.0}, n_jobs=10)

    def test_usage_shares_require_total_charge(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadGenerator(self._models(),
                                       job_shares={"a": 1.0}, n_jobs=10,
                                       usage_shares={"a": 1.0})

    def test_durations_clipped(self, rng):
        gen = SyntheticWorkloadGenerator(self._models(),
                                         job_shares={"a": 1.0}, n_jobs=500)
        trace = gen.generate(rng)
        assert trace.durations().min() >= 1.0
        assert trace.durations().max() <= 500.0


class TestTransformations:
    def _trace(self):
        return Trace([TraceJob(user="u", submit=float(i) * 10.0, duration=5.0)
                      for i in range(11)])

    def test_compress_to_span(self):
        out = compress_to_span(self._trace(), span=50.0)
        assert out.start == 0.0
        assert out.end == pytest.approx(50.0)
        assert out.n_jobs == 11
        # durations untouched
        assert out.durations().tolist() == [5.0] * 11

    def test_compress_preserves_relative_spacing(self):
        out = compress_to_span(self._trace(), span=10.0)
        np.testing.assert_allclose(np.diff(out.arrival_times()), 1.0)

    def test_compress_degenerate_trace(self):
        t = Trace([TraceJob(user="u", submit=5.0, duration=1.0)])
        out = compress_to_span(t, span=100.0)
        assert out[0].submit == 0.0

    def test_compress_invalid_span(self):
        with pytest.raises(ValueError):
            compress_to_span(self._trace(), span=0.0)

    def test_scale_trace_load(self):
        out = scale_trace_load(self._trace(), target_charge=110.0)
        assert out.total_usage() == pytest.approx(110.0)

    def test_scale_empty_rejected(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=0.0)])
        with pytest.raises(ValueError):
            scale_trace_load(t, 100.0)


class TestPollution:
    def test_fractions_match_paper(self, rng):
        clean = Trace([TraceJob(user="u", submit=float(i), duration=100.0)
                       for i in range(850)])
        polluted = add_pollution(clean, rng, job_fraction=0.15,
                                 usage_fraction=0.015)
        noise_jobs = polluted.n_jobs - clean.n_jobs
        assert noise_jobs / polluted.n_jobs == pytest.approx(0.15, abs=0.01)
        noise_usage = polluted.total_usage() - clean.total_usage()
        assert noise_usage / polluted.total_usage() == pytest.approx(0.015, abs=0.002)

    def test_noise_is_removable_by_cleaning(self, rng):
        from repro.workload.analysis import clean_trace
        clean = Trace([TraceJob(user="u", submit=float(i), duration=100.0)
                       for i in range(200)])
        polluted = add_pollution(clean, rng)
        recleaned, _ = clean_trace(polluted)
        assert recleaned.n_jobs == clean.n_jobs

    def test_zero_fraction_noop(self, rng):
        clean = Trace([TraceJob(user="u", submit=0.0, duration=1.0)])
        out = add_pollution(clean, rng, job_fraction=0.0, usage_fraction=0.0)
        assert out.n_jobs == 1

    def test_invalid_fractions_rejected(self, rng):
        t = Trace([TraceJob(user="u", submit=0.0, duration=1.0)])
        with pytest.raises(ValueError):
            add_pollution(t, rng, job_fraction=1.0)
        with pytest.raises(ValueError):
            add_pollution(t, rng, usage_fraction=-0.1)
