"""Unit tests for SWF import/export."""

import pytest

from repro.workload.swf import read_swf, write_swf
from repro.workload.trace import Trace, TraceJob


@pytest.fixture
def trace():
    return Trace([
        TraceJob(user="alice", submit=0.0, duration=100.0, cores=1),
        TraceJob(user="bob", submit=50.0, duration=200.0, cores=4),
        TraceJob(user="alice", submit=75.0, duration=0.0, cores=1),
    ])


class TestRoundTrip:
    def test_roundtrip_preserves_modeling_fields(self, trace, tmp_path):
        path = tmp_path / "t.swf"
        write_swf(trace, path)
        loaded = read_swf(path)
        assert loaded.n_jobs == trace.n_jobs
        for a, b in zip(loaded, trace):
            assert a.submit == pytest.approx(b.submit)
            assert a.duration == pytest.approx(b.duration)
            assert a.cores == b.cores
            assert a.job_id == b.job_id

    def test_user_attribution_stable(self, trace, tmp_path):
        path = tmp_path / "t.swf"
        write_swf(trace, path)
        loaded = read_swf(path)
        # alice's two jobs map to the same SWF uid
        users = [j.user for j in loaded]
        assert users[0] == users[2]
        assert users[0] != users[1]

    def test_header_records_user_mapping(self, trace, tmp_path):
        path = tmp_path / "t.swf"
        write_swf(trace, path, comment="test export")
        text = path.read_text()
        assert "; UserID 1: alice" in text
        assert "; test export" in text

    def test_zero_duration_exported_as_failed(self, trace, tmp_path):
        path = tmp_path / "t.swf"
        write_swf(trace, path)
        loaded = read_swf(path)
        assert loaded[2].duration == 0.0


class TestReader:
    def _line(self, job_id=1, submit=10, run=60, procs=2, status=1, uid=7):
        fields = [job_id, submit, 5, run, procs, -1, -1, procs, -1, -1,
                  status, uid, -1, -1, -1, -1, -1, -1]
        return " ".join(str(f) for f in fields)

    def test_basic_parse(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; header\n" + self._line() + "\n")
        trace = read_swf(path)
        assert trace.n_jobs == 1
        job = trace[0]
        assert job.submit == 10.0
        assert job.duration == 60.0
        assert job.cores == 2
        assert job.user == "user7"

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("; c1\n\n; c2\n" + self._line() + "\n\n")
        assert read_swf(path).n_jobs == 1

    def test_failed_status_zeroes_duration(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(self._line(status=0, run=500) + "\n")
        assert read_swf(path)[0].duration == 0.0

    def test_failed_status_kept_when_disabled(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(self._line(status=0, run=500) + "\n")
        trace = read_swf(path, treat_failed_as_zero_duration=False)
        assert trace[0].duration == 500.0

    def test_negative_runtime_clamped(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(self._line(run=-1) + "\n")
        assert read_swf(path)[0].duration == 0.0

    def test_negative_procs_clamped_to_one(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(self._line(procs=-1) + "\n")
        assert read_swf(path)[0].cores == 1

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_swf(path)

    def test_malformed_numbers_rejected(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(" ".join(["x"] * 18) + "\n")
        with pytest.raises(ValueError):
            read_swf(path)

    def test_custom_user_prefix(self, tmp_path):
        path = tmp_path / "t.swf"
        path.write_text(self._line(uid=3) + "\n")
        assert read_swf(path, user_prefix="acct")[0].user == "acct3"


class TestPipelineIntegration:
    def test_swf_export_feeds_the_cleaning_stage(self, tmp_path):
        """A cancelled SWF job (status 0) must be stripped by clean_trace."""
        from repro.workload.analysis import clean_trace
        path = tmp_path / "t.swf"
        trace = Trace([TraceJob(user="u", submit=0.0, duration=50.0),
                       TraceJob(user="u", submit=1.0, duration=0.0)])
        write_swf(trace, path)
        loaded = read_swf(path)
        cleaned, _ = clean_trace(loaded)
        assert cleaned.n_jobs == 1
