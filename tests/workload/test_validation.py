"""Unit tests for synthetic-trace validation."""

import numpy as np
import pytest

from repro.workload.reference import generate_reference_trace
from repro.workload.trace import Trace, TraceJob
from repro.workload.validation import compare_traces


def make_trace(n=300, seed=0, user="u", rate=1.0, dur_scale=10.0):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0 / rate, size=n))
    durations = rng.exponential(dur_scale, size=n) + 0.1
    return Trace([TraceJob(user=user, submit=float(t), duration=float(d))
                  for t, d in zip(times, durations)])


class TestCompareTraces:
    def test_identical_traces_fully_retained(self):
        t = make_trace()
        cmp = compare_traces(t, t)
        assert cmp.max_share_delta() == 0.0
        assert cmp.worst_arrival_ks() == 0.0
        assert cmp.worst_duration_ks() == 0.0
        assert cmp.retained()

    def test_same_model_different_seed_retained(self):
        a = make_trace(seed=1)
        b = make_trace(seed=2)
        cmp = compare_traces(a, b)
        assert cmp.retained()

    def test_different_duration_shape_detected(self):
        a = make_trace(seed=1, dur_scale=10.0)
        rng = np.random.default_rng(3)
        # heavy-tailed durations: same mean ballpark, different shape
        jobs = [TraceJob(user="u", submit=float(t),
                         duration=float(rng.pareto(1.2) * 5.0 + 0.1))
                for t in np.cumsum(rng.exponential(1.0, size=300))]
        b = Trace(jobs)
        cmp = compare_traces(a, b)
        assert cmp.worst_duration_ks() > 0.2
        assert not cmp.retained()

    def test_share_shift_detected(self):
        a = Trace(list(make_trace(seed=1, user="x"))
                  + list(make_trace(seed=2, user="y")))
        b = Trace(list(make_trace(seed=3, user="x", n=500))
                  + list(make_trace(seed=4, user="y", n=100)))
        cmp = compare_traces(a, b)
        assert cmp.max_share_delta() > 0.1

    def test_normalized_time_compares_shapes_across_spans(self):
        a = make_trace(seed=1, rate=1.0)
        # same arrival process, 100x slower clock
        b = Trace([TraceJob(user="u", submit=j.submit * 100.0,
                            duration=j.duration) for j in make_trace(seed=1)])
        cmp = compare_traces(a, b)
        assert cmp.worst_arrival_ks() < 0.05

    def test_rows_render(self):
        t = make_trace()
        rows = compare_traces(t, t).rows()
        assert any("retained: True" in r for r in rows)
        assert any("KS(arrival)" in r for r in rows)

    def test_reference_trace_seeds_retain_properties(self):
        """Two seeds of the reference model are statistically consistent —
        the diversity-with-retention property the paper wants.

        Batching is disabled here: batch anchors shrink the effective
        arrival sample to a few hundred points, which inflates two-sample
        KS to ~0.25 between perfectly consistent seeds.
        """
        a = generate_reference_trace(n_jobs=4000, seed=1, pollution=False,
                                     batching=False)
        b = generate_reference_trace(n_jobs=4000, seed=2, pollution=False,
                                     batching=False)
        cmp = compare_traces(a, b)
        assert cmp.max_share_delta() < 0.02  # shares pinned by the model
        assert cmp.retained(ks_tolerance=0.25)

    def test_batched_seeds_retain_shares_and_medians(self):
        a = generate_reference_trace(n_jobs=4000, seed=1, pollution=False)
        b = generate_reference_trace(n_jobs=4000, seed=2, pollution=False)
        cmp = compare_traces(a, b)
        assert cmp.max_share_delta() < 0.02
        for u in cmp.users:
            assert abs(u.median_ia_original - u.median_ia_synthetic) <= 5

    def test_missing_users_handled(self):
        a = make_trace(user="only_in_a")
        b = make_trace(user="only_in_b")
        cmp = compare_traces(a, b)
        assert cmp.users == []  # intersection empty
        assert cmp.max_share_delta() == 0.0
