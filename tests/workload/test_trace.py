"""Unit tests for trace containers and statistics."""

import numpy as np
import pytest

from repro.workload.trace import Trace, TraceJob


@pytest.fixture
def trace():
    return Trace([
        TraceJob(user="a", submit=10.0, duration=100.0),
        TraceJob(user="b", submit=0.0, duration=50.0),
        TraceJob(user="a", submit=20.0, duration=200.0, cores=2),
        TraceJob(user="b", submit=5.0, duration=0.0),
    ])


class TestTraceJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceJob(user="u", submit=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            TraceJob(user="u", submit=0.0, duration=1.0, cores=0)

    def test_charge(self):
        assert TraceJob(user="u", submit=0.0, duration=10.0, cores=3).charge == 30.0


class TestBasics:
    def test_sorted_by_submit(self, trace):
        assert [j.submit for j in trace] == [0.0, 5.0, 10.0, 20.0]

    def test_shape(self, trace):
        assert trace.n_jobs == 4
        assert trace.start == 0.0
        assert trace.end == 20.0
        assert trace.span == 20.0

    def test_users(self, trace):
        assert trace.users() == ["a", "b"]

    def test_for_user(self, trace):
        assert trace.for_user("a").n_jobs == 2

    def test_filter(self, trace):
        nonzero = trace.filter(lambda j: j.duration > 0)
        assert nonzero.n_jobs == 3

    def test_relabel(self, trace):
        relabeled = trace.relabel({"a": "U65"})
        assert set(relabeled.users()) == {"U65", "b"}

    def test_concatenate(self, trace):
        double = Trace.concatenate([trace, trace])
        assert double.n_jobs == 8


class TestStatistics:
    def test_inter_arrival_times(self, trace):
        np.testing.assert_allclose(trace.inter_arrival_times(), [5.0, 5.0, 10.0])

    def test_inter_arrival_per_user(self, trace):
        np.testing.assert_allclose(trace.inter_arrival_times("a"), [10.0])

    def test_inter_arrival_single_job_empty(self):
        t = Trace([TraceJob(user="u", submit=0.0, duration=1.0)])
        assert t.inter_arrival_times().size == 0

    def test_durations(self, trace):
        np.testing.assert_allclose(sorted(trace.durations("a")), [100.0, 200.0])

    def test_total_usage_counts_cores(self, trace):
        assert trace.total_usage("a") == pytest.approx(100.0 + 400.0)

    def test_usage_shares_sum_to_one(self, trace):
        shares = trace.usage_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_job_shares(self, trace):
        assert trace.job_shares() == {"a": 0.5, "b": 0.5}

    def test_arrival_histogram_counts_total(self, trace):
        edges, counts = trace.arrival_histogram(bin_size=10.0)
        assert counts.sum() == 4

    def test_peak_submission_rate(self, trace):
        # two jobs within [0,10): peak 2 per 10-second window
        assert trace.peak_submission_rate(window=10.0) == 2.0

    def test_empty_trace(self):
        t = Trace([])
        assert t.n_jobs == 0
        assert t.span == 0.0
        assert t.usage_shares() == {}


class TestIO:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.tsv"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.n_jobs == trace.n_jobs
        for a, b in zip(loaded, trace):
            assert a.user == b.user
            assert a.submit == pytest.approx(b.submit)
            assert a.duration == pytest.approx(b.duration)
            assert a.cores == b.cores
            assert a.admin == b.admin

    def test_admin_flag_roundtrip(self, tmp_path):
        t = Trace([TraceJob(user="root", submit=0.0, duration=1.0, admin=True)])
        path = tmp_path / "t.tsv"
        t.save(path)
        assert Trace.load(path)[0].admin is True
