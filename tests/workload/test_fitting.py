"""Unit tests for BIC model selection and KS validation."""

import math

import numpy as np
import pytest

from repro.workload.distributions import FAMILIES, FitError
from repro.workload.fitting import (
    best_fit,
    fit_all,
    fit_family,
    ks_statistic,
    whole_second_median,
)


@pytest.fixture(scope="module")
def weibull_data():
    return FAMILIES["weibull"].make(100.0, 0.8).sample(
        4000, np.random.default_rng(0))


class TestFitFamily:
    def test_result_fields(self, weibull_data):
        r = fit_family(weibull_data, FAMILIES["weibull"])
        assert r.n == 4000
        assert np.isfinite(r.loglik)
        assert r.bic == pytest.approx(2 * math.log(4000) - 2 * r.loglik)
        assert 0.0 <= r.ks <= 1.0

    def test_good_fit_has_small_ks(self, weibull_data):
        r = fit_family(weibull_data, FAMILIES["weibull"])
        assert r.ks < 0.03

    def test_bad_family_has_larger_ks(self, weibull_data):
        r = fit_family(weibull_data, FAMILIES["rayleigh"])
        assert r.ks > 0.1

    def test_row_rendering(self, weibull_data):
        r = fit_family(weibull_data, FAMILIES["weibull"])
        assert "Weibull" in r.row() and "KS=" in r.row()


class TestFitAll:
    def test_sorted_by_bic(self, weibull_data):
        results = fit_all(weibull_data)
        bics = [r.bic for r in results]
        assert bics == sorted(bics)

    def test_failed_families_skipped(self):
        # negative data excludes every positive-support family but others fit
        data = np.random.default_rng(0).normal(-100.0, 5.0, size=2000)
        results = fit_all(data)
        names = {r.family_name for r in results}
        assert "normal" in names
        assert "weibull" not in names

    def test_family_subset(self, weibull_data):
        results = fit_all(weibull_data, families=["weibull", "gamma"])
        assert {r.family_name for r in results} <= {"weibull", "gamma"}

    def test_subsample_caps_n(self, weibull_data):
        results = fit_all(weibull_data, families=["weibull"], subsample=500,
                          rng=np.random.default_rng(1))
        assert results[0].n == 500

    def test_subsample_deterministic_with_rng(self, weibull_data):
        a = fit_all(weibull_data, families=["weibull"], subsample=500,
                    rng=np.random.default_rng(5))
        b = fit_all(weibull_data, families=["weibull"], subsample=500,
                    rng=np.random.default_rng(5))
        assert a[0].fitted.params == b[0].fitted.params


class TestBestFit:
    def test_recovers_generating_family(self, weibull_data):
        # BIC should prefer Weibull on Weibull data (shape far from
        # exponential's k=1 so no aliasing)
        assert best_fit(weibull_data).family_name == "weibull"

    def test_gev_data_recovers_gev(self):
        data = FAMILIES["gev"].make(-0.38, 10.0, 100.0).sample(
            5000, np.random.default_rng(2))
        assert best_fit(data).family_name == "gev"

    def test_no_valid_fit_raises(self):
        with pytest.raises(FitError):
            best_fit(np.array([1.0] * 100), families=["normal"])


class TestHelpers:
    def test_ks_statistic_range(self, weibull_data):
        fitted = FAMILIES["weibull"].fit(weibull_data)
        assert 0.0 <= ks_statistic(weibull_data, fitted) <= 1.0

    def test_whole_second_median_floors(self):
        # paper: U3's median of 0 s means most jobs arrive within the same
        # measured second
        data = np.array([0.4, 0.7, 0.9, 1.2, 5.0])
        assert whole_second_median(data) == 0.0

    def test_whole_second_median_integral(self):
        assert whole_second_median(np.array([2.9, 2.1, 13.7])) == 2.0

    def test_whole_second_median_empty_nan(self):
        assert math.isnan(whole_second_median(np.array([])))
