"""Unit tests for the distribution zoo and paper parameterizations."""

import numpy as np
import pytest

from repro.workload.distributions import FAMILIES, FitError, get_family


class TestRegistry:
    def test_eighteen_families(self):
        # the paper's "set of 18 different distributions"
        assert len(FAMILIES) == 18

    def test_headline_families_present(self):
        # "includes distributions such as normal, Weibull, GEV, BS, Pareto,
        # Burr, and Log-normal"
        for name in ("normal", "weibull", "gev", "birnbaum-saunders",
                     "pareto", "burr", "lognormal"):
            assert name in FAMILIES

    def test_get_family_case_insensitive(self):
        assert get_family("GEV") is FAMILIES["gev"]

    def test_get_family_unknown(self):
        with pytest.raises(KeyError):
            get_family("cauchy-mixture")


class TestPaperParameterizations:
    def test_gev_median_matches_matlab_convention(self):
        # MATLAB GEV(k, sigma, mu): median = mu + sigma*((ln2)^-k - 1)/k
        k, sigma, mu = 0.195, 29.1, 1000.0
        dist = FAMILIES["gev"].make(k, sigma, mu)
        expected = mu + sigma * (np.log(2.0) ** (-k) - 1.0) / k
        assert dist.median() == pytest.approx(expected, rel=1e-6)

    def test_gev_negative_shape_bounded_tail(self):
        dist = FAMILIES["gev"].make(-0.4, 10.0, 100.0)
        # support bounded above at mu + sigma/|k|
        assert dist.cdf(100.0 + 10.0 / 0.4 + 1.0) == pytest.approx(1.0)

    def test_birnbaum_saunders_median_is_beta(self):
        dist = FAMILIES["birnbaum-saunders"].make(1.76e4, 3.53)
        assert dist.median() == pytest.approx(1.76e4, rel=1e-6)

    def test_weibull_median(self):
        lam, k = 5.49e4, 0.637
        dist = FAMILIES["weibull"].make(lam, k)
        assert dist.median() == pytest.approx(lam * np.log(2.0) ** (1.0 / k), rel=1e-6)

    def test_burr_median(self):
        alpha, c, k = 2.07, 11.0, 0.02
        dist = FAMILIES["burr"].make(alpha, c, k)
        expected = alpha * (2.0 ** (1.0 / k) - 1.0) ** (1.0 / c)
        assert dist.median() == pytest.approx(expected, rel=1e-5)

    def test_lognormal_parameterization(self):
        dist = FAMILIES["lognormal"].make(2.0, 0.5)
        assert dist.median() == pytest.approx(np.exp(2.0), rel=1e-6)

    def test_exponential_mean_parameterization(self):
        dist = FAMILIES["exponential"].make(10.0)
        assert dist.median() == pytest.approx(10.0 * np.log(2.0), rel=1e-6)


class TestFittedDistribution:
    def test_cdf_icdf_roundtrip(self):
        dist = FAMILIES["gev"].make(0.1, 2.0, 5.0)
        q = np.array([0.1, 0.5, 0.9])
        np.testing.assert_allclose(dist.cdf(dist.icdf(q)), q, atol=1e-9)

    def test_sample_respects_seed(self):
        dist = FAMILIES["weibull"].make(100.0, 1.5)
        a = dist.sample(10, np.random.default_rng(0))
        b = dist.sample(10, np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)

    def test_loglik_finite_on_support(self):
        dist = FAMILIES["gamma"].make(2.0, 3.0)
        data = dist.sample(100, np.random.default_rng(1))
        assert np.isfinite(dist.loglik(data))

    def test_describe_contains_param_names(self):
        dist = FAMILIES["gev"].make(0.1, 2.0, 5.0)
        text = dist.describe()
        assert "GEV" in text and "sigma" in text

    def test_n_params(self):
        assert FAMILIES["gev"].make(1, 2, 3).n_params == 3
        assert FAMILIES["exponential"].make(1.0).n_params == 1


class TestFitting:
    @pytest.mark.parametrize("name,params", [
        ("gev", (0.195, 15 * 86400.0, 60 * 86400.0)),
        ("gev", (-0.386, 9.75 * 86400.0, 51 * 86400.0)),
        ("weibull", (5.49e4, 0.637)),
        ("birnbaum-saunders", (1.76e4, 3.53)),
        ("burr", (120 * 86400.0, 3.5, 1.2)),
        ("lognormal", (8.0, 1.2)),
        ("normal", (1e6, 2e5)),
        ("gamma", (2.5, 1e4)),
        ("exponential", (5e3,)),
    ])
    def test_parameter_recovery(self, name, params):
        """MLE on the family's own samples must recover the parameters."""
        family = FAMILIES[name]
        true = family.make(*params)
        data = true.sample(6000, np.random.default_rng(7))
        fitted = family.fit(data)
        for got, want in zip(fitted.params, params):
            assert got == pytest.approx(want, rel=0.15, abs=0.05)

    def test_positive_support_rejects_nonpositive_data(self):
        with pytest.raises(FitError):
            FAMILIES["weibull"].fit(np.array([1.0, -2.0] * 10))

    def test_too_few_samples_rejected(self):
        with pytest.raises(FitError):
            FAMILIES["gev"].fit(np.array([1.0, 2.0]))

    def test_constant_data_rejected_for_standardized(self):
        with pytest.raises(FitError):
            FAMILIES["normal"].fit(np.full(100, 7.0))

    def test_scale_invariance_of_shape_params(self):
        """Rescaling data must only move scale parameters (Table III
        regeneration relies on this)."""
        family = FAMILIES["weibull"]
        data = family.make(100.0, 0.7).sample(6000, np.random.default_rng(3))
        f1 = family.fit(data)
        f2 = family.fit(data * 1000.0)
        assert f2.params[1] == pytest.approx(f1.params[1], rel=1e-6)  # shape k
        assert f2.params[0] == pytest.approx(f1.params[0] * 1000.0, rel=1e-6)
