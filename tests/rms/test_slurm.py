"""Unit tests for the SLURM-like scheduler and its plugin integration."""

import pytest

from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.plugins import FixedFairsharePlugin, JobCompletionPlugin, LocalFairsharePlugin
from repro.rms.priority import FactorWeights
from repro.rms.slurm import SlurmScheduler
from repro.sim.engine import SimulationEngine


class RecordingCompletionPlugin(JobCompletionPlugin):
    def __init__(self):
        self.jobs = []

    def job_completed(self, job, now):
        self.jobs.append((job.system_user, now))


def make(engine, **kwargs):
    cluster = Cluster("c", n_nodes=2, cores_per_node=2)
    kwargs.setdefault("sched_interval", 1.0)
    kwargs.setdefault("reprioritize_interval", 5.0)
    return SlurmScheduler("c", engine, cluster, **kwargs)


class TestPluginRegistry:
    def test_no_plugin_neutral_factor(self):
        engine = SimulationEngine()
        sched = make(engine)
        j = Job(system_user="u", duration=1.0)
        assert sched.compute_priority(j, 0.0) == pytest.approx(0.5)

    def test_priority_plugin_supplies_fairshare(self):
        engine = SimulationEngine()
        sched = make(engine)
        sched.register_priority_plugin(FixedFairsharePlugin({"u": 0.9}))
        j = Job(system_user="u", duration=1.0)
        assert sched.compute_priority(j, 0.0) == pytest.approx(0.9)

    def test_plugin_replacement_is_the_integration_seam(self):
        """Swapping local fairshare for Aequus = one registration call."""
        engine = SimulationEngine()
        sched = make(engine)
        local = LocalFairsharePlugin(shares={"u": 1})
        sched.register_priority_plugin(local)
        assert sched.priority_plugin is local
        replacement = FixedFairsharePlugin({"u": 0.2})
        sched.register_priority_plugin(replacement)
        assert sched.priority_plugin is replacement

    def test_completion_plugins_invoked(self):
        engine = SimulationEngine()
        sched = make(engine)
        rec = RecordingCompletionPlugin()
        sched.register_completion_plugin(rec)
        sched.submit(Job(system_user="u", duration=2.0))
        engine.run_until(10.0)
        assert rec.jobs == [("u", pytest.approx(engine.now, abs=10.0))] or \
            rec.jobs[0][0] == "u"

    def test_multiple_completion_plugins(self):
        engine = SimulationEngine()
        sched = make(engine)
        recs = [RecordingCompletionPlugin(), RecordingCompletionPlugin()]
        for r in recs:
            sched.register_completion_plugin(r)
        sched.submit(Job(system_user="u", duration=1.0))
        engine.run_until(5.0)
        assert all(len(r.jobs) == 1 for r in recs)


class TestMultifactor:
    def test_weights_flow_into_priority(self):
        engine = SimulationEngine()
        sched = make(engine, weights=FactorWeights(fairshare=1.0, age=1.0),
                     max_age=100.0)
        sched.register_priority_plugin(FixedFairsharePlugin({"u": 0.4}))
        j = Job(system_user="u", duration=1.0, submit_time=0.0)
        assert sched.compute_priority(j, now=50.0) == pytest.approx((0.4 + 0.5) / 2)

    def test_fairshare_only_default(self):
        engine = SimulationEngine()
        sched = make(engine)
        assert sched.multifactor.weights.fairshare == 1.0
        assert sched.multifactor.weights.age == 0.0

    def test_local_fairshare_end_to_end(self):
        """A greedy user's next jobs sink below a light user's."""
        engine = SimulationEngine()
        sched = make(engine)
        local = LocalFairsharePlugin(shares={"greedy": 1, "light": 1},
                                     half_life=1e9)
        sched.register_priority_plugin(local)
        sched.register_completion_plugin(local)
        sched.submit(Job(system_user="greedy", duration=10.0))
        engine.run_until(20.0)
        g = Job(system_user="greedy", duration=1.0)
        l = Job(system_user="light", duration=1.0)
        assert sched.compute_priority(l, engine.now) > \
            sched.compute_priority(g, engine.now)
