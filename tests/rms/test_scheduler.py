"""Unit tests for the base scheduling loop (queue order, backfill, events)."""

import pytest

from repro.rms.cluster import Cluster
from repro.rms.job import Job, JobState
from repro.rms.scheduler import BaseScheduler
from repro.sim.engine import SimulationEngine


class StaticPriorityScheduler(BaseScheduler):
    """Priority = per-user constant; lets tests pin the queue order."""

    def __init__(self, *args, priorities=None, **kwargs):
        self.priorities = priorities or {}
        self.completions = []
        super().__init__(*args, **kwargs)

    def compute_priority(self, job, now):
        return self.priorities.get(job.system_user, 0.5)

    def on_job_completed(self, job, now):
        self.completions.append((job.job_id, now))


def make(engine, cores=2, nodes=1, **kwargs):
    cluster = Cluster("c", n_nodes=nodes, cores_per_node=cores)
    kwargs.setdefault("sched_interval", 1.0)
    kwargs.setdefault("reprioritize_interval", 5.0)
    return StaticPriorityScheduler("c", engine, cluster, **kwargs)


def job(user="u", duration=10.0, cores=1):
    return Job(system_user=user, duration=duration, cores=cores)


class TestSubmission:
    def test_submit_sets_time_and_priority(self):
        engine = SimulationEngine()
        sched = make(engine, priorities={"u": 0.7})
        engine.run_until(3.0)
        j = job()
        sched.submit(j)
        assert j.submit_time == 3.0
        assert j.priority == 0.7
        assert sched.queue_length == 1

    def test_oversized_job_rejected(self):
        engine = SimulationEngine()
        sched = make(engine, cores=2)
        with pytest.raises(ValueError):
            sched.submit(job(cores=3))

    def test_non_pending_job_rejected(self):
        engine = SimulationEngine()
        sched = make(engine)
        j = job()
        j.mark_cancelled()
        with pytest.raises(ValueError):
            sched.submit(j)

    def test_cancel_removes_from_queue(self):
        engine = SimulationEngine()
        sched = make(engine)
        j = job()
        sched.submit(j)
        sched.cancel(j)
        assert sched.queue_length == 0
        assert j.state is JobState.CANCELLED
        engine.run_until(5.0)
        assert sched.jobs_started == 0


class TestScheduling:
    def test_jobs_start_and_complete(self):
        engine = SimulationEngine()
        sched = make(engine)
        sched.submit(job(duration=5.0))
        engine.run_until(20.0)
        assert sched.jobs_completed == 1
        assert sched.completed[0].state is JobState.COMPLETED

    def test_priority_order_respected(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1,
                     priorities={"low": 0.1, "high": 0.9})
        j_low = job(user="low", duration=10.0)
        j_high = job(user="high", duration=10.0)
        sched.submit(j_low)
        sched.submit(j_high)
        engine.run_until(2.0)
        assert j_high.state is JobState.RUNNING
        assert j_low.state is JobState.PENDING

    def test_fifo_tiebreak_on_equal_priority(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1)
        first = job(duration=10.0)
        second = job(duration=10.0)
        sched.submit(first)
        sched.submit(second)
        engine.run_until(2.0)
        assert first.state is JobState.RUNNING
        assert second.state is JobState.PENDING

    def test_completion_frees_cores_immediately(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1)
        a, b = job(duration=5.0), job(duration=5.0)
        sched.submit(a)
        sched.submit(b)
        engine.run_until(5.0)
        # b must start right at a's completion (no wait for the next pass)
        assert b.start_time == pytest.approx(5.0)

    def test_completion_hooks_called(self):
        engine = SimulationEngine()
        sched = make(engine)
        seen = []
        sched.add_completion_hook(lambda j, t: seen.append(j.job_id))
        j = job(duration=2.0)
        sched.submit(j)
        engine.run_until(10.0)
        assert seen == [j.job_id]
        assert sched.completions[0][0] == j.job_id

    def test_reprioritize_resorts_queue(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1, sched_interval=100.0,
                     reprioritize_interval=2.0,
                     priorities={"a": 0.9, "b": 0.1})
        blocker = job(user="x", duration=3.0)
        sched.submit(blocker)
        sched.schedule_pass()
        a, b = job(user="a", duration=5.0), job(user="b", duration=5.0)
        sched.submit(a)
        sched.submit(b)
        sched.priorities = {"a": 0.1, "b": 0.9}  # flip before resort
        engine.run_until(2.5)  # reprioritize fires at t=2
        engine.run_until(3.5)  # blocker done at t=3, next job starts
        assert b.state is JobState.RUNNING
        assert a.state is JobState.PENDING

    def test_utilization_reported(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1)
        sched.submit(job(duration=10.0))
        engine.run_until(10.0)
        assert sched.utilization() == pytest.approx(1.0, abs=0.05)

    def test_stop_halts_passes(self):
        engine = SimulationEngine()
        sched = make(engine)
        sched.stop()
        sched.submit(job(duration=1.0))
        engine.run_until(10.0)
        assert sched.jobs_started == 0


class TestBackfill:
    def test_small_job_backfills_behind_blocked_big_job(self):
        engine = SimulationEngine()
        sched = make(engine, cores=4, priorities={"big": 0.9, "small": 0.1})
        runner = job(user="r", duration=10.0, cores=3)
        sched.submit(runner)
        sched.schedule_pass()
        big = job(user="big", duration=10.0, cores=4)    # blocked (needs 4)
        small = job(user="small", duration=5.0, cores=1)  # fits, ends by shadow
        sched.submit(big)
        sched.submit(small)
        engine.run_until(1.5)
        assert small.state is JobState.RUNNING
        assert big.state is JobState.PENDING

    def test_backfill_does_not_delay_reserved_job(self):
        engine = SimulationEngine()
        sched = make(engine, cores=4, priorities={"big": 0.9, "long": 0.1})
        runner = job(user="r", duration=10.0, cores=3)
        sched.submit(runner)
        sched.schedule_pass()
        big = job(user="big", duration=10.0, cores=4)
        long_small = job(user="long", duration=100.0, cores=1)  # would delay big
        sched.submit(big)
        sched.submit(long_small)
        engine.run_until(1.5)
        assert long_small.state is JobState.PENDING
        engine.run_until(10.5)
        assert big.state is JobState.RUNNING

    def test_no_backfill_when_disabled(self):
        engine = SimulationEngine()
        sched = make(engine, cores=4, backfill=False,
                     priorities={"big": 0.9, "small": 0.1})
        runner = job(user="r", duration=10.0, cores=3)
        sched.submit(runner)
        sched.schedule_pass()
        sched.submit(job(user="big", duration=10.0, cores=4))
        small = job(user="small", duration=1.0, cores=1)
        sched.submit(small)
        engine.run_until(1.5)
        assert small.state is JobState.PENDING

    def test_queue_length_tracks_pending(self):
        engine = SimulationEngine()
        sched = make(engine, cores=1)
        for _ in range(5):
            sched.submit(job(duration=100.0))
        engine.run_until(1.5)
        assert sched.queue_length == 4  # one running
        assert len(sched.pending) == 4
