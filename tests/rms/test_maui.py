"""Unit tests for the Maui-like scheduler and its patch-based call-outs."""

import pytest

from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.maui import MauiScheduler, MauiWeights
from repro.sim.engine import SimulationEngine


def make(engine, **kwargs):
    cluster = Cluster("m", n_nodes=2, cores_per_node=2)
    kwargs.setdefault("sched_interval", 1.0)
    kwargs.setdefault("reprioritize_interval", 5.0)
    return MauiScheduler("m", engine, cluster, **kwargs)


class TestWeights:
    def test_defaults(self):
        w = MauiWeights()
        assert w.fairshare == 1.0 and w.total == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MauiWeights(xfactor=-1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            MauiWeights(fairshare=0.0)


class TestStockLocalFairshare:
    def test_default_callouts_are_local(self):
        engine = SimulationEngine()
        sched = make(engine, shares={"a": 1, "b": 1})
        assert sched.fairshare_callout == sched._local_fairshare
        assert sched.completion_callout == sched._local_completion

    def test_local_fairshare_reacts_to_usage(self):
        engine = SimulationEngine()
        sched = make(engine, shares={"a": 1, "b": 1})
        sched.submit(Job(system_user="a", duration=10.0))
        engine.run_until(15.0)
        pa = sched.compute_priority(Job(system_user="a", duration=1.0), engine.now)
        pb = sched.compute_priority(Job(system_user="b", duration=1.0), engine.now)
        assert pb > pa

    def test_no_shares_configured_gives_zero_factor(self):
        engine = SimulationEngine()
        sched = make(engine)
        assert sched._local_fairshare(Job(system_user="x", duration=1.0), 0.0) == 0.0


class TestAequusPatch:
    def test_patch_rebinds_both_callouts(self):
        engine = SimulationEngine()
        sched = make(engine)

        class FakeLib:
            def __init__(self):
                self.reports = []

            def get_fairshare(self, user):
                return 0.77

            def report_usage(self, user, start, end, cores):
                self.reports.append((user, start, end, cores))

        lib = FakeLib()
        sched.apply_aequus_patch(lib)
        j = Job(system_user="u", duration=2.0)
        assert sched.compute_priority(j, 0.0) == pytest.approx(0.77)
        sched.submit(j)
        engine.run_until(10.0)
        assert lib.reports and lib.reports[0][0] == "u"

    def test_patched_value_clamped(self):
        engine = SimulationEngine()
        sched = make(engine)

        class WildLib:
            def get_fairshare(self, user):
                return 3.7

            def report_usage(self, *a):
                pass

        sched.apply_aequus_patch(WildLib())
        assert sched.compute_priority(Job(system_user="u", duration=1.0), 0.0) == 1.0


class TestMauiPriorityStyle:
    def test_xfactor_grows_with_wait(self):
        engine = SimulationEngine()
        sched = make(engine)
        j = Job(system_user="u", duration=10.0, submit_time=0.0)
        assert sched.xfactor(j, now=100.0) > sched.xfactor(j, now=0.0)

    def test_xfactor_capped(self):
        engine = SimulationEngine()
        sched = make(engine, max_xfactor=10.0)
        j = Job(system_user="u", duration=1.0, submit_time=0.0)
        assert sched.xfactor(j, now=1e9) == 1.0

    def test_queuetime_factor_saturates(self):
        engine = SimulationEngine()
        sched = make(engine, max_queue_time=100.0)
        j = Job(system_user="u", duration=1.0, submit_time=0.0)
        assert sched.queuetime_factor(j, now=50.0) == pytest.approx(0.5)
        assert sched.queuetime_factor(j, now=500.0) == 1.0

    def test_blended_priority_normalized(self):
        engine = SimulationEngine()
        sched = make(engine, shares={"u": 1},
                     weights=MauiWeights(fairshare=1.0, xfactor=1.0, queuetime=1.0))
        j = Job(system_user="u", duration=10.0, submit_time=0.0)
        p = sched.compute_priority(j, now=50.0)
        assert 0.0 <= p <= 1.0

    def test_runs_workload_end_to_end(self):
        engine = SimulationEngine()
        sched = make(engine, shares={"a": 1, "b": 1})
        for user in ("a", "b", "a", "b"):
            sched.submit(Job(system_user=user, duration=3.0))
        engine.run_until(30.0)
        assert sched.jobs_completed == 4
