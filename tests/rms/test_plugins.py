"""Unit tests for the plugin seams and the local-fairshare baseline."""

import math

import pytest

from repro.rms.job import Job
from repro.rms.plugins import FixedFairsharePlugin, LocalFairsharePlugin


def finished_job(user, duration, end=100.0):
    job = Job(system_user=user, duration=duration, submit_time=0.0)
    job.mark_started(end - duration)
    job.mark_completed(end)
    return job


class TestLocalFairshare:
    def test_shares_normalized(self):
        plugin = LocalFairsharePlugin(shares={"a": 3, "b": 1})
        assert plugin.shares == {"a": 0.75, "b": 0.25}

    def test_no_usage_gives_max_factor(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1})
        assert plugin.fairshare_factor(Job(system_user="a", duration=1.0), 0.0) == 1.0

    def test_classic_two_to_the_minus_formula(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1})
        plugin.job_completed(finished_job("a", 100.0), now=100.0)
        # a has 100% of usage against a 50% share: F = 2^(-1.0/0.5) = 0.25
        factor = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 100.0)
        assert factor == pytest.approx(0.25)

    def test_unknown_user_zero_share_zero_factor(self):
        plugin = LocalFairsharePlugin(shares={"a": 1})
        assert plugin.fairshare_factor(Job(system_user="ghost", duration=1.0), 0.0) == 0.0

    def test_usage_decays_with_half_life(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=100.0)
        plugin.job_completed(finished_job("a", 80.0), now=100.0)
        snap = plugin.usage_snapshot(now=200.0)
        assert snap["a"] == pytest.approx(40.0)

    def test_factor_recovers_as_usage_decays(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=50.0)
        plugin.job_completed(finished_job("a", 100.0), now=100.0)
        plugin.job_completed(finished_job("b", 10.0), now=100.0)
        early = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 100.0)
        # both decay equally so the *share* stays; use relative check against b
        late_a = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 5000.0)
        assert early <= late_a or math.isclose(early, late_a)

    def test_accumulation_across_jobs(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=1e9)
        plugin.job_completed(finished_job("a", 50.0), now=100.0)
        plugin.job_completed(finished_job("a", 30.0), now=100.0)
        assert plugin.usage_snapshot(100.0)["a"] == pytest.approx(80.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LocalFairsharePlugin(shares={"a": 0})
        with pytest.raises(ValueError):
            LocalFairsharePlugin(shares={"a": 1}, half_life=0)


class TestFixedFairshare:
    def test_returns_configured_values(self):
        plugin = FixedFairsharePlugin({"a": 0.9}, default=0.3)
        assert plugin.fairshare_factor(Job(system_user="a", duration=1.0), 0.0) == 0.9
        assert plugin.fairshare_factor(Job(system_user="x", duration=1.0), 0.0) == 0.3

    def test_validates_range(self):
        with pytest.raises(ValueError):
            FixedFairsharePlugin({"a": 1.5})
        with pytest.raises(ValueError):
            FixedFairsharePlugin({}, default=-0.1)
