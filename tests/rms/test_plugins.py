"""Unit tests for the plugin seams and the local-fairshare baseline."""

import math

import pytest

from repro.rms.job import Job
from repro.rms.plugins import FixedFairsharePlugin, LocalFairsharePlugin


def finished_job(user, duration, end=100.0):
    job = Job(system_user=user, duration=duration, submit_time=0.0)
    job.mark_started(end - duration)
    job.mark_completed(end)
    return job


class TestLocalFairshare:
    def test_shares_normalized(self):
        plugin = LocalFairsharePlugin(shares={"a": 3, "b": 1})
        assert plugin.shares == {"a": 0.75, "b": 0.25}

    def test_no_usage_gives_max_factor(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1})
        assert plugin.fairshare_factor(Job(system_user="a", duration=1.0), 0.0) == 1.0

    def test_classic_two_to_the_minus_formula(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1})
        plugin.job_completed(finished_job("a", 100.0), now=100.0)
        # a has 100% of usage against a 50% share: F = 2^(-1.0/0.5) = 0.25
        factor = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 100.0)
        assert factor == pytest.approx(0.25)

    def test_unknown_user_zero_share_zero_factor(self):
        plugin = LocalFairsharePlugin(shares={"a": 1})
        assert plugin.fairshare_factor(Job(system_user="ghost", duration=1.0), 0.0) == 0.0

    def test_usage_decays_with_half_life(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=100.0)
        plugin.job_completed(finished_job("a", 80.0), now=100.0)
        snap = plugin.usage_snapshot(now=200.0)
        assert snap["a"] == pytest.approx(40.0)

    def test_factor_recovers_as_usage_decays(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=50.0)
        plugin.job_completed(finished_job("a", 100.0), now=100.0)
        plugin.job_completed(finished_job("b", 10.0), now=100.0)
        early = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 100.0)
        # both decay equally so the *share* stays; use relative check against b
        late_a = plugin.fairshare_factor(Job(system_user="a", duration=1.0), 5000.0)
        assert early <= late_a or math.isclose(early, late_a)

    def test_accumulation_across_jobs(self):
        plugin = LocalFairsharePlugin(shares={"a": 1, "b": 1}, half_life=1e9)
        plugin.job_completed(finished_job("a", 50.0), now=100.0)
        plugin.job_completed(finished_job("a", 30.0), now=100.0)
        assert plugin.usage_snapshot(100.0)["a"] == pytest.approx(80.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LocalFairsharePlugin(shares={"a": 0})
        with pytest.raises(ValueError):
            LocalFairsharePlugin(shares={"a": 1}, half_life=0)


class TestAequusPluginsOverSocket:
    """The SLURM-style plugin seams, with libaequus on the socket path.

    The plugins themselves are transport-oblivious: wired to a
    ``LibAequus.over_socket`` instance they must produce exactly the
    factors and usage records the in-process direct-dispatch mode does.
    """

    @pytest.fixture
    def stack(self):
        from repro.client.libaequus import LibAequus
        from repro.core.policy import PolicyTree
        from repro.serve.backend import SiteBackend
        from repro.serve.client import SyncAequusClient
        from repro.serve.server import AequusServer, ServerThread
        from repro.services.network import Network
        from repro.services.site import AequusSite, SiteConfig
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        network = Network(engine)
        site = AequusSite(
            "a", engine, network,
            policy=PolicyTree.from_dict({"alice": 3, "bob": 1}),
            config=SiteConfig(uss_exchange_interval=5.0,
                              ums_refresh_interval=5.0,
                              fcs_refresh_interval=5.0))
        site.irs.store_mapping("sys_alice", "alice")
        site.irs.store_mapping("sys_bob", "bob")
        engine.run_until(1.0)
        thread = ServerThread(AequusServer(SiteBackend.for_site(site))).start()
        client = SyncAequusClient(thread.host, thread.port, timeout=5.0,
                                  retries=2, backoff_base=0.01)
        direct = LibAequus.for_site(site, cache_ttl=0.0)
        socketed = LibAequus.over_socket(client, site="a", engine=engine,
                                         cache_ttl=0.0)
        try:
            yield engine, site, direct, socketed
        finally:
            client.close()
            thread.stop()

    def test_priority_plugin_factor_matches_direct_mode(self, stack):
        from repro.rms.plugins import AequusPriorityPlugin

        engine, _, direct, socketed = stack
        job = Job(system_user="sys_alice", duration=10.0, submit_time=0.0)
        over_socket = AequusPriorityPlugin(socketed).fairshare_factor(
            job, engine.now)
        in_process = AequusPriorityPlugin(direct).fairshare_factor(
            job, engine.now)
        assert over_socket == in_process
        assert 0.0 <= over_socket <= 1.0

    def test_unknown_user_factor_matches_direct_mode(self, stack):
        from repro.rms.plugins import AequusPriorityPlugin

        engine, site, direct, socketed = stack
        site.irs.store_mapping("sys_ghost", "ghost")  # not in the policy
        job = Job(system_user="sys_ghost", duration=10.0, submit_time=0.0)
        assert AequusPriorityPlugin(socketed).fairshare_factor(
            job, engine.now) == AequusPriorityPlugin(direct).fairshare_factor(
            job, engine.now)

    def test_jobcomp_plugin_charges_usage_through_the_socket(self, stack):
        from repro.rms.plugins import AequusJobCompletionPlugin

        engine, site, _, socketed = stack
        plugin = AequusJobCompletionPlugin(socketed)
        job = finished_job("sys_bob", duration=120.0, end=engine.now)
        before = site.uss.local.total("bob")
        plugin.job_completed(job, engine.now)
        engine.run_until(engine.now + 5.0)  # exchange tick drains ingress
        assert site.uss.local.total("bob") == pytest.approx(before + 120.0)

    def test_incomplete_job_reports_nothing(self, stack):
        from repro.rms.plugins import AequusJobCompletionPlugin

        engine, site, _, socketed = stack
        plugin = AequusJobCompletionPlugin(socketed)
        plugin.job_completed(
            Job(system_user="sys_bob", duration=5.0, submit_time=0.0),
            engine.now)
        assert site.uss.records_enqueued == 0


class TestFixedFairshare:
    def test_returns_configured_values(self):
        plugin = FixedFairsharePlugin({"a": 0.9}, default=0.3)
        assert plugin.fairshare_factor(Job(system_user="a", duration=1.0), 0.0) == 0.9
        assert plugin.fairshare_factor(Job(system_user="x", duration=1.0), 0.0) == 0.3

    def test_validates_range(self):
        with pytest.raises(ValueError):
            FixedFairsharePlugin({"a": 1.5})
        with pytest.raises(ValueError):
            FixedFairsharePlugin({}, default=-0.1)
