"""Unit tests for the multifactor priority combination."""

import pytest

from repro.rms.job import Job
from repro.rms.priority import FactorWeights, MultifactorPriority


def job(**kwargs):
    kwargs.setdefault("system_user", "u")
    kwargs.setdefault("duration", 10.0)
    kwargs.setdefault("submit_time", 0.0)
    return Job(**kwargs)


class TestFactorWeights:
    def test_defaults_fairshare_only(self):
        w = FactorWeights()
        assert w.fairshare == 1.0 and w.age == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FactorWeights(age=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            FactorWeights(fairshare=0.0)

    def test_as_dict(self):
        w = FactorWeights(fairshare=2.0, age=1.0)
        assert w.as_dict() == {"fairshare": 2.0, "age": 1.0,
                               "job_size": 0.0, "qos": 0.0}


class TestFactors:
    def test_age_factor_ramps_and_saturates(self):
        mp = MultifactorPriority(max_age=100.0)
        j = job()
        assert mp.age_factor(j, now=0.0) == 0.0
        assert mp.age_factor(j, now=50.0) == pytest.approx(0.5)
        assert mp.age_factor(j, now=1000.0) == 1.0

    def test_job_size_favors_small(self):
        mp = MultifactorPriority(total_cores=100)
        assert mp.job_size_factor(job(cores=1)) > mp.job_size_factor(job(cores=50))

    def test_qos_factor_passthrough(self):
        mp = MultifactorPriority()
        assert mp.qos_factor(job(qos=0.7)) == 0.7


class TestCombination:
    def test_fairshare_only_is_identity(self):
        mp = MultifactorPriority(weights=FactorWeights(fairshare=1.0))
        assert mp.compute(job(), fairshare_value=0.42, now=0.0) == pytest.approx(0.42)

    def test_normalized_stays_in_unit_range(self):
        mp = MultifactorPriority(
            weights=FactorWeights(fairshare=2.0, age=1.0, qos=1.0),
            max_age=10.0)
        p = mp.compute(job(qos=1.0), fairshare_value=1.0, now=100.0)
        assert 0.0 <= p <= 1.0

    def test_weighted_blend(self):
        mp = MultifactorPriority(
            weights=FactorWeights(fairshare=1.0, age=1.0), max_age=100.0)
        p = mp.compute(job(), fairshare_value=0.4, now=50.0)
        assert p == pytest.approx((0.4 + 0.5) / 2)

    def test_other_factors_smooth_fairshare(self):
        """The paper's observation: other factors have a smoothing effect
        with impact relative to their weight."""
        fs_only = MultifactorPriority(weights=FactorWeights(fairshare=1.0))
        blended = MultifactorPriority(
            weights=FactorWeights(fairshare=1.0, age=1.0), max_age=100.0)
        j = job()
        swing_fs = abs(fs_only.compute(j, 0.9, now=50.0)
                       - fs_only.compute(j, 0.1, now=50.0))
        swing_blend = abs(blended.compute(j, 0.9, now=50.0)
                          - blended.compute(j, 0.1, now=50.0))
        assert swing_blend == pytest.approx(swing_fs / 2)

    def test_out_of_range_fairshare_rejected(self):
        mp = MultifactorPriority()
        with pytest.raises(ValueError):
            mp.compute(job(), fairshare_value=1.2, now=0.0)

    def test_unnormalized_mode(self):
        mp = MultifactorPriority(
            weights=FactorWeights(fairshare=2.0), normalize=False)
        assert mp.compute(job(), fairshare_value=0.5, now=0.0) == pytest.approx(1.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MultifactorPriority(max_age=0.0)
        with pytest.raises(ValueError):
            MultifactorPriority(total_cores=0)
