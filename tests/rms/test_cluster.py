"""Unit tests for cluster resources and utilization accounting."""

import pytest

from repro.rms.cluster import AllocationError, Cluster
from repro.rms.job import Job


def job(cores=1, duration=10.0):
    return Job(system_user="u", duration=duration, cores=cores, submit_time=0.0)


class TestCapacity:
    def test_total_and_free(self):
        c = Cluster("c", n_nodes=4, cores_per_node=8)
        assert c.total_cores == 32
        assert c.free_cores == 32
        assert c.busy_cores == 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", n_nodes=0)
        with pytest.raises(ValueError):
            Cluster("c", n_nodes=1, cores_per_node=0)

    def test_fits(self):
        c = Cluster("c", n_nodes=2, cores_per_node=2)
        assert c.fits(4)
        assert not c.fits(5)


class TestAllocation:
    def test_allocate_release_roundtrip(self):
        c = Cluster("c", n_nodes=2, cores_per_node=2)
        j = job(cores=3)
        c.allocate(j, now=0.0)
        assert c.free_cores == 1
        c.release(j, now=5.0)
        assert c.free_cores == 4

    def test_allocation_spans_nodes(self):
        c = Cluster("c", n_nodes=3, cores_per_node=2)
        j = job(cores=5)
        c.allocate(j, now=0.0)
        placement = c.placement(j)
        assert sum(take for _, take in placement) == 5
        assert len(placement) == 3

    def test_over_allocation_rejected(self):
        c = Cluster("c", n_nodes=1, cores_per_node=2)
        with pytest.raises(AllocationError):
            c.allocate(job(cores=3), now=0.0)

    def test_double_allocation_rejected(self):
        c = Cluster("c", n_nodes=2, cores_per_node=2)
        j = job()
        c.allocate(j, now=0.0)
        with pytest.raises(AllocationError):
            c.allocate(j, now=1.0)

    def test_release_unallocated_rejected(self):
        c = Cluster("c", n_nodes=1, cores_per_node=1)
        with pytest.raises(AllocationError):
            c.release(job(), now=0.0)

    def test_first_fit_reuses_freed_cores(self):
        c = Cluster("c", n_nodes=1, cores_per_node=2)
        j1, j2, j3 = job(), job(), job()
        c.allocate(j1, 0.0)
        c.allocate(j2, 0.0)
        c.release(j1, 1.0)
        c.allocate(j3, 1.0)  # must fit in the freed slot
        assert c.free_cores == 0


class TestUtilization:
    def test_busy_core_seconds_integral(self):
        c = Cluster("c", n_nodes=1, cores_per_node=4)
        j = job(cores=2)
        c.allocate(j, now=0.0)
        c.release(j, now=10.0)
        assert c.busy_core_seconds(now=10.0) == pytest.approx(20.0)

    def test_utilization_fraction(self):
        c = Cluster("c", n_nodes=1, cores_per_node=4)
        j = job(cores=4)
        c.allocate(j, now=0.0)
        c.release(j, now=5.0)
        assert c.utilization(now=10.0) == pytest.approx(0.5)

    def test_running_job_counts_toward_integral(self):
        c = Cluster("c", n_nodes=1, cores_per_node=1)
        c.allocate(job(cores=1), now=0.0)
        assert c.busy_core_seconds(now=7.0) == pytest.approx(7.0)

    def test_utilization_at_time_zero(self):
        c = Cluster("c", n_nodes=1, cores_per_node=1)
        assert c.utilization(0.0) == 0.0

    def test_time_backwards_rejected(self):
        c = Cluster("c", n_nodes=1, cores_per_node=2)
        j = job()
        c.allocate(j, now=10.0)
        with pytest.raises(ValueError):
            c.release(j, now=5.0)
