"""Unit tests for the job model and lifecycle."""

import pytest

from repro.rms.job import Job, JobState


class TestValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Job(system_user="u", duration=-1.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            Job(system_user="u", duration=1.0, cores=0)

    def test_qos_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Job(system_user="u", duration=1.0, qos=1.5)

    def test_job_ids_unique_and_increasing(self):
        a = Job(system_user="u", duration=1.0)
        b = Job(system_user="u", duration=1.0)
        assert b.job_id > a.job_id


class TestLifecycle:
    def test_initial_state_pending(self):
        job = Job(system_user="u", duration=10.0)
        assert job.state is JobState.PENDING
        assert not job.state.terminal

    def test_start_sets_times(self):
        job = Job(system_user="u", duration=10.0, submit_time=0.0)
        job.mark_started(5.0)
        assert job.state is JobState.RUNNING
        assert job.start_time == 5.0
        assert job.end_time == 15.0

    def test_complete_from_running(self):
        job = Job(system_user="u", duration=10.0, submit_time=0.0)
        job.mark_started(0.0)
        job.mark_completed(10.0)
        assert job.state is JobState.COMPLETED
        assert job.state.terminal

    def test_cannot_start_twice(self):
        job = Job(system_user="u", duration=10.0)
        job.mark_started(0.0)
        with pytest.raises(ValueError):
            job.mark_started(1.0)

    def test_cannot_complete_pending(self):
        job = Job(system_user="u", duration=10.0)
        with pytest.raises(ValueError):
            job.mark_completed(1.0)

    def test_cancel_pending(self):
        job = Job(system_user="u", duration=10.0)
        job.mark_cancelled()
        assert job.state is JobState.CANCELLED

    def test_cannot_cancel_terminal(self):
        job = Job(system_user="u", duration=1.0)
        job.mark_cancelled()
        with pytest.raises(ValueError):
            job.mark_cancelled()


class TestAccounting:
    def test_charge_is_core_seconds(self):
        job = Job(system_user="u", duration=10.0, cores=4)
        job.mark_started(0.0)
        job.mark_completed(10.0)
        assert job.charge == 40.0

    def test_charge_zero_before_start(self):
        assert Job(system_user="u", duration=10.0).charge == 0.0

    def test_wait_time_while_pending(self):
        job = Job(system_user="u", duration=10.0, submit_time=100.0)
        assert job.wait_time(130.0) == 30.0

    def test_wait_time_frozen_after_start(self):
        job = Job(system_user="u", duration=10.0, submit_time=100.0)
        job.mark_started(120.0)
        assert job.wait_time(500.0) == 20.0

    def test_wait_time_without_submit_is_zero(self):
        assert Job(system_user="u", duration=1.0).wait_time(50.0) == 0.0
