"""Integration: multi-site grid behaviour — usage exchange, consistent
prioritization, partial participation, partitions."""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.slurm import SlurmScheduler
from repro.services.network import Network
from repro.services.site import AequusSite, ParticipationMode, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine


def build_grid(n_sites=3, modes=None):
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    modes = modes or {}
    config = SiteConfig(histogram_interval=60.0, uss_exchange_interval=5.0,
                        ums_refresh_interval=5.0, fcs_refresh_interval=5.0,
                        libaequus_cache_ttl=2.0)
    sites = []
    for i in range(n_sites):
        name = f"s{i}"
        site = AequusSite(name, engine, network,
                          policy=PolicyTree.from_dict({"alice": 1, "bob": 1}),
                          config=config,
                          mode=modes.get(name, ParticipationMode.FULL))
        site.irs.store_mapping("sys_alice", "alice")
        site.irs.store_mapping("sys_bob", "bob")
        sites.append(site)
    connect_sites(sites)
    return engine, network, sites


class TestGlobalConsistency:
    def test_usage_on_one_site_lowers_priority_everywhere(self):
        engine, _, sites = build_grid()
        before = [s.fcs.priority("alice") for s in sites]
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=600.0))
        engine.run_until(30.0)
        for site, b in zip(sites, before):
            assert site.fcs.priority("alice") < b

    def test_same_ranking_regardless_of_site(self):
        """The core Aequus promise: jobs receive a comparable ranking
        regardless of which site they are sent to."""
        engine, _, sites = build_grid()
        sites[1].uss.record_job(
            UsageRecord(user="alice", site="s1", start=0.0, end=900.0))
        sites[2].uss.record_job(
            UsageRecord(user="bob", site="s2", start=0.0, end=100.0))
        engine.run_until(30.0)
        rankings = []
        for site in sites:
            rankings.append(site.fcs.priority("alice") < site.fcs.priority("bob"))
        assert all(rankings)

    def test_fairshare_values_agree_across_sites(self):
        engine, _, sites = build_grid()
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=500.0))
        engine.run_until(60.0)
        values = [s.fcs.fairshare_value("alice") for s in sites]
        assert max(values) - min(values) < 1e-6

    def test_usage_not_double_counted_after_many_exchanges(self):
        engine, _, sites = build_grid()
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=100.0))
        engine.run_until(120.0)  # many exchange rounds
        merged = sites[1].uss.global_usage()
        assert merged.total("alice") == pytest.approx(100.0)


class TestPartialParticipation:
    def test_read_only_tracks_global_state(self):
        engine, _, sites = build_grid(
            modes={"s0": ParticipationMode.READ_ONLY})
        sites[1].uss.record_job(
            UsageRecord(user="alice", site="s1", start=0.0, end=500.0))
        engine.run_until(30.0)
        assert sites[0].fcs.fairshare_value("alice") == pytest.approx(
            sites[1].fcs.fairshare_value("alice"), abs=1e-9)

    def test_read_only_usage_invisible_to_others(self):
        engine, _, sites = build_grid(
            modes={"s0": ParticipationMode.READ_ONLY})
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=500.0))
        engine.run_until(30.0)
        assert sites[1].ums.usage_totals().get("alice", 0.0) == 0.0

    def test_local_only_diverges_from_global_view(self):
        engine, _, sites = build_grid(
            modes={"s0": ParticipationMode.LOCAL_ONLY})
        sites[1].uss.record_job(
            UsageRecord(user="alice", site="s1", start=0.0, end=500.0))
        engine.run_until(30.0)
        # the local-only site still sees alice at full priority
        assert sites[0].fcs.priority("alice") > sites[1].fcs.priority("alice")

    def test_local_only_data_still_contributes_globally(self):
        engine, _, sites = build_grid(
            modes={"s0": ParticipationMode.LOCAL_ONLY})
        sites[0].uss.record_job(
            UsageRecord(user="bob", site="s0", start=0.0, end=400.0))
        engine.run_until(30.0)
        assert sites[1].ums.usage_totals().get("bob", 0.0) == pytest.approx(400.0)

    def test_disjunct_site_no_impact_on_others(self):
        engine, _, sites = build_grid(
            modes={"s0": ParticipationMode.DISJUNCT})
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=900.0))
        engine.run_until(30.0)
        p_full = sites[1].fcs.priority("alice")
        assert sites[1].ums.usage_totals().get("alice", 0.0) == 0.0
        # alice untouched elsewhere: priority equals the zero-usage value
        assert p_full == pytest.approx(sites[2].fcs.priority("alice"))


class TestPartitions:
    def test_partitioned_site_catches_up_after_heal(self):
        engine, network, sites = build_grid(n_sites=2)
        network.partition("uss:s0", "uss:s1")
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=300.0))
        engine.run_until(30.0)
        assert sites[1].ums.usage_totals().get("alice", 0.0) == 0.0
        network.heal("uss:s0", "uss:s1")
        engine.run_until(60.0)
        # small tolerance: the UMS reports *decayed* usage
        assert sites[1].ums.usage_totals().get("alice", 0.0) == pytest.approx(
            300.0, rel=1e-3)


class TestSchedulersOnGrid:
    def test_two_integrated_schedulers_share_history(self):
        engine, _, sites = build_grid(n_sites=2)
        scheds = []
        for site in sites:
            cluster = Cluster(site.name, n_nodes=2, cores_per_node=1)
            sched = SlurmScheduler(site.name, engine, cluster,
                                   sched_interval=1.0,
                                   reprioritize_interval=5.0)
            sched.integrate_aequus(LibAequus.for_site(site))
            scheds.append(sched)
        # alice burns time on site 0 only
        for _ in range(6):
            scheds[0].submit(Job(system_user="sys_alice", duration=20.0))
        engine.run_until(200.0)
        # site 1 must now prefer bob, although it never ran a job
        p_alice = scheds[1].compute_priority(
            Job(system_user="sys_alice", duration=1.0), engine.now)
        p_bob = scheds[1].compute_priority(
            Job(system_user="sys_bob", duration=1.0), engine.now)
        assert p_bob > p_alice
