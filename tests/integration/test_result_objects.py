"""Pure-logic tests for experiment result objects (no simulation)."""

import pytest

from repro.experiments.common import ScenarioResult, TestbedConfig
from repro.experiments.policy_change import PolicyChangeResult
from repro.experiments.scenarios import UpdateDelayComparison
from repro.sim.metrics import MetricsRecorder


def fake_result(span: float, decayed_conv: float) -> ScenarioResult:
    return ScenarioResult(
        name="fake", config=TestbedConfig(span=span),
        metrics=MetricsRecorder(), targets={},
        jobs_submitted=10, jobs_completed=10, final_shares={},
        mean_utilization=0.9, throughput_per_minute=100.0,
        peak_submission_rate=200.0, convergence_seconds=None,
        decayed_convergence_seconds=decayed_conv)


class TestUpdateDelayComparison:
    def test_fractions_and_improvement(self):
        cmp = UpdateDelayComparison(
            baseline=fake_result(1000.0, 200.0),
            scaled=fake_result(10_000.0, 1700.0),
            time_scale=10.0)
        assert cmp.baseline_fraction == pytest.approx(0.2)
        assert cmp.scaled_fraction == pytest.approx(0.17)
        assert cmp.improvement == pytest.approx(0.15)

    def test_unconverged_gives_none(self):
        cmp = UpdateDelayComparison(
            baseline=fake_result(1000.0, None),
            scaled=fake_result(10_000.0, 1700.0),
            time_scale=10.0)
        assert cmp.baseline_fraction is None
        assert cmp.improvement is None

    def test_zero_baseline_fraction_guarded(self):
        cmp = UpdateDelayComparison(
            baseline=fake_result(1000.0, 0.0),
            scaled=fake_result(10_000.0, 500.0),
            time_scale=10.0)
        assert cmp.improvement is None


class TestPolicyChangeResult:
    def _result(self):
        return PolicyChangeResult(
            switch_time=100.0, span=200.0,
            priorities_before={"U65": 0.3, "U30": 0.25},
            priorities_after={"U65": 0.15, "U30": 0.5},
            deviation_times=[0.0, 50.0, 100.0, 150.0, 200.0],
            deviation_values=[0.2, 0.2, 0.18, 0.1, 0.05],
            shares_at_switch={"U65": 0.6, "U30": 0.3},
            shares_at_end={"U65": 0.5, "U30": 0.4},
            jobs_completed=42)

    def test_deviation_at_switch(self):
        assert self._result().deviation_at_switch() == 0.18

    def test_final_deviation(self):
        assert self._result().final_deviation() == 0.05

    def test_rows_include_priorities_and_shares(self):
        text = "\n".join(self._result().rows())
        assert "0.300 -> 0.150" in text
        assert "decayed share 0.600 -> 0.500" in text
        assert "deviation vs new targets" in text
