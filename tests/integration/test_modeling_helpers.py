"""Tests for modeling-driver helpers (dataset, row rendering)."""

import pytest

from repro.experiments.modeling import (
    ModelingDataset,
    Table2Row,
    Table3Row,
    prepare_dataset,
)
from repro.workload.fitting import fit_family
from repro.workload.distributions import FAMILIES

import numpy as np


@pytest.fixture(scope="module")
def dataset() -> ModelingDataset:
    return prepare_dataset(n_jobs=6000, seed=4)


class TestDataset:
    def test_labeled_trace_uses_categories(self, dataset):
        assert set(dataset.labeled.users()) <= {"U65", "U30", "U3", "Uoth"}

    def test_phase_times_partition_u65(self, dataset):
        total = dataset.labeled.arrival_times("U65").size
        parts = sum(dataset.phase_times(p).size
                    for p in range(len(dataset.u65_phases)))
        assert parts == total

    def test_phase_times_within_bounds(self, dataset):
        for p, (lo, hi) in enumerate(dataset.u65_phases):
            times = dataset.phase_times(p)
            if times.size:
                assert times.min() >= lo
                assert times.max() < hi

    def test_raw_larger_than_clean(self, dataset):
        assert dataset.raw.n_jobs > dataset.clean.n_jobs


class TestRowRendering:
    def _fit(self):
        data = FAMILIES["weibull"].make(100.0, 0.8).sample(
            2000, np.random.default_rng(0))
        return fit_family(data, FAMILIES["weibull"])

    def test_table2_row_with_fit(self):
        row = Table2Row(label="U30", median_s=1.0, fit=self._fit(),
                        paper={"median": 1, "family": "burr", "ks": 0.08})
        text = row.render()
        assert "U30" in text and "Weibull" in text and "paper" in text
        assert row.family == "weibull"

    def test_table2_composite_row(self):
        row = Table2Row(label="U65", median_s=2.0, fit=None,
                        composite_ks=0.03, paper={"family": "composite"})
        assert row.family == "composite"
        assert row.ks == 0.03
        assert "composite" in row.render()

    def test_table3_row(self):
        row = Table3Row(label="U30", median_s=100.0, fit=self._fit(),
                        paper={"family": "weibull", "ks": 0.04})
        assert "Weibull" in row.render()
