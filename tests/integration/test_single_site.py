"""Integration: the full round trip at one site (paper Figure 2).

job submitted -> SLURM priority plugin -> libaequus -> FCS (pre-computed)
job completed -> completion plugin -> libaequus -> IRS resolve -> USS ->
UMS refresh -> FCS refresh -> new priorities.
"""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.priority import FactorWeights
from repro.rms.slurm import SlurmScheduler
from repro.services.irs import table_endpoint
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig
from repro.sim.engine import SimulationEngine


@pytest.fixture
def world():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    policy = PolicyTree.from_dict({"alice": 1, "bob": 1})
    config = SiteConfig(histogram_interval=60.0, uss_exchange_interval=5.0,
                        ums_refresh_interval=5.0, fcs_refresh_interval=5.0,
                        libaequus_cache_ttl=2.0, decay_half_life=3600.0)
    site = AequusSite("s", engine, network, policy=policy, config=config)
    # identity resolution through the JSON endpoint, as deployed at HPC2N
    site.irs.set_endpoint(table_endpoint({
        "sys_alice": "alice", "sys_bob": "bob"}))
    cluster = Cluster("s", n_nodes=4, cores_per_node=1)
    sched = SlurmScheduler("s", engine, cluster,
                           weights=FactorWeights(fairshare=1.0),
                           sched_interval=1.0, reprioritize_interval=5.0)
    lib = LibAequus.for_site(site)
    sched.integrate_aequus(lib)
    return engine, site, sched, lib


class TestRoundTrip:
    def test_completed_job_usage_feeds_back_into_priority(self, world):
        engine, site, sched, lib = world
        p_before = site.fcs.priority("alice")
        sched.submit(Job(system_user="sys_alice", duration=30.0))
        engine.run_until(60.0)
        assert sched.jobs_completed == 1
        # usage reported under the *grid identity*, not the system user
        assert site.uss.local.total("alice") == pytest.approx(30.0)
        assert site.fcs.priority("alice") < p_before

    def test_priority_plugin_reads_global_value(self, world):
        engine, site, sched, lib = world
        job = Job(system_user="sys_bob", duration=10.0)
        priority = sched.compute_priority(job, engine.now)
        assert priority == pytest.approx(site.fcs.fairshare_value("bob"))

    def test_heavy_user_yields_to_light_user(self, world):
        engine, site, sched, lib = world
        for _ in range(12):
            sched.submit(Job(system_user="sys_alice", duration=20.0))
        engine.run_until(200.0)
        p_alice = sched.compute_priority(Job(system_user="sys_alice",
                                             duration=1.0), engine.now)
        p_bob = sched.compute_priority(Job(system_user="sys_bob",
                                           duration=1.0), engine.now)
        assert p_bob > p_alice

    def test_fairshare_steers_contended_scheduling(self, world):
        """With equal shares, interleaved submission under contention must
        not let one user starve the other."""
        engine, site, sched, lib = world
        jobs = []
        for i in range(40):
            user = "sys_alice" if i % 2 == 0 else "sys_bob"
            j = Job(system_user=user, duration=25.0)
            jobs.append(j)
            sched.submit(j)
        engine.run_until(400.0)
        done_alice = sum(1 for j in sched.completed if j.system_user == "sys_alice")
        done_bob = sum(1 for j in sched.completed if j.system_user == "sys_bob")
        assert abs(done_alice - done_bob) <= 4

    def test_no_realtime_calculation_on_submit(self, world):
        """Submitting a burst of jobs only reads pre-computed values: the
        FCS refresh count must not grow with queries (Section II-A)."""
        engine, site, sched, lib = world
        engine.run_until(1.0)
        refreshes = site.fcs.refreshes
        for _ in range(50):
            sched.submit(Job(system_user="sys_alice", duration=5.0))
        assert site.fcs.refreshes == refreshes

    def test_libaequus_cache_absorbs_batches(self, world):
        engine, site, sched, lib = world
        for _ in range(30):
            lib.get_fairshare("sys_alice")
        assert lib.fairshare_cache_stats.hit_rate > 0.9

    def test_usage_flow_respects_all_delays(self, world):
        """A completed job's usage must not affect priorities before the
        UMS+FCS refresh chain has run (delay sources II)."""
        engine, site, sched, lib = world
        p0 = site.fcs.priority("alice")
        sched.submit(Job(system_user="sys_alice", duration=2.0))
        engine.run_until(3.5)  # job done; services not refreshed yet
        assert site.fcs.priority("alice") == pytest.approx(p0)
        engine.run_until(20.0)
        assert site.fcs.priority("alice") < p0
