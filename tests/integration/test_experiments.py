"""Integration: the experiment drivers (Table I probes, modeling pipeline,
production stability) at reduced scale."""

import pytest

from repro.experiments.modeling import (
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    prepare_dataset,
    regenerate_table2,
    regenerate_table3,
)
from repro.experiments.production import run_production
from repro.experiments.projections import PAPER_TABLE1, regenerate_table1


@pytest.fixture(scope="module")
def dataset():
    return prepare_dataset(n_jobs=20_000, seed=0)


@pytest.fixture(scope="module")
def table2(dataset):
    return regenerate_table2(dataset, subsample=3000)


class TestTable1:
    def test_probed_matrix_matches_paper(self):
        for row in regenerate_table1():
            assert row.properties == PAPER_TABLE1[row.name], row.name


class TestModelingPipeline:
    def test_cleaning_fractions(self, dataset):
        assert dataset.removed_job_fraction == pytest.approx(0.15, abs=0.01)
        assert dataset.removed_usage_fraction == pytest.approx(0.015, abs=0.005)

    def test_four_phases_detected(self, dataset):
        assert len(dataset.u65_phases) == 4

    def test_table2_rows_complete(self, table2):
        labels = [r.label for r in table2]
        assert labels == ["U65 (p1)", "U65 (p2)", "U65 (p3)", "U65 (p4)",
                          "U65", "U30", "U3", "Uoth"]

    def test_u65_phases_fit_gev(self, dataset, table2):
        """At this reduced scale BIC winners can flip among near-tied
        families; GEV must still rank among the top candidates for every
        phase and win the majority (the full-scale benchmark asserts the
        clean all-GEV outcome)."""
        import numpy as np

        from repro.workload.fitting import fit_all

        wins = 0
        rng = np.random.default_rng(0)
        for p, row in enumerate(table2[:4]):
            if row.fit.family_name == "gev":
                wins += 1
                continue
            results = fit_all(dataset.phase_times(p), subsample=3000, rng=rng)
            rank = next(i for i, r in enumerate(results)
                        if r.family_name == "gev")
            assert rank < 5, f"phase {p + 1}: GEV ranked {rank}"
        assert wins >= 2

    def test_composite_ks_beats_every_phase(self, table2):
        """The Equation-1 composite fits U65's arrivals better than any
        single phase fit fits its phase (paper: 0.02 vs 0.05-0.07)."""
        composite_ks = table2[4].ks
        assert composite_ks < 0.06

    def test_ks_values_reasonable(self, table2):
        for row in table2:
            assert row.ks < 0.2

    def test_table3_families_match_paper(self, dataset):
        rows = regenerate_table3(dataset, subsample=3000)
        families = {r.label: r.fit.family_name for r in rows}
        assert families == {"U65": "birnbaum-saunders", "U30": "weibull",
                            "U3": "burr", "Uoth": "birnbaum-saunders"}

    def test_table3_shape_parameters_near_published(self, dataset):
        rows = {r.label: r for r in regenerate_table3(dataset, subsample=3000)}
        # shape params are scale-invariant, so they survive load rescaling
        assert rows["U65"].fit.fitted.params[1] == pytest.approx(3.53, rel=0.15)
        assert rows["U30"].fit.fitted.params[1] == pytest.approx(0.637, rel=0.15)

    def test_figure4_u65_dominates_totals(self, dataset):
        fig = figure4_series(dataset)
        assert fig["u65"].sum() / fig["total"].sum() == pytest.approx(0.81, abs=0.02)

    def test_figure5_composite_density_tracks_empirical(self, dataset, table2):
        fig = figure5_series(dataset, table2=table2)
        assert len(fig["phases"]) == 4
        # density peaks within detected phases
        import numpy as np
        centers = fig["bin_centers"]
        comp = fig["composite_density"]
        peak_time = centers[np.argmax(comp)]
        assert any(lo <= peak_time <= hi for lo, hi in fig["phases"])

    def test_figure6_fitted_cdfs_close(self, dataset, table2):
        import numpy as np
        fig = figure6_series(dataset, table2=table2)
        for user, series in fig.items():
            fitted = series["fitted_cdf"]
            assert np.all(np.diff(fitted) >= -1e-9)
            assert fitted[-1] > 0.9

    def test_figure7_duration_tails(self, dataset):
        fig = figure7_series(dataset)
        # paper: U65/U3/Uoth concentrated in [0, 6e5]; U30 larger tail
        for user in ("U65", "U3", "Uoth"):
            assert fig[user]["fraction_below_6e5"] > 0.95
        assert fig["U30"]["p99"] > fig["U65"]["p99"]


class TestProduction:
    def test_stability_run(self):
        res = run_production(months=1.0, seed=0, jobs_per_month=4000)
        assert res.jobs_per_month > 3500
        assert res.starvation_free()
        for user, (lo, hi) in res.priority_bounds.items():
            assert 0.0 <= lo <= hi <= 1.0
        # priorities must actually respond to usage over a month
        assert any(hi - lo > 0.05 for lo, hi in res.priority_bounds.values())
