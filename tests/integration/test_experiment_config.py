"""Tests for the experiment configuration layer (TestbedConfig, builders)."""

import pytest

from repro.experiments.common import (
    LEAF_FOR_IDENTITY,
    ScenarioResult,
    TestbedConfig,
    build_testbed,
    run_scenario,
)
from repro.rms.priority import FactorWeights
from repro.services.site import ParticipationMode
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES, build_testbed_trace


class TestTestbedConfig:
    def test_defaults_match_paper_setup(self):
        config = TestbedConfig()
        assert config.n_sites == 6
        assert config.hosts_per_site == 40
        assert config.span == 21_600.0
        assert config.site_config.projection == "percental"
        assert config.weights.fairshare == 1.0 and config.weights.age == 0.0

    def test_default_targets_are_workload_shares(self):
        targets = TestbedConfig().targets()
        for user, share in USAGE_SHARES.items():
            assert targets[GRID_IDENTITIES[user]] == share

    def test_explicit_targets_override(self):
        config = TestbedConfig(policy_targets={"/CN=x": 1.0})
        assert config.targets() == {"/CN=x": 1.0}

    def test_site_names(self):
        assert TestbedConfig(n_sites=2).site_names() == ["site1", "site2"]


class TestBuildTestbed:
    @pytest.fixture
    def testbed(self):
        config = TestbedConfig(n_sites=2, hosts_per_site=4, span=600.0)
        tb = build_testbed(config)
        yield tb
        tb.stop()

    def test_one_stack_per_site(self, testbed):
        assert len(testbed.sites) == 2
        assert len(testbed.schedulers) == 2
        assert len(testbed.libs) == 2

    def test_sites_peered(self, testbed):
        for site in testbed.sites:
            assert len(site.uss.peers) == 1

    def test_policy_matches_targets(self, testbed):
        policy = testbed.sites[0].pds.policy()
        for identity, share in testbed.config.targets().items():
            leaf = LEAF_FOR_IDENTITY[identity]
            assert policy[f"/{leaf}"].weight == share

    def test_identity_aliases_registered(self, testbed):
        for dn in GRID_IDENTITIES.values():
            value = testbed.sites[0].fcs.fairshare_value(dn)
            assert value != testbed.sites[0].fcs.unknown_user_value or \
                0.0 <= value <= 1.0

    def test_schedulers_integrated_with_aequus(self, testbed):
        from repro.rms.plugins import AequusPriorityPlugin
        for sched in testbed.schedulers:
            assert isinstance(sched.priority_plugin, AequusPriorityPlugin)

    def test_participation_modes_applied(self):
        config = TestbedConfig(n_sites=3, hosts_per_site=2, span=600.0,
                               participation={"site1": ParticipationMode.READ_ONLY})
        tb = build_testbed(config)
        assert tb.sites[0].mode is ParticipationMode.READ_ONLY
        assert tb.sites[1].mode is ParticipationMode.FULL
        tb.stop()


class TestRunScenario:
    def test_result_contains_all_series(self):
        config = TestbedConfig(n_sites=2, hosts_per_site=10, span=900.0, seed=1)
        trace = build_testbed_trace(n_jobs=800, span=900.0, total_cores=20,
                                    seed=1)
        result = run_scenario("smoke", trace, config)
        assert isinstance(result, ScenarioResult)
        for name in ("share_deviation", "decayed_deviation", "utilization",
                     "queue_length"):
            assert name in result.metrics
        for dn in GRID_IDENTITIES.values():
            assert f"usage_share/{dn}" in result.metrics
            assert f"priority/{dn}" in result.metrics
            assert f"priority/site1/{dn}" in result.metrics

    def test_summary_rows_render(self):
        config = TestbedConfig(n_sites=1, hosts_per_site=10, span=600.0, seed=1)
        trace = build_testbed_trace(n_jobs=400, span=600.0, total_cores=10,
                                    seed=1)
        result = run_scenario("smoke", trace, config)
        text = "\n".join(result.summary_rows())
        assert "jobs submitted/completed" in text
        assert "utilization" in text

    def test_drain_completes_all_jobs(self):
        config = TestbedConfig(n_sites=1, hosts_per_site=10, span=300.0, seed=1)
        trace = build_testbed_trace(n_jobs=200, span=300.0, total_cores=10,
                                    seed=1, load=0.5)
        result = run_scenario("smoke", trace, config, drain=True)
        assert result.jobs_completed == 200
