"""Integration: failure injection — the grid must degrade gracefully.

Scenarios: network partitions during operation, a site's services stopping
mid-run (crash), and late-joining sites.  The decentralized design means
local scheduling always continues; only the *global* view degrades.
"""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.rms.slurm import SlurmScheduler
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig, connect_sites
from repro.sim.engine import SimulationEngine


def build(n_sites=3):
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    config = SiteConfig(uss_exchange_interval=5.0, ums_refresh_interval=5.0,
                        fcs_refresh_interval=5.0, libaequus_cache_ttl=2.0)
    sites = []
    for i in range(n_sites):
        site = AequusSite(f"s{i}", engine, network,
                          policy=PolicyTree.from_dict({"alice": 1, "bob": 1}),
                          config=config)
        site.irs.store_mapping("sys_alice", "alice")
        site.irs.store_mapping("sys_bob", "bob")
        sites.append(site)
    connect_sites(sites)
    return engine, network, sites


class TestPartitionDuringOperation:
    def test_partition_mid_run_then_heal(self):
        engine, network, sites = build(2)
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=100.0))
        engine.run_until(30.0)
        assert sites[1].ums.usage_totals().get("alice", 0.0) > 0
        # partition; new usage at s0 stays invisible at s1
        network.partition("uss:s0", "uss:s1")
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=100.0, end=500.0))
        engine.run_until(60.0)
        seen = sites[1].ums.usage_totals().get("alice", 0.0)
        assert seen < 150.0  # only the pre-partition snapshot
        # heal: the delta protocol detects the sequence gap and repairs it
        # with a requested full-snapshot resync — no replay of lost deltas
        network.heal("uss:s0", "uss:s1")
        engine.run_until(90.0)
        assert sites[1].ums.usage_totals().get("alice", 0.0) == pytest.approx(
            500.0, rel=0.01)
        assert sites[1].uss.resyncs_requested >= 1
        assert sites[0].uss.resyncs_served >= 1

    def test_in_flight_drop_counted_and_heal_restores_delivery(self):
        engine, network, sites = build(2)
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=100.0))
        engine.run_until(7.0)
        delivered = network.stats.delivered
        # a message already in flight when the partition lands is lost
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=7.0, end=9.0))
        engine.run_until(10.01)  # exchange sent at t=10, latency 0.1
        network.partition("uss:s0", "uss:s1")
        engine.run_until(12.0)
        assert network.stats.dropped >= 1
        assert network.stats.delivered == delivered
        network.heal("uss:s0", "uss:s1")
        engine.run_until(40.0)
        assert network.stats.delivered > delivered
        assert sites[1].ums.usage_totals().get("alice", 0.0) == pytest.approx(
            102.0, rel=0.01)

    def test_partitioned_grid_halves_stay_internally_consistent(self):
        engine, network, sites = build(3)
        # isolate s2 from both others
        network.partition("uss:s0", "uss:s2")
        network.partition("uss:s1", "uss:s2")
        sites[0].uss.record_job(
            UsageRecord(user="alice", site="s0", start=0.0, end=300.0))
        engine.run_until(30.0)
        # s0 and s1 agree; s2 is behind
        v0 = sites[0].fcs.fairshare_value("alice")
        v1 = sites[1].fcs.fairshare_value("alice")
        v2 = sites[2].fcs.fairshare_value("alice")
        assert v0 == pytest.approx(v1, abs=1e-9)
        assert v2 > v0  # alice still looks unserved at the isolated site


class TestSiteCrash:
    def test_crashed_site_does_not_stall_the_grid(self):
        engine, network, sites = build(3)
        cluster = Cluster("s0", n_nodes=2, cores_per_node=1)
        sched = SlurmScheduler("s0", engine, cluster, sched_interval=1.0,
                               reprioritize_interval=5.0)
        sched.integrate_aequus(LibAequus.for_site(sites[0]))
        # site 2 crashes: services stop, endpoint vanishes
        sites[2].stop()
        network.disconnect("uss:s2")
        for _ in range(6):
            sched.submit(Job(system_user="sys_alice", duration=5.0))
        engine.run_until(60.0)
        assert sched.jobs_completed == 6
        # survivors still exchange usage
        assert sites[1].ums.usage_totals().get("alice", 0.0) > 0

    def test_queries_after_local_stack_stop_serve_stale_values(self):
        engine, network, sites = build(1)
        value = sites[0].fcs.fairshare_value("alice")
        sites[0].stop()
        engine.run_until(100.0)
        # no refresh anymore, but pre-computed values remain queryable
        assert sites[0].fcs.fairshare_value("alice") == value


class TestLateJoin:
    def test_new_site_catches_up_via_snapshot_exchange(self):
        engine, network, sites = build(2)
        sites[0].uss.record_job(
            UsageRecord(user="bob", site="s0", start=0.0, end=400.0))
        engine.run_until(30.0)
        # a third site joins the collaboration late
        config = SiteConfig(uss_exchange_interval=5.0, ums_refresh_interval=5.0,
                            fcs_refresh_interval=5.0)
        late = AequusSite("late", engine, network,
                          policy=PolicyTree.from_dict({"alice": 1, "bob": 1}),
                          config=config)
        for site in sites:
            site.uss.add_peer("late")
            late.uss.add_peer(site.name)
        engine.run_until(60.0)
        # the full-snapshot exchange brings complete history, not a delta
        assert late.ums.usage_totals().get("bob", 0.0) == pytest.approx(
            400.0, rel=0.01)
        assert late.fcs.priority("alice") > late.fcs.priority("bob")
