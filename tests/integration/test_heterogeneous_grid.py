"""Integration: a heterogeneous grid (SLURM and Maui sites side by side).

Grids "may be comprised of several different resource scheduling systems",
and without Aequus "the same job may be prioritized differently depending
on to which underlying site the job is submitted" (paper Section I).  With
Aequus integrated into both scheduler types, the fairshare ranking must be
consistent across them.
"""

import pytest

from repro.experiments.common import TestbedConfig, build_testbed, run_scenario
from repro.rms.job import Job
from repro.rms.maui import MauiScheduler
from repro.rms.slurm import SlurmScheduler
from repro.workload.reference import GRID_IDENTITIES, USAGE_SHARES, build_testbed_trace


@pytest.fixture(scope="module")
def mixed_result():
    config = TestbedConfig(n_sites=2, hosts_per_site=20, span=3600.0,
                           seed=3, rms="mixed")
    trace = build_testbed_trace(n_jobs=4000, span=3600.0, total_cores=40,
                                seed=3)
    return run_scenario("mixed", trace, config)


class TestMixedGrid:
    def test_mixed_testbed_alternates_scheduler_types(self):
        config = TestbedConfig(n_sites=4, hosts_per_site=2, span=600.0,
                               rms="mixed")
        tb = build_testbed(config)
        kinds = [type(s) for s in tb.schedulers]
        assert kinds == [SlurmScheduler, MauiScheduler,
                         SlurmScheduler, MauiScheduler]
        tb.stop()

    def test_unknown_rms_rejected(self):
        config = TestbedConfig(n_sites=1, hosts_per_site=2, span=600.0,
                               rms="pbs")
        with pytest.raises(ValueError):
            build_testbed(config)

    def test_mixed_grid_converges_like_homogeneous(self, mixed_result):
        assert mixed_result.jobs_completed > 0.9 * 4000
        assert mixed_result.series("share_deviation").values[-1] < 0.04
        for user, target in USAGE_SHARES.items():
            got = mixed_result.final_shares[GRID_IDENTITIES[user]]
            assert got == pytest.approx(target, abs=0.05), user

    def test_cross_scheduler_ranking_consistent(self):
        """A probe job per user must rank identically on the SLURM site and
        the Maui site — the comparable-ranking promise."""
        config = TestbedConfig(n_sites=2, hosts_per_site=10, span=1800.0,
                               seed=5, rms="mixed")
        trace = build_testbed_trace(n_jobs=1500, span=1800.0, total_cores=20,
                                    seed=5)
        tb = build_testbed(config)
        tb.host.schedule_trace(trace)
        tb.engine.run_until(1800.0)
        slurm, maui = tb.schedulers
        assert isinstance(slurm, SlurmScheduler)
        assert isinstance(maui, MauiScheduler)
        now = tb.engine.now

        def ranking(sched):
            prios = {}
            for user, dn in GRID_IDENTITIES.items():
                system_user = tb.host.mapper.system_user(dn, sched.name)
                probe = Job(system_user=system_user, duration=60.0,
                            submit_time=now)
                prios[user] = sched.compute_priority(probe, now)
            return sorted(prios, key=prios.get, reverse=True)

        assert ranking(slurm) == ranking(maui)
        tb.stop()
