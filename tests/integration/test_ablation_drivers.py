"""Tests for the ablation / smoothing / characterization drivers (tiny scale)."""

import pytest

from repro.experiments.ablations import (
    cache_ablation,
    decay_ablation,
    dispatch_ablation,
    projection_ablation,
)
from repro.experiments.characterization import characterize_projections
from repro.experiments.smoothing import smoothing_experiment
from repro.rms.priority import FactorWeights

TINY = dict(n_jobs=1200, span=1200.0, n_sites=1, hosts_per_site=10, seed=2)


class TestProjectionAblation:
    def test_three_arms_all_converge(self):
        runs = projection_ablation(**TINY)
        assert [r.label for r in runs] == [
            "projection=percental", "projection=dictionary",
            "projection=bitwise"]
        for run in runs:
            assert run.final_deviation < 0.1
            assert run.result.jobs_completed > 0.8 * TINY["n_jobs"]

    def test_rows_render(self):
        runs = projection_ablation(**TINY)
        for run in runs:
            assert "deviation=" in run.row()


class TestDispatchAblation:
    def test_both_policies_run(self):
        runs = dispatch_ablation(**TINY)
        assert len(runs) == 2
        for run in runs:
            assert run.result.jobs_submitted == TINY["n_jobs"]


class TestDecayAblation:
    def test_custom_half_lives(self):
        runs = decay_ablation(half_lives=[300.0, 3000.0], **TINY)
        assert len(runs) == 2
        assert "half_life=300s" in runs[0].label


class TestCacheAblation:
    def test_cache_reduces_lookups(self):
        results = cache_ablation(ttls=[0.0, 30.0], **TINY)
        cold, warm = results
        assert cold.ttl == 0.0 and warm.ttl == 30.0
        assert cold.cache_hit_rate == 0.0
        assert warm.cache_hit_rate > 0.5
        assert warm.fcs_lookups < cold.fcs_lookups

    def test_rows_render(self):
        results = cache_ablation(ttls=[10.0], **TINY)
        assert "hit rate" in results[0].row()


class TestSmoothing:
    def test_fluctuation_shrinks_with_dilution(self):
        runs = smoothing_experiment(
            n_jobs=1500, span=2400.0, n_sites=1, hosts_per_site=10, seed=2,
            mixes=[FactorWeights(fairshare=1.0),
                   FactorWeights(fairshare=1.0, age=1.0)])
        assert runs[0].fairshare_weight_fraction == 1.0
        assert runs[1].fairshare_weight_fraction == 0.5
        assert runs[1].mean_fluctuation < runs[0].mean_fluctuation

    def test_rows_render(self):
        runs = smoothing_experiment(
            n_jobs=800, span=1800.0, n_sites=1, hosts_per_site=10, seed=2,
            mixes=[FactorWeights(fairshare=1.0)])
        assert "fs-weight=1.00" in runs[0].row()


class TestCharacterization:
    @pytest.fixture(scope="class")
    def results(self):
        return characterize_projections(seed=1, n_trees=20)

    def test_all_projections_characterized(self, results):
        assert {r.name for r in results} == {"dictionary", "bitwise",
                                             "percental"}

    def test_metrics_in_valid_ranges(self, results):
        for r in results:
            assert 0.0 <= r.order_fidelity <= 1.0
            assert r.proportionality_error >= 0.0
            assert 0.0 <= r.isolation_violations <= 1.0

    def test_dictionary_order_perfect(self, results):
        by_name = {r.name: r for r in results}
        assert by_name["dictionary"].order_fidelity == 1.0

    def test_percental_least_isolated(self, results):
        by_name = {r.name: r for r in results}
        assert by_name["percental"].isolation_violations >= \
            max(by_name["dictionary"].isolation_violations,
                by_name["bitwise"].isolation_violations)

    def test_subset_of_names(self):
        results = characterize_projections(seed=1, n_trees=5,
                                           names=["percental"])
        assert len(results) == 1 and results[0].name == "percental"
