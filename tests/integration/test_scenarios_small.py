"""Integration: scaled-down versions of the paper's evaluation scenarios.

The benchmarks run the paper-scale configurations; these tests assert the
same qualitative findings at a size that keeps the suite fast.
"""

import pytest

from repro.experiments.scenarios import (
    baseline,
    bursty,
    non_optimal_policy,
    partial_participation,
)
from repro.workload.reference import BURSTY_USAGE_SHARES, GRID_IDENTITIES, USAGE_SHARES

SMALL = dict(n_jobs=4000, span=3600.0, n_sites=2, hosts_per_site=20, seed=3)


@pytest.fixture(scope="module")
def baseline_result():
    return baseline(**SMALL)


class TestBaseline:
    def test_all_jobs_dispatch(self, baseline_result):
        assert baseline_result.jobs_submitted == SMALL["n_jobs"]

    def test_most_jobs_complete(self, baseline_result):
        assert baseline_result.jobs_completed > 0.9 * SMALL["n_jobs"]

    def test_utilization_near_target(self, baseline_result):
        # paper: 93%-97% (our window includes ramp-up, hence the wider floor)
        tail = baseline_result.series("utilization").tail_mean(0.5)
        assert 0.85 <= tail <= 1.0

    def test_shares_converge_to_targets(self, baseline_result):
        final_dev = baseline_result.series("share_deviation").values[-1]
        assert final_dev < 0.03
        assert baseline_result.convergence_seconds is not None

    def test_final_shares_close_per_user(self, baseline_result):
        for user, target in USAGE_SHARES.items():
            got = baseline_result.final_shares[GRID_IDENTITIES[user]]
            assert got == pytest.approx(target, abs=0.05)

    def test_priorities_respond_to_usage(self, baseline_result):
        series = baseline_result.priority_series(GRID_IDENTITIES["U65"])
        assert max(series.values) - min(series.values) > 0.1

    def test_deviation_decreases_over_run(self, baseline_result):
        dev = baseline_result.series("share_deviation")
        early = dev.values[1]
        late = dev.tail_mean(0.25)
        assert late < early


class TestNonOptimalPolicy:
    def test_system_keeps_running_despite_mismatch(self):
        result = non_optimal_policy(**SMALL)
        assert result.jobs_completed > 0.9 * SMALL["n_jobs"]
        # usage cannot converge to an unreachable 70/20/8/2 policy;
        # utilization must be preserved by running available (low-priority)
        # jobs anyway — the Figure 12 finding
        tail_util = result.series("utilization").tail_mean(0.5)
        assert tail_util > 0.8

    def test_underserved_u3_keeps_high_priority(self):
        result = non_optimal_policy(**SMALL)
        # U3's 8% target is far above its 2.86% usage: priority stays high
        u3 = result.priority_series(GRID_IDENTITIES["U3"]).tail_mean(0.3)
        u30 = result.priority_series(GRID_IDENTITIES["U30"]).tail_mean(0.3)
        assert u3 > u30


class TestPartialParticipation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return partial_participation(n_jobs=4000, span=3600.0, n_sites=4,
                                     hosts_per_site=10, seed=3)

    def test_read_only_site_well_aligned(self, outcome):
        """Paper: priority on the site reading global data remains well
        aligned with the priority of fully participating sites."""
        for dn in GRID_IDENTITIES.values():
            assert outcome.priority_alignment(dn, outcome.read_only_site) < 0.08

    def test_local_only_less_aligned_than_read_only(self, outcome):
        gaps_ro = [outcome.priority_alignment(dn, outcome.read_only_site)
                   for dn in GRID_IDENTITIES.values()]
        gaps_lo = [outcome.priority_alignment(dn, outcome.local_only_site)
                   for dn in GRID_IDENTITIES.values()]
        assert sum(gaps_lo) > sum(gaps_ro)

    def test_global_convergence_not_noticeably_impacted(self, outcome):
        assert outcome.result.series("share_deviation").values[-1] < 0.05


class TestBursty:
    @pytest.fixture(scope="class")
    def result(self):
        return bursty(**SMALL)

    def test_u3_priority_bounded_by_k_formula(self, result):
        """Figure 13b: k=0.5 and U3 share 0.12 bound priority at 0.56."""
        series = result.priority_series(GRID_IDENTITIES["U3"])
        assert max(series.values) <= 0.56 + 1e-6

    def test_u3_priority_reaches_near_maximum_before_burst(self, result):
        span = result.config.span
        series = result.priority_series(GRID_IDENTITIES["U3"])
        pre_burst = [v for t, v in zip(series.times, series.values)
                     if t < span / 3]
        assert max(pre_burst) > 0.5  # unused allocation: near the 0.56 cap

    def test_system_readjusts_after_burst(self, result):
        """After the burst lands, U3's priority must fall from the cap."""
        span = result.config.span
        series = result.priority_series(GRID_IDENTITIES["U3"])
        post = [v for t, v in zip(series.times, series.values) if t > 0.7 * span]
        assert min(post) < 0.45

    def test_final_shares_approach_bursty_targets(self, result):
        for user, target in BURSTY_USAGE_SHARES.items():
            got = result.final_shares[GRID_IDENTITIES[user]]
            assert got == pytest.approx(target, abs=0.08)
