"""Unit tests for the libaequus client library."""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig
from repro.sim.engine import SimulationEngine


@pytest.fixture
def setup():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    config = SiteConfig(uss_exchange_interval=5.0, ums_refresh_interval=5.0,
                        fcs_refresh_interval=5.0, libaequus_cache_ttl=10.0)
    site = AequusSite("a", engine, network,
                      policy=PolicyTree.from_dict({"alice": 3, "bob": 1}),
                      config=config)
    site.irs.store_mapping("sys_alice", "alice")
    site.irs.store_mapping("sys_bob", "bob")
    lib = LibAequus.for_site(site)
    return engine, site, lib


class TestFairshareQueries:
    def test_returns_fcs_value(self, setup):
        engine, site, lib = setup
        assert lib.get_fairshare("sys_alice") == site.fcs.fairshare_value("alice")

    def test_value_clamped_to_unit_range(self, setup):
        _, _, lib = setup
        v = lib.get_fairshare("sys_alice")
        assert 0.0 <= v <= 1.0

    def test_caching_within_ttl(self, setup):
        engine, site, lib = setup
        v1 = lib.get_fairshare("sys_alice")
        # change the underlying state; cached value must persist within TTL
        site.uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        engine.run_until(9.0)  # FCS refreshed, but lib cache still warm
        assert lib.get_fairshare("sys_alice") == v1
        engine.run_until(20.0)
        assert lib.get_fairshare("sys_alice") < v1

    def test_cache_stats_track_batching(self, setup):
        _, _, lib = setup
        for _ in range(10):
            lib.get_fairshare("sys_alice")
        assert lib.fairshare_cache_stats.hits == 9
        assert lib.fairshare_cache_stats.misses == 1
        assert lib.fairshare_calls == 10


class TestIdentityResolution:
    def test_resolves_through_irs(self, setup):
        _, _, lib = setup
        assert lib.resolve_identity("sys_bob") == "bob"

    def test_identity_cached(self, setup):
        _, site, lib = setup
        lib.resolve_identity("sys_bob")
        lib.resolve_identity("sys_bob")
        assert lib.identity_cache_stats.hits == 1


class TestUsageReporting:
    def test_report_records_in_uss(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_alice", start=0.0, end=120.0)
        assert site.uss.local.total("alice") == pytest.approx(120.0)
        assert lib.usage_reports == 1

    def test_report_resolves_identity(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_bob", start=0.0, end=60.0)
        assert "bob" in site.uss.local.users

    def test_report_delay_models_delay_source_one(self, setup):
        engine, site, _ = setup
        lib = LibAequus.for_site(site, report_delay=5.0)
        lib.report_usage("sys_alice", start=0.0, end=60.0)
        assert site.uss.local.total("alice") == 0.0
        engine.run_until(5.0)
        assert site.uss.local.total("alice") == pytest.approx(60.0)

    def test_multicore_charge(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_alice", start=0.0, end=10.0, cores=8)
        assert site.uss.local.total("alice") == pytest.approx(80.0)

    def test_for_site_uses_config_ttl(self, setup):
        _, site, _ = setup
        lib = LibAequus.for_site(site)
        assert lib._fairshare_cache.ttl == site.config.libaequus_cache_ttl


class TestUniformCacheStats:
    """Both caches report the same shape, negatives included."""

    def test_stats_shape_is_symmetric(self, setup):
        _, _, lib = setup
        lib.get_fairshare("sys_alice")
        stats = lib.cache_stats()
        assert set(stats) == {"fairshare", "identity"}
        expected_keys = {"hits", "misses", "lookups", "hit_rate",
                         "negative", "entries", "ttl"}
        for side in stats.values():
            assert set(side) == expected_keys

    def test_hit_and_miss_counters_agree_with_cache(self, setup):
        _, _, lib = setup
        for _ in range(4):
            lib.get_fairshare("sys_alice")
        stats = lib.cache_stats()
        assert stats["fairshare"]["misses"] == 1
        assert stats["fairshare"]["hits"] == 3
        assert stats["fairshare"]["lookups"] == 4
        assert stats["identity"]["misses"] == 1
        assert stats["identity"]["hits"] == 3

    def test_unknown_grid_user_counts_fairshare_negative(self, setup):
        _, site, lib = setup
        # identity resolves, but the grid user is absent from the policy
        site.irs.store_mapping("sys_ghost", "ghost")
        value, known = lib.lookup_fairshare("sys_ghost")
        assert not known
        assert value == site.fcs.unknown_user_value
        assert lib.cache_stats()["fairshare"]["negative"] == 1

    def test_negative_fairshare_results_are_cached(self, setup):
        _, site, lib = setup
        site.irs.store_mapping("sys_ghost", "ghost")
        for _ in range(5):
            lib.lookup_fairshare("sys_ghost")
        # the fallback value was loaded once and served from cache after:
        # a batch of unknown-user jobs must not hammer the service
        assert lib.cache_stats()["fairshare"]["negative"] == 1
        assert lib.cache_stats()["fairshare"]["hits"] == 4

    def test_failed_resolution_counts_negative_and_is_never_cached(
            self, setup):
        _, site, lib = setup
        from repro.services.irs import IdentityResolutionError
        for _ in range(3):
            with pytest.raises(IdentityResolutionError):
                lib.resolve_identity("sys_nobody")
        assert lib.cache_stats()["identity"]["negative"] == 3
        # a mapping stored later must be picked up immediately
        site.irs.store_mapping("sys_nobody", "alice")
        assert lib.resolve_identity("sys_nobody") == "alice"

    def test_legacy_stats_properties_still_work(self, setup):
        _, _, lib = setup
        lib.get_fairshare("sys_alice")
        assert lib.fairshare_cache_stats.misses == 1
        assert lib.identity_cache_stats.misses == 1


class TestSocketTransport:
    """The same library, with every call-out crossing a real socket."""

    @pytest.fixture
    def socket_lib(self, setup):
        from repro.serve.backend import SiteBackend
        from repro.serve.client import SyncAequusClient
        from repro.serve.server import AequusServer, ServerThread

        engine, site, _ = setup
        thread = ServerThread(AequusServer(SiteBackend.for_site(site))).start()
        client = SyncAequusClient(thread.host, thread.port, timeout=5.0,
                                  retries=2, backoff_base=0.01)
        lib = LibAequus.over_socket(client, site="a", engine=engine,
                                    cache_ttl=10.0)
        try:
            yield engine, site, lib, client
        finally:
            client.close()
            thread.stop()

    def test_fairshare_matches_direct_dispatch(self, socket_lib):
        _, site, lib, _ = socket_lib
        assert lib.get_fairshare("sys_alice") == \
            site.fcs.fairshare_value("alice")

    def test_identity_resolution_over_socket(self, socket_lib):
        _, _, lib, _ = socket_lib
        assert lib.resolve_identity("sys_bob") == "bob"

    def test_cache_suppresses_round_trips(self, socket_lib):
        _, _, lib, client = socket_lib
        before = client.stats["requests"]
        for _ in range(10):
            lib.get_fairshare("sys_alice")
        # one RESOLVE_IDENTITY + one GET_FAIRSHARE; nine cache hits
        assert client.stats["requests"] == before + 2

    def test_report_usage_lands_in_uss(self, socket_lib):
        engine, site, lib, _ = socket_lib
        before = site.uss.local.total("bob")
        lib.report_usage("sys_bob", start=engine.now, end=engine.now + 240.0)
        assert site.uss.records_enqueued >= 1
        engine.run_until(engine.now + 5.0)  # exchange tick drains ingress
        assert site.uss.local.total("bob") == pytest.approx(before + 240.0)

    def test_unknown_resolution_raises_same_error_as_direct(self, socket_lib):
        _, _, lib, _ = socket_lib
        from repro.services.irs import IdentityResolutionError
        with pytest.raises(IdentityResolutionError):
            lib.resolve_identity("sys_nobody")
        assert lib.cache_stats()["identity"]["negative"] == 1
