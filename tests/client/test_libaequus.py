"""Unit tests for the libaequus client library."""

import pytest

from repro.client.libaequus import LibAequus
from repro.core.policy import PolicyTree
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.site import AequusSite, SiteConfig
from repro.sim.engine import SimulationEngine


@pytest.fixture
def setup():
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    config = SiteConfig(uss_exchange_interval=5.0, ums_refresh_interval=5.0,
                        fcs_refresh_interval=5.0, libaequus_cache_ttl=10.0)
    site = AequusSite("a", engine, network,
                      policy=PolicyTree.from_dict({"alice": 3, "bob": 1}),
                      config=config)
    site.irs.store_mapping("sys_alice", "alice")
    site.irs.store_mapping("sys_bob", "bob")
    lib = LibAequus.for_site(site)
    return engine, site, lib


class TestFairshareQueries:
    def test_returns_fcs_value(self, setup):
        engine, site, lib = setup
        assert lib.get_fairshare("sys_alice") == site.fcs.fairshare_value("alice")

    def test_value_clamped_to_unit_range(self, setup):
        _, _, lib = setup
        v = lib.get_fairshare("sys_alice")
        assert 0.0 <= v <= 1.0

    def test_caching_within_ttl(self, setup):
        engine, site, lib = setup
        v1 = lib.get_fairshare("sys_alice")
        # change the underlying state; cached value must persist within TTL
        site.uss.record_job(UsageRecord(user="alice", site="a", start=0.0, end=500.0))
        engine.run_until(9.0)  # FCS refreshed, but lib cache still warm
        assert lib.get_fairshare("sys_alice") == v1
        engine.run_until(20.0)
        assert lib.get_fairshare("sys_alice") < v1

    def test_cache_stats_track_batching(self, setup):
        _, _, lib = setup
        for _ in range(10):
            lib.get_fairshare("sys_alice")
        assert lib.fairshare_cache_stats.hits == 9
        assert lib.fairshare_cache_stats.misses == 1
        assert lib.fairshare_calls == 10


class TestIdentityResolution:
    def test_resolves_through_irs(self, setup):
        _, _, lib = setup
        assert lib.resolve_identity("sys_bob") == "bob"

    def test_identity_cached(self, setup):
        _, site, lib = setup
        lib.resolve_identity("sys_bob")
        lib.resolve_identity("sys_bob")
        assert lib.identity_cache_stats.hits == 1


class TestUsageReporting:
    def test_report_records_in_uss(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_alice", start=0.0, end=120.0)
        assert site.uss.local.total("alice") == pytest.approx(120.0)
        assert lib.usage_reports == 1

    def test_report_resolves_identity(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_bob", start=0.0, end=60.0)
        assert "bob" in site.uss.local.users

    def test_report_delay_models_delay_source_one(self, setup):
        engine, site, _ = setup
        lib = LibAequus.for_site(site, report_delay=5.0)
        lib.report_usage("sys_alice", start=0.0, end=60.0)
        assert site.uss.local.total("alice") == 0.0
        engine.run_until(5.0)
        assert site.uss.local.total("alice") == pytest.approx(60.0)

    def test_multicore_charge(self, setup):
        engine, site, lib = setup
        lib.report_usage("sys_alice", start=0.0, end=10.0, cores=8)
        assert site.uss.local.total("alice") == pytest.approx(80.0)

    def test_for_site_uses_config_ttl(self, setup):
        _, site, _ = setup
        lib = LibAequus.for_site(site)
        assert lib._fairshare_cache.ttl == site.config.libaequus_cache_ttl
