"""Property-based tests for the projection algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.projection import (
    BitwiseVectorProjection,
    DictionaryOrderingProjection,
    PercentalProjection,
)
from repro.core.vector import FairshareVector

vector_lists = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=9999.0, allow_nan=False),
             min_size=1, max_size=4),
    min_size=1, max_size=8)


def as_vectors(lists):
    return {f"u{i}": FairshareVector(elems) for i, elems in enumerate(lists)}


class TestDictionaryProperties:
    @given(vector_lists)
    def test_values_in_unit_range(self, lists):
        values = DictionaryOrderingProjection().project_vectors(as_vectors(lists))
        assert all(0.0 < v < 1.0 for v in values.values())

    @given(vector_lists)
    def test_order_preservation(self, lists):
        vectors = as_vectors(lists)
        values = DictionaryOrderingProjection().project_vectors(vectors)
        names = list(vectors)
        for a in names:
            for b in names:
                if vectors[a] > vectors[b]:
                    assert values[a] > values[b]
                elif vectors[a] == vectors[b]:
                    assert values[a] == values[b]

    @given(vector_lists)
    def test_evenly_spaced_distinct_ranks(self, lists):
        vectors = as_vectors(lists)
        values = DictionaryOrderingProjection().project_vectors(vectors)
        n = len(vectors)
        allowed = {(n - i) / (n + 1) for i in range(n)}
        assert set(values.values()) <= {round(v, 12) for v in allowed} | set(values.values())
        for v in values.values():
            assert any(abs(v - a) < 1e-12 for a in allowed)


class TestBitwiseProperties:
    @given(vector_lists, st.integers(min_value=4, max_value=20))
    def test_values_in_unit_range(self, lists, bits):
        proj = BitwiseVectorProjection(bits_per_level=bits)
        values = proj.project_vectors(as_vectors(lists))
        assert all(0.0 <= v <= 1.0 for v in values.values())

    @given(vector_lists, st.integers(min_value=10, max_value=17))
    def test_order_preserved_at_quantized_resolution(self, lists, bits):
        """The projection is exactly the lexicographic order of the
        *quantized* vectors — sub-quantum differences at one level can be
        outweighed by deeper levels (the Table I precision loss), but
        whenever the quantized vectors order strictly, the values must too.
        """
        proj = BitwiseVectorProjection(bits_per_level=bits)
        vectors = {k: v for k, v in as_vectors(lists).items()
                   if v.depth <= proj.max_levels}
        values = proj.project_vectors(vectors)
        quantum = (1 << bits) - 1

        def quantized(v):
            padded = v.padded(proj.max_levels)
            return tuple(int(round(e / v.resolution * quantum)) for e in padded)

        for a in vectors:
            for b in vectors:
                qa, qb = quantized(vectors[a]), quantized(vectors[b])
                if qa > qb:
                    assert values[a] > values[b]
                elif qa == qb:
                    assert values[a] == values[b]

    @given(st.lists(st.floats(min_value=0.0, max_value=9999.0,
                              allow_nan=False), min_size=1, max_size=3))
    def test_deterministic(self, elems):
        proj = BitwiseVectorProjection()
        v = FairshareVector(elems)
        assert proj.project_one(v) == proj.project_one(v)


user_usage = st.dictionaries(
    st.sampled_from([f"u{i}" for i in range(5)]),
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=2, max_size=5)


class TestPercentalProperties:
    @settings(max_examples=60)
    @given(user_usage)
    def test_values_in_unit_range(self, usage):
        policy = PolicyTree.from_dict({u: 1 for u in usage})
        tree = compute_fairshare_tree(policy, per_user_usage=dict(usage))
        values = PercentalProjection().project(tree)
        assert all(0.0 <= v <= 1.0 for v in values.values())

    @settings(max_examples=60)
    @given(user_usage)
    def test_flat_tree_order_matches_vectors(self, usage):
        """On a flat hierarchy percental and lexicographic order agree."""
        policy = PolicyTree.from_dict({u: 1 for u in usage})
        tree = compute_fairshare_tree(policy, per_user_usage=dict(usage))
        values = PercentalProjection().project(tree)
        vectors = tree.vectors()
        for a in values:
            for b in values:
                if vectors[a] > vectors[b]:
                    assert values[a] >= values[b] - 1e-12

    @settings(max_examples=60)
    @given(user_usage)
    def test_less_usage_never_hurts(self, usage):
        usage = dict(usage)
        users = sorted(usage)
        policy = PolicyTree.from_dict({u: 1 for u in users})
        tree = compute_fairshare_tree(policy, per_user_usage=usage)
        values = PercentalProjection().project(tree)
        ranked = sorted(users, key=lambda u: usage.get(u, 0.0))
        projected = [values[f"/{u}"] for u in ranked]
        assert all(projected[i] >= projected[i + 1] - 1e-12
                   for i in range(len(projected) - 1))
