"""Property-based tests for policy serialization and the IRS protocol."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import PolicyTree, parse_policy
from repro.services.irs import IdentityResolutionService, table_endpoint

names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-",
                min_size=1, max_size=8)
weights = st.floats(min_value=0.001, max_value=1000.0, allow_nan=False)


@st.composite
def policy_trees(draw) -> PolicyTree:
    """Random policy trees up to three levels deep."""
    tree = PolicyTree()
    n_top = draw(st.integers(min_value=1, max_value=4))
    top_names = draw(st.lists(names, min_size=n_top, max_size=n_top,
                              unique=True))
    for top in top_names:
        tree.set_share(f"/{top}", draw(weights))
        if draw(st.booleans()):
            n_kids = draw(st.integers(min_value=1, max_value=3))
            kid_names = draw(st.lists(names, min_size=n_kids, max_size=n_kids,
                                      unique=True))
            for kid in kid_names:
                tree.set_share(f"/{top}/{kid}", draw(weights))
    return tree


class TestPolicySerialization:
    @settings(max_examples=60)
    @given(policy_trees())
    def test_dumps_parse_roundtrip(self, tree):
        assert parse_policy(tree.dumps()) == tree

    @settings(max_examples=60)
    @given(policy_trees())
    def test_copy_equals_original(self, tree):
        assert tree.copy() == tree

    @settings(max_examples=60)
    @given(policy_trees())
    def test_sibling_shares_normalized_everywhere(self, tree):
        for node in tree.walk():
            if node.children:
                total = sum(c.normalized_share for c in node.children.values())
                assert abs(total - 1.0) < 1e-9

    @settings(max_examples=60)
    @given(policy_trees())
    def test_leaf_total_shares_sum_to_one(self, tree):
        total = sum(leaf.total_share for leaf in tree.leaves())
        assert abs(total - 1.0) < 1e-9


identities = st.text(alphabet="abcdefghijklmnopqrstuvwxyz/=.CN",
                     min_size=1, max_size=30)


class TestIrsProtocol:
    @settings(max_examples=60)
    @given(st.dictionaries(names, identities, min_size=0, max_size=5), names)
    def test_endpoint_answers_are_valid_json(self, mapping, query_user):
        endpoint = table_endpoint(mapping)
        request = json.dumps({"query": "resolve", "system_user": query_user})
        response = json.loads(endpoint(request))
        if query_user in mapping:
            assert response == {"grid_identity": mapping[query_user]}
        else:
            assert "error" in response

    @settings(max_examples=60)
    @given(st.text(max_size=60))
    def test_endpoint_never_crashes_on_garbage(self, garbage):
        endpoint = table_endpoint({"u": "/CN=u"})
        response = json.loads(endpoint(garbage))
        assert isinstance(response, dict)

    @settings(max_examples=40)
    @given(st.dictionaries(names, identities, min_size=1, max_size=5))
    def test_resolution_idempotent_and_memoized(self, mapping):
        irs = IdentityResolutionService("s", endpoint=table_endpoint(mapping))
        for user, identity in mapping.items():
            assert irs.resolve(user) == identity
            assert irs.resolve(user) == identity  # second hit from table
        assert irs.endpoint_calls == len(mapping)
