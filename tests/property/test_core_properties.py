"""Property-based tests (hypothesis) for the core fairshare machinery."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import absolute_distance, balance_score, combined_priority, relative_distance
from repro.core.fairshare import compute_fairshare_tree
from repro.core.policy import PolicyTree
from repro.core.vector import FairshareVector

shares = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
usages = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
ks = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestDistanceProperties:
    @given(shares, usages)
    def test_absolute_distance_range(self, s, u):
        d = absolute_distance(s, u)
        assert 0.0 <= d <= s

    @given(shares, usages)
    def test_relative_distance_range(self, s, u):
        assert 0.0 <= relative_distance(s, u) <= 1.0

    @given(shares, usages, usages, ks)
    def test_priority_monotone_in_usage(self, s, u1, u2, k):
        """More usage never raises priority (at fixed share)."""
        lo, hi = min(u1, u2), max(u1, u2)
        assert combined_priority(s, hi, k) <= combined_priority(s, lo, k) + 1e-12

    @given(shares, shares, usages, ks)
    def test_priority_monotone_in_share(self, s1, s2, u, k):
        """More entitlement never lowers priority (at fixed usage)."""
        lo, hi = min(s1, s2), max(s1, s2)
        assert combined_priority(hi, u, k) >= combined_priority(lo, u, k) - 1e-12

    @given(shares, usages, ks)
    def test_balance_score_unit_range(self, s, u, k):
        assert 0.0 <= balance_score(s, u, k) <= 1.0

    @given(st.floats(min_value=1e-6, max_value=1.0), ks)
    def test_balance_score_center_at_balance(self, s, k):
        assert math.isclose(balance_score(s, s, k), 0.5, abs_tol=1e-9)

    @given(shares, usages, usages, ks)
    def test_balance_score_monotone_in_usage(self, s, u1, u2, k):
        lo, hi = min(u1, u2), max(u1, u2)
        assert balance_score(s, hi, k) <= balance_score(s, lo, k) + 1e-12


elements = st.lists(st.floats(min_value=0.0, max_value=9999.0,
                              allow_nan=False), min_size=1, max_size=6)


class TestVectorProperties:
    @given(elements, elements)
    def test_comparison_antisymmetric(self, a, b):
        va, vb = FairshareVector(a), FairshareVector(b)
        assert (va < vb) == (vb > va)
        assert (va == vb) == (vb == va)

    @given(elements, elements, elements)
    def test_comparison_transitive(self, a, b, c):
        va, vb, vc = (FairshareVector(x) for x in (a, b, c))
        if va <= vb and vb <= vc:
            assert va <= vc

    @given(elements)
    def test_trailing_balance_padding_invisible(self, a):
        va = FairshareVector(a)
        padded = FairshareVector(list(a) + [va.balance_point])
        assert va == padded
        assert hash(va) == hash(padded)

    @given(elements, st.integers(min_value=0, max_value=4))
    def test_padding_preserves_prefix(self, a, extra):
        v = FairshareVector(a)
        padded = v.padded(v.depth + extra)
        assert padded[:v.depth] == v.elements
        assert all(x == v.balance_point for x in padded[v.depth:])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=5))
    def test_from_scores_roundtrip(self, scores):
        v = FairshareVector.from_scores(scores)
        for got, want in zip(v.scores(), scores):
            assert math.isclose(got, want, abs_tol=1e-12)


user_weights = st.dictionaries(
    st.sampled_from([f"u{i}" for i in range(6)]),
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=2, max_size=6)
user_usages = st.dictionaries(
    st.sampled_from([f"u{i}" for i in range(6)]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0, max_size=6)


class TestFairshareTreeProperties:
    @settings(max_examples=50)
    @given(user_weights, user_usages)
    def test_target_shares_sum_to_one(self, weights, usage):
        policy = PolicyTree.from_dict(dict(weights))
        tree = compute_fairshare_tree(policy, per_user_usage=dict(usage))
        total = sum(leaf.target_share for leaf in tree.leaves())
        assert math.isclose(total, 1.0, rel_tol=1e-9)

    @settings(max_examples=50)
    @given(user_weights, user_usages)
    def test_usage_shares_sum_to_at_most_one(self, weights, usage):
        policy = PolicyTree.from_dict(dict(weights))
        tree = compute_fairshare_tree(policy, per_user_usage=dict(usage))
        total = sum(leaf.usage_share for leaf in tree.leaves())
        assert total <= 1.0 + 1e-9

    @settings(max_examples=50)
    @given(user_weights, user_usages)
    def test_balances_in_unit_range(self, weights, usage):
        policy = PolicyTree.from_dict(dict(weights))
        tree = compute_fairshare_tree(policy, per_user_usage=dict(usage))
        for leaf in tree.leaves():
            assert 0.0 <= leaf.balance <= 1.0

    @settings(max_examples=50)
    @given(user_weights, user_usages)
    def test_zero_usage_user_dominates_its_usage_heavy_twin(self, weights, usage):
        """Among equal-weight users, one with no usage never ranks below
        one with usage."""
        weights = dict(weights)
        weights["idle"] = 1.0
        weights["busy"] = 1.0
        usage = dict(usage)
        usage.pop("idle", None)
        usage["busy"] = max(usage.get("busy", 0.0), 1.0)
        policy = PolicyTree.from_dict(weights)
        tree = compute_fairshare_tree(policy, per_user_usage=usage)
        assert tree.priority("/idle") >= tree.priority("/busy")
