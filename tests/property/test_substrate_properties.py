"""Property-based tests for the substrates: histograms, decay, engine,
cluster accounting, trace transformations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay, LinearDecay, NoDecay, SlidingWindowDecay
from repro.core.usage import UsageHistogram
from repro.rms.cluster import Cluster
from repro.rms.job import Job
from repro.sim.engine import SimulationEngine
from repro.workload.generator import allocate_counts, compress_to_span, scale_trace_load
from repro.workload.trace import Trace, TraceJob

intervals = st.sampled_from([7.0, 60.0, 3600.0])
job_specs = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
              st.floats(min_value=0.0, max_value=1e4, allow_nan=False)),
    min_size=1, max_size=30)


class TestHistogramProperties:
    @given(intervals, job_specs)
    def test_total_charge_conserved_under_binning(self, interval, specs):
        """Splitting a job across bins never creates or destroys charge."""
        h = UsageHistogram(interval)
        expected = 0.0
        for start, duration in specs:
            h.add_charge("u", start, start + duration)
            expected += duration
        assert np.isclose(h.total("u"), expected, rtol=1e-9, atol=1e-6)

    @given(intervals, intervals, job_specs)
    def test_total_independent_of_interval(self, i1, i2, specs):
        h1, h2 = UsageHistogram(i1), UsageHistogram(i2)
        for start, duration in specs:
            h1.add_charge("u", start, start + duration)
            h2.add_charge("u", start, start + duration)
        assert np.isclose(h1.total("u"), h2.total("u"), rtol=1e-9, atol=1e-6)

    @given(intervals, job_specs)
    def test_snapshot_replace_identity(self, interval, specs):
        h = UsageHistogram(interval)
        for start, duration in specs:
            h.add_charge("u", start, start + duration)
        h2 = UsageHistogram(interval)
        h2.replace(h.snapshot())
        assert h2.snapshot() == h.snapshot()

    @given(intervals, job_specs)
    def test_decayed_never_exceeds_raw_total(self, interval, specs):
        h = UsageHistogram(interval)
        for start, duration in specs:
            h.add_charge("u", start, start + duration)
        now = max((s + d) for s, d in specs) + 1.0
        decayed = h.decayed_total("u", now, ExponentialDecay(half_life=1e4))
        assert decayed <= h.total("u") + 1e-6


decays = st.sampled_from([
    NoDecay(),
    ExponentialDecay(half_life=3600.0),
    LinearDecay(window=7200.0),
    SlidingWindowDecay(window=7200.0),
])
ages = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestDecayProperties:
    @given(decays, ages)
    def test_weight_in_unit_range(self, decay, age):
        assert 0.0 <= decay.weight(age) <= 1.0

    @given(decays, ages, ages)
    def test_non_increasing(self, decay, a1, a2):
        lo, hi = min(a1, a2), max(a1, a2)
        assert decay.weight(hi) <= decay.weight(lo) + 1e-12

    @given(decays)
    def test_weight_at_zero_is_one(self, decay):
        assert decay.weight(0.0) == 1.0

    @given(decays, st.lists(ages, min_size=1, max_size=20))
    def test_vectorized_matches_scalar(self, decay, age_list):
        arr = np.array(age_list)
        np.testing.assert_allclose(decay.weights(arr),
                                   [decay.weight(a) for a in age_list])


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_events_always_fire_in_order(self, delays):
        engine = SimulationEngine()
        fired = []
        for d in delays:
            engine.schedule(d, lambda d=d: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_clock_never_goes_backwards(self, delays):
        engine = SimulationEngine()
        observed = []

        def note():
            observed.append(engine.now)

        for d in delays:
            engine.schedule(d, note)
        engine.run()
        assert all(b >= a for a, b in zip(observed, observed[1:]))


core_counts = st.lists(st.integers(min_value=1, max_value=4),
                       min_size=1, max_size=12)


class TestClusterProperties:
    @given(core_counts)
    def test_allocate_release_restores_capacity(self, jobs_cores):
        cluster = Cluster("c", n_nodes=8, cores_per_node=4)
        jobs = []
        t = 0.0
        for cores in jobs_cores:
            job = Job(system_user="u", duration=1.0, cores=cores,
                      submit_time=0.0)
            if cluster.fits(cores):
                cluster.allocate(job, t)
                jobs.append(job)
            t += 1.0
        for job in jobs:
            cluster.release(job, t)
        assert cluster.free_cores == cluster.total_cores

    @given(core_counts)
    def test_free_cores_never_negative(self, jobs_cores):
        cluster = Cluster("c", n_nodes=4, cores_per_node=2)
        for cores in jobs_cores:
            job = Job(system_user="u", duration=1.0, cores=cores,
                      submit_time=0.0)
            if cluster.fits(cores):
                cluster.allocate(job, 0.0)
            assert 0 <= cluster.free_cores <= cluster.total_cores


share_maps = st.dictionaries(st.sampled_from(list("abcdef")),
                             st.floats(min_value=0.001, max_value=10.0,
                                       allow_nan=False),
                             min_size=1, max_size=6)


class TestGeneratorProperties:
    @given(share_maps, st.integers(min_value=1, max_value=10000))
    def test_allocate_counts_sums_exactly(self, shares, n):
        counts = allocate_counts(shares, n)
        assert sum(counts.values()) == n
        assert all(c >= 0 for c in counts.values())

    @given(share_maps, st.integers(min_value=100, max_value=5000))
    def test_allocate_counts_proportional(self, shares, n):
        counts = allocate_counts(shares, n)
        total = sum(shares.values())
        for user, share in shares.items():
            assert abs(counts[user] - n * share / total) <= 1.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False)),
        min_size=2, max_size=40),
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False))
    def test_compress_preserves_count_and_order(self, specs, span):
        trace = Trace([TraceJob(user="u", submit=s, duration=d)
                       for s, d in specs])
        out = compress_to_span(trace, span)
        assert out.n_jobs == trace.n_jobs
        times = out.arrival_times()
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))
        assert out.start == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=30),
           st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    def test_scale_load_hits_target_and_preserves_shares(self, durations, target):
        jobs = [TraceJob(user=f"u{i % 3}", submit=float(i), duration=d)
                for i, d in enumerate(durations)]
        trace = Trace(jobs)
        before = trace.usage_shares()
        out = scale_trace_load(trace, target)
        assert np.isclose(out.total_usage(), target, rtol=1e-9)
        after = out.usage_shares()
        for user in before:
            assert np.isclose(before[user], after[user], rtol=1e-9)
