"""Property-based tests for the scheduling loop's safety and liveness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rms.cluster import Cluster
from repro.rms.job import Job, JobState
from repro.rms.scheduler import BaseScheduler
from repro.sim.engine import SimulationEngine


class ScriptedScheduler(BaseScheduler):
    """Priority = fixed per-job value carried in a side table."""

    def __init__(self, *args, table=None, **kwargs):
        self.table = table or {}
        super().__init__(*args, **kwargs)

    def compute_priority(self, job, now):
        return self.table.get(job.job_id, 0.5)


job_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),   # submit
        st.floats(min_value=1.0, max_value=40.0, allow_nan=False),   # duration
        st.integers(min_value=1, max_value=3),                       # cores
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),    # priority
    ),
    min_size=1, max_size=25)


def run_workload(specs, cores=4, backfill=True):
    engine = SimulationEngine()
    cluster = Cluster("c", n_nodes=1, cores_per_node=cores)
    sched = ScriptedScheduler("c", engine, cluster, sched_interval=1.0,
                              reprioritize_interval=7.0, backfill=backfill)
    jobs = []
    for submit, duration, job_cores, priority in specs:
        job = Job(system_user="u", duration=duration, cores=job_cores)
        sched.table[job.job_id] = priority
        jobs.append(job)
        engine.schedule_at(submit, lambda j=job: sched.submit(j))
    # over-capacity guard: cluster health asserted during the run
    violations = []

    def check():
        if sched.cluster.free_cores < 0:
            violations.append(engine.now)

    engine.periodic(0.5, check)
    horizon = 50.0 + sum(d for _, d, _, _ in specs) + 100.0
    engine.run_until(horizon)
    sched.stop()
    return engine, sched, jobs, violations


class TestSchedulerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(job_specs)
    def test_no_core_oversubscription(self, specs):
        _, sched, _, violations = run_workload(specs)
        assert violations == []
        assert 0 <= sched.cluster.free_cores <= sched.cluster.total_cores

    @settings(max_examples=40, deadline=None)
    @given(job_specs)
    def test_every_job_eventually_completes(self, specs):
        """Liveness: with a long enough horizon nothing starves."""
        _, sched, jobs, _ = run_workload(specs)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert sched.jobs_completed == len(jobs)

    @settings(max_examples=40, deadline=None)
    @given(job_specs)
    def test_conservation_of_work(self, specs):
        """Busy core-seconds equal the sum of completed job charges."""
        engine, sched, jobs, _ = run_workload(specs)
        total_charge = sum(j.charge for j in jobs)
        busy = sched.cluster.busy_core_seconds(engine.now)
        assert abs(busy - total_charge) < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(job_specs)
    def test_jobs_never_start_before_submission(self, specs):
        _, _, jobs, _ = run_workload(specs)
        for job in jobs:
            assert job.start_time >= job.submit_time

    @settings(max_examples=25, deadline=None)
    @given(job_specs)
    def test_backfill_never_loses_jobs(self, specs):
        """Backfill on/off must complete the same job set (order may vary)."""
        _, sched_bf, jobs_bf, _ = run_workload(specs, backfill=True)
        _, sched_no, jobs_no, _ = run_workload(specs, backfill=False)
        assert sched_bf.jobs_completed == sched_no.jobs_completed == len(specs)

    @settings(max_examples=25, deadline=None)
    @given(job_specs)
    def test_single_core_jobs_keep_cluster_packed(self, specs):
        """Work conservation: with 1-core jobs, a core is never idle while
        a job is pending at a scheduling pass."""
        specs = [(s, d, 1, p) for s, d, _, p in specs]
        engine = SimulationEngine()
        cluster = Cluster("c", n_nodes=1, cores_per_node=2)
        sched = ScriptedScheduler("c", engine, cluster, sched_interval=1.0,
                                  reprioritize_interval=7.0)
        for submit, duration, cores, priority in specs:
            job = Job(system_user="u", duration=duration, cores=cores)
            sched.table[job.job_id] = priority
            engine.schedule_at(submit, lambda j=job: sched.submit(j))
        idle_with_backlog = []

        def check():
            # allow the scheduling interval's latency: only flag if the
            # condition persists right after a pass
            sched.schedule_pass()
            if sched.queue_length > 0 and sched.cluster.free_cores > 0:
                idle_with_backlog.append(engine.now)

        engine.periodic(1.0, check, start_offset=0.25)
        engine.run_until(300.0)
        assert idle_with_backlog == []
