"""Property: the incremental usage data plane is observationally equivalent
to the full-snapshot / full-recompute reference.

Two grids run the *same* randomly generated world — identical job record
schedule on a jitter-free network, including a randomly placed
partition/heal window between a site pair — one with delta exchange +
incremental UMS aggregation (the defaults), one with
``delta_exchange=False`` / ``incremental=False``.  After both engines
reach the same virtual end time, every site's decayed per-user usage
totals must agree to float tolerance.  This covers the whole protocol
surface: full first publish, content deltas, heartbeats, stale-message
drops, and the partition-gap resync path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay
from repro.core.usage import UsageRecord
from repro.services.network import Network
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine

N_SITES = 3
EXCHANGE_INTERVAL = 10.0
HISTOGRAM_INTERVAL = 60.0
END_TIME = 200.0

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),            # user
        st.integers(min_value=0, max_value=N_SITES - 1),  # site
        st.floats(min_value=0.0, max_value=150.0,         # submit time
                  allow_nan=False),
        st.floats(min_value=1.0, max_value=300.0,         # duration
                  allow_nan=False)),
    min_size=1, max_size=25)

# a partition window [t_cut, t_cut + length) between sites 0 and 1;
# both grids see the identical window, so divergence can only come from
# the data plane's recovery behaviour, not from the failure itself
partitions = st.tuples(
    st.floats(min_value=5.0, max_value=120.0, allow_nan=False),
    st.floats(min_value=5.0, max_value=60.0, allow_nan=False))


def run_world(recs, partition_window, incremental):
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    usses = [
        UsageStatisticsService(
            f"s{i}", engine, network,
            histogram_interval=HISTOGRAM_INTERVAL,
            exchange_interval=EXCHANGE_INTERVAL,
            delta_exchange=incremental)
        for i in range(N_SITES)]
    for a in usses:
        for b in usses:
            if a is not b:
                a.add_peer(b.site)
    umses = [
        UsageMonitoringService(
            f"s{i}", engine, sources=[uss],
            decay=ExponentialDecay(half_life=3600.0),
            refresh_interval=EXCHANGE_INTERVAL, incremental=incremental)
        for i, uss in enumerate(usses)]
    for user, site, submit, duration in recs:
        engine.schedule_at(
            submit,
            lambda u=user, s=site, t=submit, d=duration: usses[s].record_job(
                UsageRecord(user=f"u{u}", site=f"s{s}", start=t, end=t + d)))
    t_cut, length = partition_window
    engine.schedule_at(t_cut, lambda: network.partition("uss:s0", "uss:s1"))
    engine.schedule_at(t_cut + length, lambda: network.heal("uss:s0", "uss:s1"))
    engine.run_until(END_TIME)
    return {ums.site: ums.usage_totals() for ums in umses}


class TestDataPlaneEquivalence:
    @given(records, partitions)
    @settings(max_examples=12, deadline=None)
    def test_totals_match_reference_including_partition_heal(
            self, recs, partition_window):
        reference = run_world(recs, partition_window, incremental=False)
        delta = run_world(recs, partition_window, incremental=True)
        for site, ref_totals in reference.items():
            got_totals = delta[site]
            for user in set(ref_totals) | set(got_totals):
                assert got_totals.get(user, 0.0) == pytest.approx(
                    ref_totals.get(user, 0.0), rel=1e-6, abs=1e-6), (
                    f"{site}/{user}")
