"""Property-based tests for the incremental refresh machinery (PR 7).

Three layers, each checked against its from-scratch reference:

* the policy edit journal + :meth:`FlatPolicy.recompile` splice chain —
  randomized edit schedules must end at the same compiled semantics as a
  fresh compile of the final tree;
* :meth:`FlatPolicy.compute_delta` — dirty-leaf updates chained over
  random usage churn must match a full kernel pass at 1e-9;
* the full FCS stack — an incremental site and an ``incremental=False``
  site driven identically must serve the same values.

Plus the serve-plane invariant the PR promises: weight-only edits keep
the compiled layout (leaf row ids and leaf generation) intact.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay
from repro.core.flat import FlatPolicy
from repro.core.policy import PolicyEdit, PolicyError, PolicyTree, parse_policy
from repro.core.usage import UsageRecord
from repro.services.fcs import FairshareCalculationService
from repro.services.network import Network
from repro.services.pds import PolicyDistributionService
from repro.services.ums import UsageMonitoringService
from repro.services.uss import UsageStatisticsService
from repro.sim.engine import SimulationEngine

GROUPS = ["phys", "chem", "bio"]
USERS_PER_GROUP = 4


def base_policy() -> PolicyTree:
    policy = PolicyTree()
    for g, group in enumerate(GROUPS):
        policy.set_share(f"/{group}", float(g + 1))
        for i in range(USERS_PER_GROUP):
            policy.set_share(f"/{group}/{group}{i}", float(i + 1))
    return policy


# one randomized edit: (kind, group index, user index, weight)
edit_ops = st.tuples(
    st.sampled_from(["weight_group", "weight_user", "add_user", "remove",
                     "mount", "refresh_mount", "refresh_mount_noop",
                     "unmount"]),
    st.integers(min_value=0, max_value=len(GROUPS) - 1),
    st.integers(min_value=0, max_value=USERS_PER_GROUP + 2),
    st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
)


def apply_op(policy: PolicyTree, op) -> None:
    kind, g, i, w = op
    group = GROUPS[g]
    if kind == "weight_group":
        policy.set_share(f"/{group}", w)
    elif kind == "weight_user":
        policy.set_share(f"/{group}/{group}{i}", w)
    elif kind == "add_user":
        policy.set_share(f"/{group}/new{i}", w)
    elif kind == "remove":
        path = f"/{group}/{group}{i}"
        if policy.find(path) is not None:
            policy.remove_path(path)
    elif kind in ("mount", "refresh_mount", "refresh_mount_noop"):
        sub = parse_policy(f"/vo{i % 2} = {w!r}\n/vo{i % 2}/m{i} = 1\n")
        try:
            changed = policy.refresh_mount(f"/{group}/mnt", sub)
            if kind == "refresh_mount_noop":
                # grafting the identical subtree again must be a no-op
                rev = policy.revision
                assert policy.refresh_mount(f"/{group}/mnt",
                                            sub.copy()) is False
                assert policy.revision == rev
            del changed
        except PolicyError:
            try:
                policy.mount(f"/{group}/mnt", sub, source="remote")
            except PolicyError:
                pass  # mount point exists with non-mounted children
    elif kind == "unmount":
        try:
            policy.unmount(f"/{group}/mnt")
        except PolicyError:
            pass


def leaf_priorities(flat: FlatPolicy, usage):
    result = flat.compute(usage)
    pr = result.priority[flat.leaf_index]
    us = result.usage_share[flat.leaf_index]
    return dict(zip(flat.leaf_paths, zip(pr.tolist(), us.tolist())))


class TestRecompileEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(edit_ops, min_size=1, max_size=12),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_spliced_chain_matches_fresh_compile(self, ops, seed):
        """A maintained recompile chain ≡ compiling the final tree."""
        policy = base_policy()
        flat = FlatPolicy(policy)
        revision = policy.revision
        for op in ops:
            apply_op(policy, op)
            edits = policy.edits_since(revision)
            revision = policy.revision
            spliced = flat.recompile(policy, edits) \
                if edits is not None else None
            flat = spliced[0] if spliced is not None else FlatPolicy(policy)
        fresh = FlatPolicy(policy)
        rng = random.Random(seed)
        usage = {path: rng.uniform(0.0, 50.0) for path in fresh.leaf_paths}
        got = leaf_priorities(flat, usage)
        want = leaf_priorities(fresh, usage)
        assert set(got) == set(want)
        for path in want:
            for a, b in zip(got[path], want[path]):
                assert a == pytest.approx(b, abs=1e-9)
        # bare-name resolution must agree too (pre-order first wins)
        assert flat.by_name == fresh.by_name

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=len(GROUPS) - 1),
        st.integers(min_value=0, max_value=USERS_PER_GROUP - 1),
        st.floats(min_value=0.25, max_value=8.0, allow_nan=False)),
        min_size=1, max_size=8))
    def test_weight_only_edits_preserve_leaf_ids(self, tweaks):
        """Weight edits splice without layout change: same leaf rows."""
        policy = base_policy()
        flat = FlatPolicy(policy)
        before_paths = list(flat.leaf_paths)
        before_slots = dict(flat.leaf_slot)
        revision = policy.revision
        for g, i, w in tweaks:
            policy.set_share(f"/{GROUPS[g]}/{GROUPS[g]}{i}", w)
        edits = policy.edits_since(revision)
        spliced = flat.recompile(policy, edits)
        assert spliced is not None
        new_flat, info = spliced
        assert info["layout_changed"] is False
        assert list(new_flat.leaf_paths) == before_paths
        assert dict(new_flat.leaf_slot) == before_slots
        # and the spliced targets match a fresh compile exactly
        fresh = FlatPolicy(policy)
        usage = {path: 1.0 for path in fresh.leaf_paths}
        got = leaf_priorities(new_flat, usage)
        want = leaf_priorities(fresh, usage)
        for path in want:
            for a, b in zip(got[path], want[path]):
                assert a == pytest.approx(b, abs=1e-12)


class TestComputeDeltaEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        min_size=1, max_size=20),
        st.integers(min_value=0, max_value=2 ** 31))
    def test_delta_chain_matches_full_pass(self, churn, seed):
        policy = base_policy()
        flat = FlatPolicy(policy)
        rng = random.Random(seed)
        usage = {path: rng.uniform(0.0, 50.0) for path in flat.leaf_paths}
        result = flat.compute(usage)
        for pick, value in churn:
            path = flat.leaf_paths[pick % len(flat.leaf_paths)]
            usage[path] = value
            row = flat.leaf_slot[path]
            result = flat.compute_delta(result, [row], [value])
            full = flat.compute(usage)
            np.testing.assert_allclose(result.usage, full.usage, atol=1e-9)
            np.testing.assert_allclose(result.usage_share, full.usage_share,
                                       atol=1e-9)
            np.testing.assert_allclose(result.priority, full.priority,
                                       atol=1e-9)
            np.testing.assert_allclose(result.balance, full.balance,
                                       atol=1e-9)


def build_stack(incremental: bool):
    engine = SimulationEngine()
    network = Network(engine, base_latency=0.1)
    uss = UsageStatisticsService("a", engine, network,
                                 histogram_interval=600.0, publish=False)
    ums = UsageMonitoringService("a", engine, [uss],
                                 decay=ExponentialDecay(half_life=3600.0),
                                 refresh_interval=10.0,
                                 incremental=incremental)
    pds = PolicyDistributionService("a", engine, base_policy(),
                                    refresh_interval=3600.0)
    fcs = FairshareCalculationService("a", engine, pds, ums,
                                      refresh_interval=10.0,
                                      incremental=incremental)
    return engine, uss, pds, fcs


stack_ops = st.tuples(
    st.sampled_from(["job", "job", "weight", "add", "remove", "idle"]),
    st.integers(min_value=0, max_value=len(GROUPS) - 1),
    st.integers(min_value=0, max_value=USERS_PER_GROUP - 1),
    st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
)


class TestServiceStackEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(stack_ops, min_size=1, max_size=15))
    def test_incremental_stack_matches_reference(self, ops):
        def drive(engine, uss, pds):
            for kind, g, i, w in ops:
                engine.run_until(engine.now + 10.0)
                group = GROUPS[g]
                if kind == "job":
                    t = engine.now
                    uss.record_job(UsageRecord(
                        user=f"{group}{i}", site="a",
                        start=max(0.0, t - 100.0 * (i + 1)), end=t))
                elif kind == "weight":
                    pds.set_share(f"/{group}/{group}{i}", w)
                elif kind == "add":
                    pds.set_share(f"/{group}/extra{i}", w)
                elif kind == "remove":
                    path = f"/{group}/{group}{i}"
                    if pds.policy().find(path) is not None:
                        pds.policy().remove_path(path)
            engine.run_until(engine.now + 20.0)

        ei, ui, pi, fi = build_stack(True)
        ef, uf, pf, ff = build_stack(False)
        try:
            drive(ei, ui, pi)
            drive(ef, uf, pf)
            vi, vf = fi.values(), ff.values()
            assert set(vi) == set(vf)
            for path in vf:
                assert vi[path] == pytest.approx(vf[path], abs=1e-9)
                assert fi.priority(path) == pytest.approx(
                    ff.priority(path), abs=1e-9)
        finally:
            for svc in (fi, ff, pi, pf):
                svc.stop()

    def test_weight_only_edit_keeps_leaf_generation(self):
        """The serve-plane stability promise: a pure weight change must
        not invalidate published integer leaf ids."""
        engine, uss, pds, fcs = build_stack(True)
        try:
            engine.run_until(20.0)
            generation = fcs.leaf_generation
            paths = list(fcs.flat_result().flat.leaf_paths)
            pds.set_share("/phys/phys0", 5.0)
            pds.set_share("/chem", 7.0)
            engine.run_until(engine.now + 10.0)
            assert fcs.leaf_generation == generation
            assert list(fcs.flat_result().flat.leaf_paths) == paths
            # the values did change (it was a real edit, not a no-op)
            assert fcs.refresh_stats.misses >= 2
            # a structural edit does bump the generation
            pds.policy().remove_path("/phys/phys1")
            pds.set_share("/bio/fresh", 1.0)
            engine.run_until(engine.now + 10.0)
            assert fcs.leaf_generation == generation + 1
        finally:
            fcs.stop()
            pds.stop()

    def test_idle_decay_refreshes_hit_the_cache(self):
        """Pure decay aging moves the UMS scale, not the fold: idle sites
        under exponential decay now hit instead of recomputing."""
        engine, uss, pds, fcs = build_stack(True)
        try:
            uss.record_job(UsageRecord(user="phys0", site="a",
                                       start=0.0, end=5.0))
            # settle past the bin midpoint (the young phase legitimately
            # recomputes the user each refresh until its age unclamps)
            engine.run_until(330.0)
            misses = fcs.refresh_stats.misses
            usage_before = fcs.flat_result().usage[
                fcs.flat_result().flat.path_index["/phys/phys0"]]
            engine.run_until(330.0 + 3600.0)  # one half-life of pure idling
            assert fcs.refresh_stats.misses == misses
            assert fcs.refresh_stats.hits > 0
            # ... while the absolute usage view still decayed
            usage_after = fcs.flat_result().usage[
                fcs.flat_result().flat.path_index["/phys/phys0"]]
            assert usage_after < 0.6 * usage_before
        finally:
            fcs.stop()
            pds.stop()


class TestJournalUnit:
    def test_edits_since_returns_exact_suffix(self):
        policy = PolicyTree()
        policy.set_share("/a", 1.0)
        rev = policy.revision
        policy.set_share("/a", 2.0)
        policy.set_share("/b", 3.0)
        edits = policy.edits_since(rev)
        assert edits is not None
        assert [e.kind for e in edits] == ["weight", "add"]
        assert edits[0] == PolicyEdit("weight", "/a", 2.0)
        assert policy.edits_since(policy.revision) == []

    def test_edits_since_gap_returns_none(self):
        policy = PolicyTree()
        policy.set_share("/a", 1.0)
        floor_rev = policy.revision
        for i in range(PolicyTree.JOURNAL_LIMIT + 8):
            policy.set_share("/a", float(i % 7 + 1))
        assert policy.edits_since(floor_rev) is None
        # a future revision (state from another tree) is also inexact
        assert policy.edits_since(policy.revision + 1) is None

    def test_identical_refresh_mount_is_noop(self):
        policy = PolicyTree()
        policy.set_share("/grid", 2.0)
        sub = parse_policy("/vo = 1\n/vo/alice = 2\n")
        policy.mount("/grid", sub, source="r")
        rev = policy.revision
        assert policy.refresh_mount("/grid", sub.copy()) is False
        assert policy.revision == rev
        changed = parse_policy("/vo = 1\n/vo/alice = 3\n")
        assert policy.refresh_mount("/grid", changed) is True
        assert policy.revision > rev


class TestUmsScaleUnit:
    def _stack(self):
        engine = SimulationEngine()
        network = Network(engine, base_latency=0.1)
        uss = UsageStatisticsService("a", engine, network,
                                     histogram_interval=600.0, publish=False)
        ums = UsageMonitoringService(
            "a", engine, [uss], decay=ExponentialDecay(half_life=3600.0),
            refresh_interval=10.0)
        return engine, uss, ums

    def test_idle_decay_moves_scale_not_bases(self):
        engine, uss, ums = self._stack()
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=10.0))
        # settle past the bin midpoint so the young phase is over
        engine.run_until(320.0)
        base = dict(ums.usage_totals_base())
        scale0 = ums.usage_scale()
        engine.run_until(320.0 + 1800.0)  # half a half-life, idle
        assert dict(ums.usage_totals_base()) == base
        assert ums.usage_scale() / scale0 == pytest.approx(0.5 ** 0.5,
                                                           rel=1e-6)
        served = ums.usage_totals()
        assert served["u"] == pytest.approx(
            base["u"] * ums.usage_scale(), rel=1e-12)
        ums.stop()

    def test_totals_cursor_reports_exact_changes(self):
        engine, uss, ums = self._stack()
        cursor = ums.register_totals_cursor()
        full, changed = ums.drain_totals_changes(cursor)
        assert full is True and changed == {}
        engine.run_until(10.0)
        full, changed = ums.drain_totals_changes(cursor)
        assert full is False and changed == {}
        uss.record_job(UsageRecord(user="u", site="a", start=0.0, end=10.0))
        engine.run_until(20.0)
        full, changed = ums.drain_totals_changes(cursor)
        assert full is False
        assert set(changed) == {"u"}
        assert changed["u"] == ums.usage_totals_base()["u"]
        # flush the young phase (the bin midpoint lies ahead; the user is
        # recomputed until it passes, which legitimately moves the base)
        engine.run_until(320.0)
        ums.drain_totals_changes(cursor)
        # idle decay is invisible to the cursor
        engine.run_until(4000.0)
        full, changed = ums.drain_totals_changes(cursor)
        assert full is False and changed == {}
        ums.release_totals_cursor(cursor)
        ums.stop()
