"""Property-based tests for the distribution zoo and composites."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.composite import CompositeDistribution
from repro.workload.distributions import FAMILIES

quantiles = st.floats(min_value=0.001, max_value=0.999, allow_nan=False)

gev_params = st.tuples(
    st.floats(min_value=-0.45, max_value=0.45, allow_nan=False),
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))

weibull_params = st.tuples(
    st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.3, max_value=5.0, allow_nan=False))

bs_params = st.tuples(
    st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.2, max_value=8.0, allow_nan=False))


class TestRoundTrips:
    @given(gev_params, quantiles)
    def test_gev_cdf_icdf_roundtrip(self, params, q):
        dist = FAMILIES["gev"].make(*params)
        assert np.isclose(dist.cdf(dist.icdf(q)), q, atol=1e-8)

    @given(weibull_params, quantiles)
    def test_weibull_cdf_icdf_roundtrip(self, params, q):
        dist = FAMILIES["weibull"].make(*params)
        assert np.isclose(dist.cdf(dist.icdf(q)), q, atol=1e-8)

    @given(bs_params, quantiles)
    def test_bs_cdf_icdf_roundtrip(self, params, q):
        dist = FAMILIES["birnbaum-saunders"].make(*params)
        assert np.isclose(dist.cdf(dist.icdf(q)), q, atol=1e-8)


class TestMonotonicity:
    @given(gev_params, quantiles, quantiles)
    def test_gev_icdf_monotone(self, params, q1, q2):
        dist = FAMILIES["gev"].make(*params)
        lo, hi = min(q1, q2), max(q1, q2)
        assert dist.icdf(lo) <= dist.icdf(hi) + 1e-12

    @given(weibull_params)
    def test_weibull_cdf_monotone_grid(self, params):
        dist = FAMILIES["weibull"].make(*params)
        x = np.linspace(0.001, params[0] * 5, 100)
        c = dist.cdf(x)
        assert np.all(np.diff(c) >= -1e-12)

    @given(weibull_params)
    def test_positive_support_cdf_zero_at_origin(self, params):
        dist = FAMILIES["weibull"].make(*params)
        assert dist.cdf(0.0) == 0.0


weights_lists = st.lists(st.floats(min_value=0.01, max_value=10.0,
                                   allow_nan=False), min_size=1, max_size=4)


class TestCompositeProperties:
    @settings(max_examples=30)
    @given(weights_lists, quantiles)
    def test_icdf_cdf_roundtrip(self, weights, q):
        comps = [(w, FAMILIES["normal"].make(i * 100.0, 5.0 + i))
                 for i, w in enumerate(weights)]
        comp = CompositeDistribution(comps)
        x = comp.icdf(np.array([q]))[0]
        assert np.isclose(comp.cdf(x), q, atol=5e-3)

    @settings(max_examples=30)
    @given(weights_lists)
    def test_weights_normalized(self, weights):
        comps = [(w, FAMILIES["normal"].make(0.0, 1.0)) for w in weights]
        comp = CompositeDistribution(comps)
        assert np.isclose(comp.weights.sum(), 1.0)

    @settings(max_examples=20)
    @given(weights_lists)
    def test_cdf_monotone(self, weights):
        comps = [(w, FAMILIES["normal"].make(i * 50.0, 10.0))
                 for i, w in enumerate(weights)]
        comp = CompositeDistribution(comps)
        x = np.linspace(-100, len(weights) * 50.0 + 100, 300)
        c = comp.cdf(x)
        assert np.all(np.diff(c) >= -1e-12)


class TestSamplingProperties:
    @settings(max_examples=15)
    @given(weibull_params, st.integers(min_value=0, max_value=2**31 - 1))
    def test_samples_on_support(self, params, seed):
        dist = FAMILIES["weibull"].make(*params)
        samples = dist.sample(200, np.random.default_rng(seed))
        assert np.all(samples >= 0)

    @settings(max_examples=15)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_empirical_cdf_tracks_theoretical(self, seed):
        dist = FAMILIES["gev"].make(0.1, 2.0, 10.0)
        samples = dist.sample(3000, np.random.default_rng(seed))
        # KS distance of own samples should be small
        from repro.workload.fitting import ks_statistic
        assert ks_statistic(samples, dist) < 0.05
