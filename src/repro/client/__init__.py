"""Client-side integration library (``libaequus``)."""

from .libaequus import LibAequus

__all__ = ["LibAequus"]
