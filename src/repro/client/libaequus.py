"""``libaequus`` — the unified system library (paper Section III-A).

The technical integration between Aequus and local resource-management
systems goes through a single client library linked into the scheduler.
In the original system it is a C/C++ interface wrapping web-service
clients; here it is the Python facade the simulated SLURM/Maui schedulers
call.  It provides exactly the three operations the paper names:

* retrieve fairshare values,
* resolve usage identity mappings, and
* store usage records,

with previously resolved fairshare values and identities cached "for a
configurable amount of time", which is what keeps batch job processing
cheap (and is delay source III in the update-delay analysis).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.usage import UsageRecord
from ..services.cache import TTLCache

if TYPE_CHECKING:  # avoid a services<->client import cycle at runtime
    from ..services.fcs import FairshareCalculationService
    from ..services.irs import IdentityResolutionService
    from ..services.site import AequusSite
    from ..services.uss import UsageStatisticsService
    from ..sim.engine import SimulationEngine

__all__ = ["LibAequus"]


class LibAequus:
    """Client library instance, one per resource-manager integration."""

    def __init__(self, engine: "SimulationEngine",
                 fcs: "FairshareCalculationService",
                 uss: "UsageStatisticsService",
                 irs: "IdentityResolutionService",
                 site: str,
                 cache_ttl: float = 15.0,
                 report_delay: float = 0.0):
        self.engine = engine
        self.fcs = fcs
        self.uss = uss
        self.irs = irs
        self.site = site
        self.report_delay = report_delay
        clock = lambda: engine.now  # noqa: E731 - tiny clock closure
        self._fairshare_cache: TTLCache[str, float] = TTLCache(clock, cache_ttl)
        self._identity_cache: TTLCache[str, str] = TTLCache(clock, cache_ttl)
        self.fairshare_calls = 0
        self.usage_reports = 0

    @classmethod
    def for_site(cls, site: "AequusSite", cache_ttl: Optional[float] = None,
                 report_delay: float = 0.0) -> "LibAequus":
        """Convenience constructor wiring against a full site stack."""
        ttl = cache_ttl if cache_ttl is not None else site.config.libaequus_cache_ttl
        return cls(site.engine, site.fcs, site.uss, site.irs,
                   site=site.name, cache_ttl=ttl, report_delay=report_delay)

    # -- identity ---------------------------------------------------------

    def resolve_identity(self, system_user: str) -> str:
        """System user -> grid identity, TTL-cached."""
        return self._identity_cache.get(
            system_user, lambda: self.irs.resolve(system_user))

    # -- fairshare ----------------------------------------------------------

    def get_fairshare(self, system_user: str) -> float:
        """Projected fairshare value in [0, 1] for a job's owner.

        This is the call the SLURM priority plugin / Maui patch makes in
        place of the local fairshare calculation.
        """
        self.fairshare_calls += 1
        identity = self.resolve_identity(system_user)
        return self._fairshare_cache.get(
            identity, lambda: self.fcs.fairshare_value(identity))

    # -- usage reporting -------------------------------------------------------

    def report_usage(self, system_user: str, start: float, end: float,
                     cores: int = 1) -> None:
        """Store a completed job's usage (job-completion plugin call).

        ``report_delay`` models delay source I: the lag between job
        completion in the resource manager and the record reaching the USS.
        """
        self.usage_reports += 1
        identity = self.resolve_identity(system_user)
        record = UsageRecord(user=identity, site=self.site,
                             start=start, end=end, cores=cores)
        if self.report_delay > 0:
            self.engine.schedule(self.report_delay,
                                 lambda: self.uss.record_job(record))
        else:
            self.uss.record_job(record)

    # -- cache introspection --------------------------------------------------

    @property
    def fairshare_cache_stats(self):
        return self._fairshare_cache.stats

    @property
    def identity_cache_stats(self):
        return self._identity_cache.stats
