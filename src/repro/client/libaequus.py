"""``libaequus`` — the unified system library (paper Section III-A).

The technical integration between Aequus and local resource-management
systems goes through a single client library linked into the scheduler.
In the original system it is a C/C++ interface wrapping web-service
clients; here it is the Python facade the simulated SLURM/Maui schedulers
call.  It provides exactly the three operations the paper names:

* retrieve fairshare values,
* resolve usage identity mappings, and
* store usage records,

with previously resolved fairshare values and identities cached "for a
configurable amount of time", which is what keeps batch job processing
cheap (and is delay source III in the update-delay analysis).

Transport modes
---------------
The library speaks to the Aequus stack either by **direct dispatch**
(in-process method calls on the site's FCS/IRS/USS, the default for the
discrete-event experiments) or over the **socket transport**: pass a
``transport`` object — normally a
:class:`repro.serve.client.SyncAequusClient` pointed at a running
aequusd — and every call-out crosses the network boundary exactly as the
paper's deployment does.  The RMS plugins are oblivious to the mode; the
caching, stats, and call signatures are identical on both paths.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Protocol, Tuple

from ..core.usage import UsageRecord
from ..obs.registry import MetricsRegistry, metric_property
from ..services.cache import RegistryCacheStats, TTLCache

if TYPE_CHECKING:  # avoid a services<->client import cycle at runtime
    from ..services.fcs import FairshareCalculationService
    from ..services.irs import IdentityResolutionService
    from ..services.site import AequusSite
    from ..services.uss import UsageStatisticsService
    from ..sim.engine import SimulationEngine

__all__ = ["LibAequus", "AequusTransport"]


class AequusTransport(Protocol):
    """Duck-type of a socket transport (``SyncAequusClient`` satisfies it)."""

    def lookup_fairshare(self, user: str) -> Tuple[float, bool]: ...

    def resolve_identity(self, system_user: str) -> str: ...

    def report_usage(self, user: str, start: float, end: float,
                     cores: int = 1) -> bool: ...


class LibAequus:
    """Client library instance, one per resource-manager integration."""

    def __init__(self, engine: Optional["SimulationEngine"] = None,
                 fcs: Optional["FairshareCalculationService"] = None,
                 uss: Optional["UsageStatisticsService"] = None,
                 irs: Optional["IdentityResolutionService"] = None,
                 site: str = "",
                 cache_ttl: float = 15.0,
                 report_delay: float = 0.0,
                 transport: Optional[AequusTransport] = None,
                 clock: Optional[Callable[[], float]] = None,
                 registry: Optional[MetricsRegistry] = None):
        if transport is None and (fcs is None or uss is None or irs is None):
            raise ValueError(
                "direct mode needs fcs/uss/irs; or pass a socket transport")
        self.engine = engine
        self.fcs = fcs
        self.uss = uss
        self.irs = irs
        self.site = site
        self.report_delay = report_delay
        self.transport = transport
        if clock is None:
            # virtual time when wired into a simulation, wall clock when
            # talking to a real daemon
            clock = (lambda: engine.now) if engine is not None \
                else time.monotonic
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"component": "libaequus"}, clock=clock)
        self._fairshare_cache: TTLCache[str, Tuple[float, bool]] = \
            TTLCache(clock, cache_ttl,
                     stats=RegistryCacheStats(self.registry, "fairshare"))
        self._identity_cache: TTLCache[str, str] = \
            TTLCache(clock, cache_ttl,
                     stats=RegistryCacheStats(self.registry, "identity"))
        calls = self.registry.counter(
            "aequus_client_calls_total",
            "libaequus call-outs by operation", ("op",))
        negatives = self.registry.counter(
            "aequus_client_negative_total",
            "Negative lookups: unknown-user fairshare fallbacks and failed "
            "identity resolutions", ("kind",))
        self._metrics = {
            "fairshare_calls": calls.labels(op="fairshare"),
            "usage_reports": calls.labels(op="report_usage"),
            "fairshare_negative": negatives.labels(kind="fairshare"),
            "identity_negative": negatives.labels(kind="identity"),
        }

    fairshare_calls = metric_property("fairshare_calls")
    usage_reports = metric_property("usage_reports")
    #: negative lookups: fairshare queries that hit the unknown-user
    #: fallback, and identity resolutions that failed
    fairshare_negative = metric_property("fairshare_negative")
    identity_negative = metric_property("identity_negative")

    @classmethod
    def for_site(cls, site: "AequusSite", cache_ttl: Optional[float] = None,
                 report_delay: float = 0.0) -> "LibAequus":
        """Convenience constructor wiring against a full site stack."""
        ttl = cache_ttl if cache_ttl is not None else site.config.libaequus_cache_ttl
        return cls(site.engine, site.fcs, site.uss, site.irs,
                   site=site.name, cache_ttl=ttl, report_delay=report_delay)

    @classmethod
    def over_socket(cls, transport: AequusTransport, site: str = "",
                    cache_ttl: float = 15.0,
                    engine: Optional["SimulationEngine"] = None,
                    report_delay: float = 0.0,
                    clock: Optional[Callable[[], float]] = None) -> "LibAequus":
        """Socket transport mode: every call-out goes through ``transport``.

        Pass ``engine`` when the scheduler still runs in virtual time (the
        TTL cache then ages on the simulation clock and ``report_delay``
        stays meaningful); without one, wall-clock time is used.
        """
        return cls(engine=engine, site=site, cache_ttl=cache_ttl,
                   report_delay=report_delay, transport=transport,
                   clock=clock)

    # -- identity ---------------------------------------------------------

    def resolve_identity(self, system_user: str) -> str:
        """System user -> grid identity, TTL-cached.

        Failed resolutions are counted (:attr:`identity_negative`) and
        never cached — a mapping may be stored at any moment.
        """
        resolver = self.transport.resolve_identity if self.transport \
            else self.irs.resolve

        def load() -> str:
            try:
                return resolver(system_user)
            except Exception:
                self.identity_negative += 1
                raise

        return self._identity_cache.get(system_user, load)

    # -- fairshare ----------------------------------------------------------

    def lookup_fairshare(self, system_user: str) -> Tuple[float, bool]:
        """Projected value plus whether the user's identity is known.

        Unknown users resolve to the site's fallback value; they count as
        negative lookups (:attr:`fairshare_negative`) and are cached like
        any other value — repeating an unknown user in a batch must not
        re-query the service on every job.
        """
        self.fairshare_calls += 1
        identity = self.resolve_identity(system_user)

        def load() -> Tuple[float, bool]:
            if self.transport is not None:
                value, known = self.transport.lookup_fairshare(identity)
            else:
                value, known = self.fcs.lookup(identity)
            if not known:
                self.fairshare_negative += 1
            return value, known

        return self._fairshare_cache.get(identity, load)

    def get_fairshare(self, system_user: str) -> float:
        """Projected fairshare value in [0, 1] for a job's owner.

        This is the call the SLURM priority plugin / Maui patch makes in
        place of the local fairshare calculation.
        """
        return self.lookup_fairshare(system_user)[0]

    # -- usage reporting -------------------------------------------------------

    def report_usage(self, system_user: str, start: float, end: float,
                     cores: int = 1) -> None:
        """Store a completed job's usage (job-completion plugin call).

        ``report_delay`` models delay source I: the lag between job
        completion in the resource manager and the record reaching the USS.
        """
        self.usage_reports += 1
        identity = self.resolve_identity(system_user)
        if self.transport is not None:
            send = lambda: self.transport.report_usage(  # noqa: E731
                identity, start, end, cores)
        else:
            record = UsageRecord(user=identity, site=self.site,
                                 start=start, end=end, cores=cores)
            send = lambda: self.uss.record_job(record)  # noqa: E731
        if self.report_delay > 0 and self.engine is not None:
            self.engine.schedule(self.report_delay, send)
        else:
            send()

    # -- cache introspection --------------------------------------------------

    @property
    def fairshare_cache_stats(self):
        return self._fairshare_cache.stats

    @property
    def identity_cache_stats(self):
        return self._identity_cache.stats

    def cache_stats(self) -> Dict[str, Dict[str, Any]]:
        """Uniform hit/miss/negative counters for both caches.

        The serve plane and the in-process path report the same shape, so
        cache behaviour is directly comparable across transport modes.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, cache, negative in (
                ("fairshare", self._fairshare_cache, self.fairshare_negative),
                ("identity", self._identity_cache, self.identity_negative)):
            stats = cache.stats
            out[name] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "lookups": stats.lookups,
                "hit_rate": stats.hit_rate,
                "negative": negative,
                "entries": len(cache),
                "ttl": cache.ttl,
            }
        return out
