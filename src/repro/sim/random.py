"""Named, seeded RNG streams for reproducible simulations.

Every stochastic component (trace generator, dispatch policy, network
jitter, ...) draws from its own ``numpy`` Generator derived from a root seed
and a stable stream name.  Two runs with the same root seed are bit-exact;
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory for per-component ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def _seed_for(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """The Generator for ``name``, created on first use."""
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(self._seed_for(name))
            self._cache[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory with an independent seed space."""
        return RandomStreams(self._seed_for(f"spawn:{name}"))
