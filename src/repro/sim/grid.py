"""Grid-level job submission and identity mapping (paper Sections III-B, IV).

The test bed uses one machine "to parse the input workload and submit the
jobs to each of the clusters.  Both stochastic and round-robin scheduling of
jobs from the submitting node to the clusters have been evaluated without
any noticeable difference, and the stochastic approach is used during the
testing."

Identity management: when a job arrives at a cluster, the *grid identity* is
mapped to a *local system user*, and that mapping "can differ between
resource management systems, between different sites ..., or even between
clusters at the same site".  :class:`GridIdentityMapper` deliberately gives
every cluster a different naming convention, and registers the reverse
mapping with each site's IRS via the JSON endpoint — so the full
resolve-back path of Section III-B is exercised on every fairshare query.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..rms.job import Job
from ..rms.scheduler import BaseScheduler
from ..services.irs import IdentityResolutionService, table_endpoint
from .engine import SimulationEngine

__all__ = ["GridIdentityMapper", "GridSubmissionHost"]


class GridIdentityMapper:
    """Deterministic per-cluster grid-identity ↔ system-user mapping."""

    def __init__(self) -> None:
        self._forward: Dict[str, Dict[str, str]] = {}

    @staticmethod
    def _mangle(grid_identity: str, cluster: str) -> str:
        # Different conventions per cluster: a cluster-specific tag plus the
        # CN, so the same grid identity maps to different account names at
        # every site (the Section III-B premise).
        short = grid_identity.rsplit("/", 1)[-1].replace("CN=", "").lower()
        tag = hashlib.sha256(cluster.encode()).hexdigest()[:4]
        return f"{cluster[:3]}{tag}_{short}"

    def system_user(self, grid_identity: str, cluster: str) -> str:
        table = self._forward.setdefault(cluster, {})
        user = table.get(grid_identity)
        if user is None:
            user = self._mangle(grid_identity, cluster)
            table[grid_identity] = user
        return user

    def register_with(self, irs: IdentityResolutionService, cluster: str) -> None:
        """Install a name-resolution endpoint answering for ``cluster``.

        Mirrors the "small name resolution endpoint ... deployed in the
        HPC2N system" — the IRS resolves lazily through the JSON protocol.
        """
        mapper = self

        def endpoint(request: str) -> str:
            reverse = {v: k for k, v in mapper._forward.get(cluster, {}).items()}
            return table_endpoint(reverse)(request)

        irs.set_endpoint(endpoint)


@dataclass
class DispatchStats:
    per_cluster: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0

    def note(self, cluster: str) -> None:
        self.submitted += 1
        self.per_cluster[cluster] = self.per_cluster.get(cluster, 0) + 1


class GridSubmissionHost:
    """Feeds trace jobs into the clusters with a dispatch policy."""

    def __init__(self, engine: SimulationEngine,
                 schedulers: Sequence[BaseScheduler],
                 mapper: Optional[GridIdentityMapper] = None,
                 dispatch: str = "stochastic",
                 rng: Optional[np.random.Generator] = None):
        if not schedulers:
            raise ValueError("need at least one cluster scheduler")
        if dispatch not in ("stochastic", "round_robin"):
            raise ValueError(f"unknown dispatch policy {dispatch!r}")
        self.engine = engine
        self.schedulers = list(schedulers)
        self.mapper = mapper or GridIdentityMapper()
        self.dispatch = dispatch
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._rr = itertools.cycle(range(len(self.schedulers)))
        self.stats = DispatchStats()

    def _pick(self) -> BaseScheduler:
        if self.dispatch == "round_robin":
            return self.schedulers[next(self._rr)]
        return self.schedulers[int(self.rng.integers(len(self.schedulers)))]

    def submit_job(self, grid_identity: str, duration: float,
                   cores: int = 1, qos: float = 0.0) -> Job:
        """Dispatch one grid job right now."""
        scheduler = self._pick()
        system_user = self.mapper.system_user(grid_identity, scheduler.name)
        job = Job(system_user=system_user, duration=duration, cores=cores,
                  qos=qos, submit_time=self.engine.now)
        scheduler.submit(job)
        self.stats.note(scheduler.name)
        return job

    def schedule_trace(self, jobs: Sequence, time_offset: float = 0.0) -> int:
        """Queue every trace job for submission at its arrival time.

        ``jobs`` is any sequence of objects with ``user`` (grid identity),
        ``submit`` and ``duration`` attributes (``repro.workload.TraceJob``).
        Returns the number of jobs queued.
        """
        count = 0
        for tj in jobs:
            when = tj.submit + time_offset
            self.engine.schedule_at(
                when,
                lambda tj=tj: self.submit_job(tj.user, tj.duration,
                                              getattr(tj, "cores", 1)))
            count += 1
        return count
