"""Discrete-event simulation substrate: engine, RNG streams, metrics, and
the grid submission layer (replaces the paper's physical test bed)."""

from .engine import PeriodicTask, SimulationEngine, SimulationError
from .grid import GridIdentityMapper, GridSubmissionHost
from .metrics import MetricsRecorder, TimeSeries, convergence_time, share_deviation
from .random import RandomStreams

__all__ = [
    "PeriodicTask", "SimulationEngine", "SimulationError",
    "GridIdentityMapper", "GridSubmissionHost",
    "MetricsRecorder", "TimeSeries", "convergence_time", "share_deviation",
    "RandomStreams",
]
