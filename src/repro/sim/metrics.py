"""Time-series collection and convergence analysis for simulation runs.

The paper's evaluation figures plot, over wall-clock test time: cumulative
usage shares per user, fairshare priorities per user (per site), and system
utilization.  :class:`MetricsRecorder` collects such series; the module also
provides the convergence measure used for the update-delay comparison
(Figure 11: "10%–15% shorter convergence time").
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TimeSeries", "MetricsRecorder", "share_deviation", "convergence_time"]


@dataclass
class TimeSeries:
    """A sampled scalar series: parallel ``times`` / ``values`` lists."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"{self.name}: time went backwards ({time} < {self.times[-1]})")
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def at(self, time: float) -> float:
        """Last value recorded at or before ``time`` (step interpolation)."""
        if not self.times:
            raise ValueError(f"{self.name}: empty series")
        i = bisect_right(self.times, time) - 1
        if i < 0:
            return self.values[0]
        return self.values[i]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean over the final ``fraction`` of samples (steady-state level)."""
        if not self.values:
            raise ValueError(f"{self.name}: empty series")
        n = max(1, int(len(self.values) * fraction))
        return float(np.mean(self.values[-n:]))


class MetricsRecorder:
    """Collects named time series during a simulation run."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self._series[name] = ts
        return ts

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)

    def record_many(self, prefix: str, time: float, values: Mapping[str, float]) -> None:
        for key, value in values.items():
            self.record(f"{prefix}/{key}", time, value)

    def names(self, prefix: Optional[str] = None) -> List[str]:
        names = sorted(self._series)
        if prefix is not None:
            names = [n for n in names if n.startswith(prefix)]
        return names

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> TimeSeries:
        return self._series[name]


def share_deviation(shares: Mapping[str, float], targets: Mapping[str, float]) -> float:
    """Mean absolute deviation between observed and target shares.

    The scalar "distance from balance" tracked over time to quantify
    convergence; zero means the usage mix exactly matches policy.
    """
    keys = set(shares) | set(targets)
    if not keys:
        return 0.0
    return float(np.mean([abs(shares.get(k, 0.0) - targets.get(k, 0.0)) for k in keys]))


def convergence_time(series: TimeSeries, threshold: float,
                     hold: float = 0.0) -> Optional[float]:
    """First time the series drops below ``threshold`` and stays there.

    ``hold`` requires the series to remain below the threshold for that much
    additional time (guards against transient dips).  Returns ``None`` if
    the series never converges.
    """
    times, values = series.as_arrays()
    below = values < threshold
    start: Optional[float] = None
    for t, ok in zip(times, below):
        if ok:
            if start is None:
                start = float(t)
            if t - start >= hold:
                pass  # keep scanning; as long as it stays below we're fine
        else:
            start = None
    if start is None:
        return None
    if times[-1] - start < hold:
        return None
    return start
