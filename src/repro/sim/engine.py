"""Deterministic discrete-event simulation engine.

The paper evaluates Aequus on a physical test bed where actual computation
is replaced with idle-wait jobs; the quantity under study is *scheduling
behaviour over time*, not hardware speed.  We therefore reproduce the test
bed as a discrete-event simulation: a single virtual clock, an event heap,
and periodic processes (service refresh loops, scheduler passes, metric
samplers).

Determinism rules:

* ties on the event heap break on a monotonically increasing sequence
  number, so same-time events fire in scheduling order;
* all randomness comes from named, seeded RNG streams
  (:mod:`repro.sim.random`), never from global state.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["SimulationEngine", "PeriodicTask", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling into the past)."""


class PeriodicTask:
    """Handle for a recurring callback; cancel() stops future firings."""

    __slots__ = ("interval", "callback", "cancelled", "jitter_fn")

    def __init__(self, interval: float, callback: Callable[[], Any],
                 jitter_fn: Optional[Callable[[], float]] = None):
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self.jitter_fn = jitter_fn

    def cancel(self) -> None:
        self.cancelled = True


class SimulationEngine:
    """Virtual-time event loop.

    Events are ``(time, seq, callback)``; :meth:`run_until` drains the heap
    up to (and including) a horizon.  Callbacks may schedule further events.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` when the clock reaches ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._heap, (float(time), next(self._seq), callback))

    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def periodic(self, interval: float, callback: Callable[[], Any],
                 start_offset: float = 0.0,
                 jitter_fn: Optional[Callable[[], float]] = None) -> PeriodicTask:
        """Register a recurring callback every ``interval`` seconds.

        ``start_offset`` delays the first firing (useful to de-phase service
        refresh loops across sites, as real deployments are never aligned).
        ``jitter_fn``, if given, returns an extra non-negative delay added to
        each period.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask(interval, callback, jitter_fn)

        def fire() -> None:
            if task.cancelled:
                return
            task.callback()
            delay = task.interval + (task.jitter_fn() if task.jitter_fn else 0.0)
            self.schedule(delay, fire)

        self.schedule(start_offset, fire)
        return task

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False if the heap is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        self._events_processed += 1
        callback()
        return True

    def run_until(self, horizon: float) -> None:
        """Process all events with time <= ``horizon``; clock ends at horizon."""
        if horizon < self._now:
            raise SimulationError(f"horizon {horizon} < now {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` seconds (run_until now+duration)."""
        self.run_until(self._now + duration)

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the heap completely (or up to ``max_events``)."""
        count = 0
        while self._heap:
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                return
