"""``repro.obs`` — unified observability for the Aequus stack.

Three pieces (DESIGN.md §9):

* :mod:`~repro.obs.registry` — labeled Counter/Gauge/Histogram metrics in
  lock-safe registries (process default + per-site children, dual clocks);
* :mod:`~repro.obs.trace` — nested span tracing into a bounded ring
  buffer, exported as Chrome ``trace_event`` JSON/JSONL;
* :mod:`~repro.obs.export` — Prometheus text-format exposition, served by
  aequusd's ``METRICS`` op and the ``aequus-repro metrics`` CLI.

:func:`set_enabled` flips the process default for both metrics-only
instruments (histograms/timers) and tracing — the switch the overhead
benchmark uses for its instrumentation-off baseline.  Counters and gauges
backing public stats APIs always stay live (see the registry docstring).
"""

from .jsonlog import JsonLogger
from .registry import (LATENCY_BUCKETS, MetricsRegistry, StatsView,
                       default_enabled, default_registry, metric_property,
                       set_default_enabled)
from .trace import Tracer, default_tracer, set_default_tracer, span
from .export import render, render_many

__all__ = [
    "JsonLogger",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "StatsView",
    "Tracer",
    "default_enabled",
    "default_registry",
    "default_tracer",
    "metric_property",
    "render",
    "render_many",
    "set_default_enabled",
    "set_default_tracer",
    "set_enabled",
    "span",
]


def set_enabled(flag: bool) -> None:
    """Flip the process-wide observability default (new registries/tracers)
    AND the current default tracer — one switch for 'instrumentation off'."""
    set_default_enabled(flag)
    default_tracer().enabled = bool(flag)
