"""``repro.obs`` — unified observability for the Aequus stack.

Three pieces (DESIGN.md §9):

* :mod:`~repro.obs.registry` — labeled Counter/Gauge/Histogram metrics in
  lock-safe registries (process default + per-site children, dual clocks);
* :mod:`~repro.obs.trace` — nested span tracing into a bounded ring
  buffer, exported as Chrome ``trace_event`` JSON/JSONL;
* :mod:`~repro.obs.export` — Prometheus text-format exposition, served by
  aequusd's ``METRICS`` op and the ``aequus-repro metrics`` CLI.

Plus the evaluation plane (DESIGN.md §10): :mod:`~repro.obs.timeseries`
(bounded ring series with CSV/JSONL export) and :mod:`~repro.obs.evaluate`
(fairness-quality recorder — distance, divergence, staleness — and the
markdown report renderers behind ``aequus-repro report``), and the fleet
plane (DESIGN.md §14): :mod:`~repro.obs.collector` scrapes METRICS +
INFO + TRACE_EXPORT from every daemon of a grid, merges them under a
``site`` label, and aligns cross-process traces on the shared virtual
epoch (``aequus-repro top`` / ``report --grid``).

:func:`set_enabled` flips the process default for both metrics-only
instruments (histograms/timers) and tracing — the switch the overhead
benchmark uses for its instrumentation-off baseline.  Counters and gauges
backing public stats APIs always stay live (see the registry docstring).
"""

from .jsonlog import JsonLogger
from .registry import (AGE_BUCKETS, LATENCY_BUCKETS, MetricsRegistry,
                       StatsView, default_enabled, default_registry,
                       metric_property, set_default_enabled)
from .trace import Tracer, default_tracer, set_default_tracer, span
from .export import render, render_many
from .timeseries import RingSeries, SeriesStore
from .evaluate import (FairnessRecorder, convergence_half_life,
                       cross_site_divergence, distance_stats,
                       parse_exposition, render_report, report_from_daemon)
from .collector import FleetCollector

__all__ = [
    "AGE_BUCKETS",
    "FairnessRecorder",
    "FleetCollector",
    "JsonLogger",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RingSeries",
    "SeriesStore",
    "StatsView",
    "Tracer",
    "convergence_half_life",
    "cross_site_divergence",
    "default_enabled",
    "default_registry",
    "default_tracer",
    "distance_stats",
    "metric_property",
    "parse_exposition",
    "render",
    "render_many",
    "render_report",
    "report_from_daemon",
    "set_default_enabled",
    "set_default_tracer",
    "set_enabled",
    "span",
]


def set_enabled(flag: bool) -> None:
    """Flip the process-wide observability default (new registries/tracers)
    AND the current default tracer — one switch for 'instrumentation off'."""
    set_default_enabled(flag)
    default_tracer().enabled = bool(flag)
