"""Structured JSON logging for the aequusd daemon (DESIGN.md §9).

One JSON object per line on a stream: ``{"ts": ..., "event": ..., ...}``.
The daemon emits a line per wall-clock tick, per FCS refresh (with publish
seq, duration, and cache hit/miss), and per USS exchange round — the
greppable operational record the paper's HPC2N deployment analysis leans
on (update delay, message traffic per service).

Timestamps come from the logger's clock — wall clock in the daemon; pass
a sim-engine clock to stamp virtual time.  Non-serializable field values
degrade to ``repr`` rather than raising: a log line must never take down
the tick thread.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, IO, Optional

__all__ = ["JsonLogger"]


class JsonLogger:
    """Thread-safe one-line-per-event JSON logger."""

    def __init__(self, stream: IO[str],
                 clock: Optional[Callable[[], float]] = None):
        self.stream = stream
        self.clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self.lines = 0

    def log(self, event: str, **fields: Any) -> None:
        record = {"ts": round(self.clock(), 6), "event": event, **fields}
        try:
            line = json.dumps(record, separators=(",", ":"))
        except (TypeError, ValueError):
            line = json.dumps({"ts": record["ts"], "event": event,
                               "repr": repr(fields)},
                              separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")
            flush = getattr(self.stream, "flush", None)
            if flush is not None:
                flush()
            self.lines += 1
