"""Prometheus text-format exposition for :mod:`repro.obs.registry`.

Renders any registry (plus its children) in the Prometheus text format
(version 0.0.4): ``# HELP`` / ``# TYPE`` headers, label escaping
(backslash, double quote, newline), and histogram expansion into
cumulative ``_bucket{le=...}`` series (monotone, closed by ``le="+Inf"``)
plus ``_sum`` and ``_count``.

Output is deterministic — families sorted by name, children by label
values — which is what lets the serve plane's ``METRICS`` op guarantee
byte-for-byte agreement with a direct :func:`render` of the same
registries (tested in ``tests/serve/test_metrics_op.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from .registry import Histogram, MetricsRegistry

__all__ = ["render", "render_many", "escape_label_value", "escape_help"]


def escape_label_value(value: str) -> str:
    """Backslash-escape ``\\``, ``"`` and newlines (exposition §label)."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def escape_help(text: str) -> str:
    """HELP text escapes backslash and newline (but not quotes)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()
                                  and abs(value) < 1e15):
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(f'{name}="{escape_label_value(value)}"'
                        for name, value in pairs)
    return f"{{{rendered}}}" if rendered else ""


def _sample(name: str, pairs: List[Tuple[str, str]], value) -> str:
    return f"{name}{_format_labels(pairs)} {_format_value(value)}"


def render_many(registries: Iterable[MetricsRegistry]) -> str:
    """Concatenated exposition of several registries (deduped by identity;
    a family name appearing in more than one registry keeps one header)."""
    seen_registries: List[int] = []
    lines: List[str] = []
    headered: Dict[str, str] = {}
    for registry in registries:
        if id(registry) in seen_registries:
            continue
        seen_registries.append(id(registry))
        for family, constant_labels in registry.collect():
            known = headered.get(family.name)
            if known is None:
                if family.help:
                    lines.append(f"# HELP {family.name} "
                                 f"{escape_help(family.help)}")
                lines.append(f"# TYPE {family.name} {family.type}")
                headered[family.name] = family.type
            base = sorted(constant_labels.items())
            for label_values, child in family.items():
                pairs = base + list(zip(family.labelnames, label_values))
                if isinstance(child, Histogram):
                    cumulative = 0
                    for bound, count in zip(child.buckets, child.counts):
                        cumulative += count
                        lines.append(_sample(
                            f"{family.name}_bucket",
                            pairs + [("le", _format_value(bound))],
                            cumulative))
                    lines.append(_sample(f"{family.name}_bucket",
                                         pairs + [("le", "+Inf")],
                                         child.count))
                    lines.append(_sample(f"{family.name}_sum", pairs,
                                         child.sum))
                    lines.append(_sample(f"{family.name}_count", pairs,
                                         child.count))
                else:
                    lines.append(_sample(family.name, pairs, child.value))
    return "\n".join(lines) + "\n" if lines else ""


def render(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of one registry (and its children)."""
    return render_many([registry])
