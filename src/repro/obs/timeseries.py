"""Bounded time-series storage for the evaluation plane (DESIGN.md §10).

:class:`RingSeries` is a fixed-capacity (time, value) ring buffer;
:class:`SeriesStore` is a named collection of them with CSV/JSONL export
and re-import.  This is the *operational* counterpart of
:mod:`repro.sim.metrics`: that module's :class:`~repro.sim.metrics.TimeSeries`
grows without bound for offline analysis of one simulation run, while a
ring series can sample a long-running daemon forever in O(capacity)
memory — the recorder in :mod:`repro.obs.evaluate` samples into a store
every tick and the ``aequus-repro report`` CLI renders one.

The JSONL format is one sample per line
(``{"series": <name>, "t": <time>, "v": <value>}``): append-friendly,
greppable, and loss-tolerant — a truncated last line is skipped on load,
so a report can always be rendered from a file a live daemon is still
writing.
"""

from __future__ import annotations

import json
from collections import deque
from typing import (IO, Callable, Deque, Dict, Iterator, List, Mapping,
                    Optional, Tuple, Union)

__all__ = ["RingSeries", "SeriesStore"]

#: default per-series capacity: at one sample per 30 s tick this holds
#: better than a day of history per series
DEFAULT_CAPACITY = 4096


class RingSeries:
    """A named scalar series in a bounded ring buffer.

    Appends are O(1); once ``capacity`` samples are held, the oldest is
    evicted.  Times must be non-decreasing (samples come from one clock);
    a series configured with its own ``clock`` (the fleet collector's
    virtual-epoch clock) stamps every sample from that clock instead —
    per-daemon timestamps from processes booted at different wall times
    would otherwise interleave non-monotonically when merged.
    """

    __slots__ = ("name", "capacity", "clock", "clamped", "_samples",
                 "appended")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        #: authoritative timestamp source; when set, the ``t`` passed to
        #: :meth:`append` is ignored in favour of this clock
        self.clock = clock
        #: samples whose clock read stepped backwards (NTP slew) and were
        #: clamped to the previous timestamp instead of raising
        self.clamped = 0
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        #: lifetime append count (evictions don't decrement)
        self.appended = 0

    def append(self, t: float, value: float) -> None:
        if self.clock is not None:
            t = self.clock()
            if self._samples and t < self._samples[-1][0]:
                t = self._samples[-1][0]
                self.clamped += 1
        elif self._samples and t < self._samples[-1][0]:
            raise ValueError(
                f"{self.name}: time went backwards "
                f"({t} < {self._samples[-1][0]})")
        self._samples.append((float(t), float(value)))
        self.appended += 1

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self._samples)

    def times(self) -> List[float]:
        return [t for t, _ in self._samples]

    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def first(self) -> Optional[Tuple[float, float]]:
        return self._samples[0] if self._samples else None

    def since(self, t0: float) -> List[Tuple[float, float]]:
        """Samples with ``t >= t0`` (still in the buffer)."""
        return [(t, v) for t, v in self._samples if t >= t0]

    def min(self) -> float:
        return min(v for _, v in self._samples)

    def max(self) -> float:
        return max(v for _, v in self._samples)

    def mean(self) -> float:
        return sum(v for _, v in self._samples) / len(self._samples)


class SeriesStore:
    """Named ring series, created on first sample.

    Not thread-safe by design: samples come from the single thread driving
    the engine (the sim loop or the daemon's tick thread), like every
    other service-side mutation.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None):
        self.capacity = capacity
        #: passed to every created series (see :class:`RingSeries`); the
        #: fleet collector sets this to its virtual-epoch clock so merged
        #: cross-daemon series share one monotone timeline
        self.clock = clock
        self._series: Dict[str, RingSeries] = {}

    def series(self, name: str) -> RingSeries:
        s = self._series.get(name)
        if s is None:
            s = RingSeries(name, self.capacity, clock=self.clock)
            self._series[name] = s
        return s

    def sample(self, name: str, t: float, value: float) -> None:
        self.series(name).append(t, value)

    def sample_many(self, prefix: str, t: float,
                    values: Mapping[str, float]) -> None:
        for key, value in values.items():
            self.sample(f"{prefix}/{key}", t, value)

    # -- reads --------------------------------------------------------------

    def names(self, prefix: Optional[str] = None) -> List[str]:
        names = sorted(self._series)
        if prefix is not None:
            names = [n for n in names if n.startswith(prefix)]
        return names

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> RingSeries:
        return self._series[name]

    def __len__(self) -> int:
        return len(self._series)

    # -- export / import -----------------------------------------------------

    def _open(self, target: Union[str, IO[str]], mode: str):
        if isinstance(target, str):
            return open(target, mode, encoding="utf-8"), True
        return target, False

    def to_csv(self, target: Union[str, IO[str]]) -> int:
        """Write ``series,time,value`` rows (header included); returns the
        number of samples written."""
        stream, owned = self._open(target, "w")
        try:
            stream.write("series,time,value\n")
            rows = 0
            for name in self.names():
                for t, v in self._series[name]:
                    stream.write(f"{name},{t!r},{v!r}\n")
                    rows += 1
            return rows
        finally:
            if owned:
                stream.close()

    def to_jsonl(self, target: Union[str, IO[str]]) -> int:
        """One JSON object per sample; returns the number written."""
        stream, owned = self._open(target, "w")
        try:
            rows = 0
            for name in self.names():
                for t, v in self._series[name]:
                    stream.write(json.dumps(
                        {"series": name, "t": t, "v": v},
                        separators=(",", ":")) + "\n")
                    rows += 1
            return rows
        finally:
            if owned:
                stream.close()

    @classmethod
    def from_jsonl(cls, source: Union[str, IO[str]],
                   capacity: int = DEFAULT_CAPACITY) -> "SeriesStore":
        """Rebuild a store from :meth:`to_jsonl` output.

        Blank and truncated/corrupt lines are skipped (a live writer may
        be mid-line), so rendering a report never races the recorder.
        """
        store = cls(capacity=capacity)
        stream, owned = store._open(source, "r")
        try:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    store.sample(str(record["series"]),
                                 float(record["t"]), float(record["v"]))
                except (ValueError, KeyError, TypeError):
                    continue
            return store
        finally:
            if owned:
                stream.close()
