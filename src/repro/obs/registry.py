"""Unified metrics registry for the Aequus stack (DESIGN.md §9).

One :class:`MetricsRegistry` holds labeled :class:`Counter` / :class:`Gauge`
/ :class:`Histogram` families; :mod:`repro.obs.export` renders any registry
(and its children) as Prometheus text exposition.  The design constraints,
in order:

* **Views, not forks.**  The pre-existing ad-hoc stats surfaces
  (``NetworkStats``, ``AequusServer.stats``, ``LibAequus.cache_stats()``,
  the FCS/USS/UMS counters) stay API-compatible by becoming *views over
  registry metrics*: the metric is the single source of truth and the old
  attribute reads/writes it through :func:`metric_property` /
  :class:`StatsView`.  Counters and gauges therefore stay live even when a
  registry is *disabled* — disabling only switches off the
  observability-only instruments (histogram observations, timers, spans),
  never the accounting the library's own APIs are built on.

* **Cheap when off, cheap when on.**  ``Histogram.observe`` starts with a
  single attribute check against the registry's enabled flag; hot paths
  guard their ``perf_counter`` pairs on the same flag.  The benchmark gate
  (``benchmarks/test_obs_overhead.py``) holds full instrumentation to
  < 5 % overhead on the refresh and serve benchmarks.

* **Dual clocks.**  A registry carries a ``clock`` used for *timestamps*
  (structured logs, staleness): the simulation stack passes the virtual
  engine clock, ``aequusd`` wall-clock time.  *Durations* are always
  measured with ``time.perf_counter`` — a refresh takes zero simulated
  time but real milliseconds, and the latency histograms exist to measure
  the latter.

* **Per-site isolation.**  Each :class:`~repro.services.site.AequusSite`
  (and each ``Network``, client, …) gets its own registry by default, with
  the site name as a constant label; nothing leaks across the hundreds of
  sites the test suite creates.  The process-default registry
  (:func:`default_registry`) exists for ad-hoc instrumentation and as the
  parent to attach site registries to when one scrape should cover them
  all — ``registry.child(...)`` builds that hierarchy.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    MutableMapping, Optional, Tuple)

__all__ = [
    "AGE_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "default_registry",
    "metric_property",
    "set_default_enabled",
]

#: fixed log-spaced latency buckets (seconds), 1-2.5-5 per decade from
#: 10 µs to 10 s — shared by every duration histogram so series are
#: comparable across services
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: buckets for *ages* in virtual seconds (snapshot age, usage-horizon
#: staleness) — spanning sub-interval freshness to multi-hour stalls, so
#: the paper's update-delay distribution (Fig. 11) and partition outages
#: land in distinguishable buckets
AGE_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 15.0, 30.0, 45.0, 60.0, 90.0, 120.0,
    300.0, 600.0, 1800.0, 3600.0, 7200.0,
)

#: process-wide default for newly created registries and tracers;
#: REPRO_OBS_DISABLED=1 starts everything off (benchmark baseline mode)
_DEFAULT_ENABLED = os.environ.get("REPRO_OBS_DISABLED", "") not in (
    "1", "true", "yes")


def set_default_enabled(flag: bool) -> None:
    """Set the enabled default inherited by registries/tracers created
    *after* this call (existing ones keep their flag)."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(flag)


def default_enabled() -> bool:
    return _DEFAULT_ENABLED


class _Metric:
    """One sample series: a label-value binding of a family."""

    __slots__ = ("family", "label_values", "value", "_lock")

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]):
        self.family = family
        self.label_values = label_values
        self.value: float = 0
        self._lock = family.registry._lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Counter(_Metric):
    """Monotone under normal use; ``set`` exists for the view surfaces
    (``NetworkStats.reset()`` predates the registry and must keep working)."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    """A value that goes up and down (active connections, queue depth)."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self.value -= amount


class Histogram(_Metric):
    """Fixed-bucket distribution; per-bucket counts cumulate at render time.

    ``observe`` is the one instrument gated on the registry's enabled flag:
    histograms are pure observability (nothing reads them back through a
    public API), so the disabled fast path is a single attribute check.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]):
        super().__init__(family, label_values)
        self.buckets: Tuple[float, ...] = family.buckets
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        if not self.family.registry.enabled:
            return
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def time(self) -> "_HistogramTimer":
        """``with hist.time(): ...`` — observes the wall-clock duration."""
        return _HistogramTimer(self)

    def set(self, value) -> None:  # pragma: no cover - not a view target
        raise TypeError("histograms cannot be set")


class _HistogramTimer:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named metric plus all of its label-value children."""

    __slots__ = ("registry", "name", "help", "type", "labelnames", "buckets",
                 "_children")

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 type: str, labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...] = LATENCY_BUCKETS):
        self.registry = registry
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets))
        self._children: Dict[Tuple[str, ...], _Metric] = {}
        if not labelnames:
            self.labels()  # unlabeled families render their zero immediately

    def labels(self, **labels: str):
        """The child for one label binding (created on first use).

        Hot paths bind children once at service construction and keep the
        returned object — the kwargs round trip is not free.
        """
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self.registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = _METRIC_TYPES[self.type](self, key)
                    self._children[key] = child
        return child

    def children(self) -> List[_Metric]:
        return list(self._children.values())

    def items(self) -> List[Tuple[Tuple[str, ...], _Metric]]:
        return sorted(self._children.items())

    def clear(self) -> None:
        """Drop every labeled series; unlabeled families reset to zero.

        This is the ``reset()`` semantics the pre-registry dict counters
        had: a cleared by-type breakdown is empty, not zero-valued.
        """
        with self.registry._lock:
            self._children.clear()
        if not self.labelnames:
            self.labels()


class MetricsRegistry:
    """A set of metric families, optionally nested via :meth:`child`.

    ``constant_labels`` are attached to every sample at render time (the
    per-site ``site="..."`` label); children inherit and extend them.
    ``clock`` is the *timestamp* clock (see module docstring).
    """

    def __init__(self, constant_labels: Optional[Mapping[str, str]] = None,
                 clock: Optional[Callable[[], float]] = None,
                 enabled: Optional[bool] = None):
        self.constant_labels: Dict[str, str] = dict(constant_labels or {})
        self.clock = clock if clock is not None else time.time
        self.enabled = _DEFAULT_ENABLED if enabled is None else bool(enabled)
        # reentrant: family creation under the lock creates the unlabeled
        # child, which takes the lock again
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._children: List["MetricsRegistry"] = []

    # -- family constructors (get-or-create, so re-wiring is idempotent) ----

    def _family(self, name: str, help: str, type: str,
                labelnames: Iterable[str], **kwargs: Any) -> _Family:
        labelnames = tuple(labelnames)
        family = self._families.get(name)
        if family is not None:
            if family.type != type or family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} re-registered as {type}{labelnames}, "
                    f"was {family.type}{family.labelnames}")
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, help, type, labelnames, **kwargs)
                self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, help, "gauge", labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Tuple[float, ...] = LATENCY_BUCKETS) -> _Family:
        return self._family(name, help, "histogram", labelnames,
                            buckets=buckets)

    # -- hierarchy ----------------------------------------------------------

    def child(self, **labels: str) -> "MetricsRegistry":
        """A nested registry whose samples carry these extra labels.

        Children render with the parent (:meth:`collect` recurses), share
        the parent's clock, and start from the parent's enabled flag.
        """
        reg = MetricsRegistry(
            constant_labels={**self.constant_labels,
                             **{k: str(v) for k, v in labels.items()}},
            clock=self.clock, enabled=self.enabled)
        with self._lock:
            self._children.append(reg)
        return reg

    def adopt(self, registry: "MetricsRegistry") -> "MetricsRegistry":
        """Attach an existing registry so one render covers both."""
        with self._lock:
            if registry is not self and registry not in self._children:
                self._children.append(registry)
        return registry

    def collect(self) -> Iterator[Tuple[_Family, Dict[str, str]]]:
        """Every family in this registry and its children, with the
        constant labels that apply to it."""
        for family in sorted(self._families.values(), key=lambda f: f.name):
            yield family, self.constant_labels
        for child in list(self._children):
            yield from child.collect()

    def timestamp(self) -> float:
        return self.clock()


_default_registry: Optional[MetricsRegistry] = None
_default_registry_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The lazily created process-default registry (wall-clock)."""
    global _default_registry
    if _default_registry is None:
        with _default_registry_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry


# -- view plumbing (old stats APIs over registry metrics) ---------------------

def metric_property(key: str, doc: str = "") -> property:
    """A read/write attribute backed by ``self._metrics[key]``.

    Lets a class keep its historical counter attributes (``refreshes``,
    ``exchanges_stale``, ``publishes`` …) — including ``obj.attr += 1``
    call sites and test assertions — while the value lives in the registry.
    """

    def fget(self):
        return self._metrics[key].value

    def fset(self, value):
        self._metrics[key].set(value)

    return property(fget, fset, doc=doc or f"registry view of {key!r}")


class StatsView(MutableMapping):
    """Dict-shaped view over a fixed set of metrics.

    ``AequusServer.stats`` and ``AequusClient.stats`` predate the registry
    as plain dicts; this keeps every ``stats["requests"] += 1`` call site
    and ``dict(stats)`` snapshot working against registry-backed values.
    Keys are fixed at construction — a stats surface is a contract.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: Dict[str, _Metric]):
        self._metrics = metrics

    def __getitem__(self, key: str):
        return self._metrics[key].value

    def __setitem__(self, key: str, value) -> None:
        self._metrics[key].set(value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("stats keys are a fixed contract; cannot delete")

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView({dict(self)!r})"
