"""Fairness-quality evaluation: recorder, statistics, and reports.

The metrics plane (:mod:`repro.obs.registry`) answers "is the stack
healthy"; this module answers the paper's evaluation questions while the
stack runs (DESIGN.md §10):

* **distance** — how far each tree node's usage share sits from its
  policy target share, computed over the flat arrays of the last FCS
  refresh (the quantity Aequus drives toward zero);
* **divergence** — the maximum pairwise delta, across sites, of the
  projected value for the same user: zero when every site agrees, bounded
  by the exchange interval in steady state, and spiking under partitions;
* **staleness** — per-site per-origin usage-horizon age (tentpole 1),
  sampled as series so stalls are visible as ramps, not just histogram
  mass.

:class:`FairnessRecorder` samples all three into a bounded
:class:`~repro.obs.timeseries.SeriesStore` on an engine-periodic tick;
:func:`render_report` turns a store into a markdown report and
:func:`report_from_daemon` renders the same shape from a live aequusd's
INFO + METRICS replies (``aequus-repro report``).
"""

from __future__ import annotations

import math
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

import numpy as np

from .registry import default_enabled
from .timeseries import RingSeries, SeriesStore

if TYPE_CHECKING:
    from ..core.flat import FlatFairshare
    from ..services.site import AequusSite
    from ..sim.engine import PeriodicTask, SimulationEngine

__all__ = [
    "FairnessRecorder",
    "convergence_half_life",
    "cross_site_divergence",
    "distance_stats",
    "parse_exposition",
    "render_report",
    "report_from_daemon",
]


# -- per-sample statistics ----------------------------------------------------

def distance_stats(result: Optional["FlatFairshare"]) -> Dict[str, float]:
    """Mean/max policy-vs-usage distance over all tree nodes.

    ``|target_share - usage_share|`` per node of the flat refresh result —
    0 everywhere means actual consumption matches the policy exactly.
    """
    if result is None or result.target_share.size == 0:
        return {"mean": 0.0, "max": 0.0}
    dist = np.abs(result.target_share - result.usage_share)
    # raw ufunc reductions: this runs on every recorder sample, and the
    # ndarray method wrappers' bookkeeping would dominate on small trees
    return {"mean": float(np.add.reduce(dist)) / dist.size,
            "max": float(np.maximum.reduce(dist))}


def cross_site_divergence(value_maps: Sequence[Mapping[str, float]],
                          ) -> Tuple[float, int]:
    """Max pairwise delta of any user's projected value across sites.

    Returns ``(max_spread, users_compared)`` over users known to at least
    two of the given per-site value maps.  When every map covers the same
    key set in the same order (the common case: all sites share one
    policy), the comparison is a single vectorized max-minus-min; ragged
    maps fall back to a per-user scan.
    """
    maps = [m for m in value_maps if m]
    if len(maps) < 2:
        return 0.0, 0
    first_keys = tuple(maps[0])
    if all(tuple(m) == first_keys for m in maps[1:]):
        mat = np.array([np.fromiter(m.values(), dtype=np.float64,
                                    count=len(first_keys)) for m in maps])
        spread = mat.max(axis=0) - mat.min(axis=0)
        return float(spread.max(initial=0.0)), len(first_keys)
    shared: Dict[str, List[float]] = {}
    for m in maps:
        for user, value in m.items():
            shared.setdefault(user, []).append(value)
    worst, compared = 0.0, 0
    for values in shared.values():
        if len(values) < 2:
            continue
        compared += 1
        worst = max(worst, max(values) - min(values))
    return worst, compared


def convergence_half_life(series: RingSeries,
                          t0: float) -> Optional[float]:
    """Seconds from a perturbation at ``t0`` until the series has closed
    half the gap between its post-``t0`` peak and its final value.

    Returns ``None`` when the series has no samples after ``t0`` or never
    reaches the halfway point (still converging when sampling stopped).
    """
    window = series.since(t0)
    if len(window) < 2:
        return None
    peak_t, peak_v = max(window, key=lambda s: s[1])
    final_v = window[-1][1]
    if peak_v <= final_v:
        return None
    target = final_v + (peak_v - final_v) / 2.0
    for t, v in window:
        if t >= peak_t and v <= target:
            return t - t0
    return None


# -- the recorder -------------------------------------------------------------

class FairnessRecorder:
    """Samples fairness-quality series from one or more site stacks.

    Series layout (all prefixes relative to one store):

    * ``distance_mean/<site>``, ``distance_max/<site>`` — node distance;
    * ``staleness/<site>/<origin>`` — usage-horizon age per remote origin;
    * ``divergence_max``, ``divergence_users`` — cross-site agreement
      (only when recording two or more sites).

    Attach to an engine with :meth:`attach` for periodic sampling, or call
    :meth:`sample` directly (the sim loop and tests do both).  The
    recorder reads only published FCS/USS query surfaces, so it is safe to
    sample from the thread driving the engine.

    Like registries and tracers, the recorder snapshots the global
    observability flag at construction: built while ``REPRO_OBS_DISABLED``
    (or :func:`repro.obs.set_enabled`) has observability off, every
    :meth:`sample` is a no-op — an attached-but-quiet recorder restores
    baseline performance.
    """

    def __init__(self, sites: Iterable["AequusSite"],
                 interval: float = 30.0,
                 store: Optional[SeriesStore] = None,
                 enabled: Optional[bool] = None):
        self.sites = list(sites)
        if not self.sites:
            raise ValueError("FairnessRecorder needs at least one site")
        self.interval = interval
        self.enabled = default_enabled() if enabled is None else enabled
        self.store = store if store is not None else SeriesStore()
        self.samples = 0
        self._task: Optional["PeriodicTask"] = None
        # verified-alignment cache for the array divergence fast path: the
        # id tuple of each site's leaf-path list, plus strong references to
        # those lists so a matching id can only mean the same object
        self._aligned_key: Optional[Tuple[int, ...]] = None
        self._aligned_refs: Tuple[List[str], ...] = ()
        # series objects resolved once per name — sample() is the hot path
        self._dist_series: Dict[str, Tuple[RingSeries, RingSeries]] = {}
        self._stale_series: Dict[Tuple[str, str], RingSeries] = {}
        self._div_series: Optional[Tuple[RingSeries, RingSeries]] = None

    def attach(self, engine: Optional["SimulationEngine"] = None,
               start_offset: Optional[float] = None) -> "PeriodicTask":
        """Register the periodic sampling tick (idempotent per recorder)."""
        if self._task is not None:
            return self._task
        if engine is None:
            engine = self.sites[0].fcs.engine
        offset = self.interval if start_offset is None else start_offset
        self._task = engine.periodic(self.interval, self.sample,
                                     start_offset=offset)
        return self._task

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def sample(self) -> None:
        """Take one sample of every series, stamped at the engine clock."""
        if not self.enabled:
            return
        now = self.sites[0].fcs.engine.now
        for site in self.sites:
            fcs = site.fcs
            dist = distance_stats(fcs.flat_result())
            pair = self._dist_series.get(site.name)
            if pair is None:
                pair = (self.store.series(f"distance_mean/{site.name}"),
                        self.store.series(f"distance_max/{site.name}"))
                self._dist_series[site.name] = pair
            pair[0].append(now, dist["mean"])
            pair[1].append(now, dist["max"])
            for origin, horizon in fcs.usage_horizons().items():
                key = (site.name, origin)
                series = self._stale_series.get(key)
                if series is None:
                    series = self.store.series(
                        f"staleness/{site.name}/{origin}")
                    self._stale_series[key] = series
                age = now - horizon
                series.append(now, age if age > 0.0 else 0.0)
        if len(self.sites) >= 2:
            worst, compared = self._divergence_now()
            if self._div_series is None:
                self._div_series = (self.store.series("divergence_max"),
                                    self.store.series("divergence_users"))
            self._div_series[0].append(now, worst)
            self._div_series[1].append(now, float(compared))
        self.samples += 1

    def _divergence_now(self) -> Tuple[float, int]:
        """Cross-site divergence of the sites' current values.

        When every site serves an aligned values array (one shared policy,
        verified once and cached by leaf-list identity), the spread is a
        single vectorized max-minus-min over the arrays the FCSes already
        hold — no per-user dict traffic.  Anything else falls back to
        :func:`cross_site_divergence` over the dict views.
        """
        vecs: List["np.ndarray"] = []
        paths: List[List[str]] = []
        for site in self.sites:
            fcs = site.fcs
            result = fcs.flat_result()
            vec = fcs.values_array()
            if result is None or vec is None or not len(vec):
                break
            vecs.append(vec)
            paths.append(result.leaf_paths)
        else:
            key = tuple(id(p) for p in paths)
            if key != self._aligned_key:
                first = paths[0]
                if any(p != first for p in paths[1:]):
                    self._aligned_key, self._aligned_refs = None, ()
                    return cross_site_divergence(
                        [site.fcs.values_view() for site in self.sites])
                self._aligned_key = key
                self._aligned_refs = tuple(paths)
            mat = np.vstack(vecs)
            spread = mat.max(axis=0) - mat.min(axis=0)
            return float(spread.max(initial=0.0)), mat.shape[1]
        return cross_site_divergence(
            [site.fcs.values_view() for site in self.sites])

    # -- convenience reads ---------------------------------------------------

    def divergence(self) -> Optional[RingSeries]:
        return (self.store["divergence_max"]
                if "divergence_max" in self.store else None)

    def staleness_series(self, site: str, origin: str) -> Optional[RingSeries]:
        name = f"staleness/{site}/{origin}"
        return self.store[name] if name in self.store else None


# -- report rendering ---------------------------------------------------------

_REPORT_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("distance_", "Policy-vs-usage distance"),
    ("staleness/", "Usage staleness (seconds behind origin)"),
    ("divergence", "Cross-site divergence"),
    # fleet-collector series (repro.obs.collector / report --grid)
    ("fleet/", "Fleet gauges"),
    ("staleness_max/", "Worst remote staleness per site"),
    ("qps/", "Serve throughput per site"),
    ("frame_backlog/", "Exchange frame backlog per link (bytes)"),
    ("up/", "Daemon liveness"),
)


def _fmt(value: float) -> str:
    if value == 0.0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3e}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def render_report(store: SeriesStore, title: str = "Aequus fairness report",
                  ) -> str:
    """Render a :class:`SeriesStore` as a markdown report.

    One table per known section (distance, staleness, divergence) plus a
    catch-all for anything else, each row a series with last/mean/max and
    the sample count (lifetime appends, not just what the ring retains).
    """
    lines = [f"# {title}", ""]
    remaining = list(store.names())
    if not remaining:
        lines.append("_no samples recorded_")
        return "\n".join(lines) + "\n"
    span = [math.inf, -math.inf]
    for name in remaining:
        series = store[name]
        if len(series):
            span[0] = min(span[0], series.times()[0])
            span[1] = max(span[1], series.times()[-1])
    if span[0] <= span[1]:
        lines.append(f"Window: t={_fmt(span[0])} .. t={_fmt(span[1])} "
                     "(virtual seconds, ring-bounded)")
        lines.append("")

    def emit(section_title: str, names: List[str]) -> None:
        if not names:
            return
        lines.append(f"## {section_title}")
        lines.append("")
        lines.append("| series | last | mean | max | samples |")
        lines.append("|---|---|---|---|---|")
        for name in names:
            series = store[name]
            if not len(series):
                continue
            last = series.last()
            lines.append(
                f"| {name} | {_fmt(last[1])} | {_fmt(series.mean())} "
                f"| {_fmt(series.max())} | {series.appended} |")
        lines.append("")

    for prefix, section_title in _REPORT_SECTIONS:
        matched = [n for n in remaining if n.startswith(prefix)]
        remaining = [n for n in remaining if not n.startswith(prefix)]
        emit(section_title, matched)
    emit("Other series", remaining)
    return "\n".join(lines).rstrip() + "\n"


# -- live-daemon reports ------------------------------------------------------

def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse Prometheus text exposition into ``(name, labels, value)`` rows.

    Handles exactly the subset :mod:`repro.obs.export` emits (no escapes
    beyond ``\\\\``/``\\"``/``\\n`` in label values, no exemplars); comment
    and blank lines are skipped, unparsable lines ignored.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            head, value_text = line.rsplit(" ", 1)
            value = float(value_text)
            labels: Dict[str, str] = {}
            if head.endswith("}") and "{" in head:
                name, _, label_text = head.partition("{")
                body = label_text[:-1]
                if "\\" not in body:
                    # fast path: no escapes means no quotes inside values,
                    # so '",' can only separate labels (the hot case — a
                    # fleet scrape parses thousands of lines per second)
                    for part in body.split('",'):
                        if not part:
                            continue
                        key, _, val = part.partition('="')
                        if val.endswith('"'):
                            val = val[:-1]
                        labels[key] = val
                else:
                    while body:
                        key, _, rest = body.partition('="')
                        out: List[str] = []
                        i = 0
                        while i < len(rest):
                            ch = rest[i]
                            if ch == "\\" and i + 1 < len(rest):
                                out.append({"n": "\n"}.get(rest[i + 1],
                                                           rest[i + 1]))
                                i += 2
                                continue
                            if ch == '"':
                                break
                            out.append(ch)
                            i += 1
                        labels[key] = "".join(out)
                        body = rest[i + 1:].lstrip(",")
            else:
                name = head
            samples.append((name, labels, value))
        except ValueError:
            continue
    return samples


def _histogram_stats(samples: List[Tuple[str, Dict[str, str], float]],
                     family: str, label: str,
                     ) -> Dict[str, Dict[str, float]]:
    """Per-``label``-value count/mean/p99 of one histogram family."""
    stats: Dict[str, Dict[str, float]] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    for name, labels, value in samples:
        key = labels.get(label)
        if key is None:
            continue
        if name == f"{family}_count":
            stats.setdefault(key, {})["count"] = value
        elif name == f"{family}_sum":
            stats.setdefault(key, {})["sum"] = value
        elif name == f"{family}_bucket":
            le = labels.get("le", "+Inf")
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append((bound, value))
    for key, entry in stats.items():
        count = entry.get("count", 0.0)
        entry["mean"] = entry.get("sum", 0.0) / count if count else 0.0
        bs = sorted(buckets.get(key, []))
        entry["p99"] = next(
            (bound for bound, cum in bs if count and cum >= 0.99 * count),
            math.inf if bs else 0.0)
    return stats


def report_from_daemon(info: Mapping[str, Any], metrics_text: str) -> str:
    """Render a live report from aequusd's INFO payload + METRICS text.

    Same shape as :func:`render_report` but sourced from the running
    daemon: current per-origin horizons/staleness from INFO (tentpole 1's
    causal chain), lifetime staleness distribution from the
    ``aequus_snapshot_staleness_seconds`` histogram.
    """
    site = info.get("site", "?")
    lines = [f"# Aequus fairness report — site {site}", ""]
    lines.append(f"Virtual time: {_fmt(float(info.get('time', 0.0)))}; "
                 f"refresh interval {_fmt(float(info.get('refresh_interval', 0.0)))}s")
    lines.append("")
    horizons = info.get("usage_horizons") or {}
    lines.append("## Usage horizons (current snapshot)")
    lines.append("")
    if horizons:
        lines.append("| origin | horizon | staleness |")
        lines.append("|---|---|---|")
        for origin in sorted(horizons):
            entry = horizons[origin]
            lines.append(f"| {origin} | {_fmt(float(entry['horizon']))} "
                         f"| {_fmt(float(entry['staleness']))} |")
    else:
        lines.append("_no per-origin horizons in the current snapshot_")
    lines.append("")
    samples = parse_exposition(metrics_text)
    dist = _histogram_stats(samples, "aequus_snapshot_staleness_seconds",
                            "origin")
    lines.append("## Snapshot staleness distribution (lifetime)")
    lines.append("")
    if dist:
        lines.append("| origin | observations | mean | p99 (bucket) |")
        lines.append("|---|---|---|---|")
        for origin in sorted(dist):
            entry = dist[origin]
            p99 = "inf" if math.isinf(entry["p99"]) else _fmt(entry["p99"])
            lines.append(f"| {origin} | {int(entry['count'])} "
                         f"| {_fmt(entry['mean'])} | {p99} |")
    else:
        lines.append("_no staleness observations exported yet_")
    lines.append("")
    return "\n".join(lines).rstrip() + "\n"
