"""Lightweight span tracing for the Aequus stack (DESIGN.md §9).

Usage::

    from repro.obs import trace

    with trace.span("fcs.refresh", site="a"):
        with trace.span("fcs.rollup"):
            ...

Spans nest per thread (a thread-local stack carries the parent id), land
in a bounded in-memory ring buffer as Chrome ``trace_event`` "complete"
(``ph: "X"``) records, and export either as JSONL (one event object per
line, for grep/jq pipelines) or as a Chrome-loadable JSON document
(``{"traceEvents": [...]}`` — open in ``chrome://tracing`` / Perfetto for
a flame view).

Clock semantics match the registry (dual clocks): the ``ts`` timestamp
comes from the tracer's clock (wall by default; pass the sim engine's
clock to stamp spans in virtual time), while ``dur`` is always measured
with ``time.perf_counter`` — in a discrete-event simulation a refresh
takes zero *simulated* time but real milliseconds, and the flame view
exists to show the latter.  Every span also records the raw ``args`` it
was opened with, plus its ``id``/``parent`` so nesting survives even when
virtual timestamps collapse onto one instant.

A disabled tracer's :meth:`Tracer.span` costs one attribute check and
yields ``None``; the ring buffer bounds memory no matter how long a
simulation runs (``dropped`` counts what fell off the front).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Union

from .registry import default_enabled

__all__ = ["Tracer", "span", "default_tracer", "set_default_tracer"]


class Tracer:
    """Bounded in-memory span recorder (Chrome ``trace_event`` schema)."""

    def __init__(self, capacity: int = 8192,
                 clock: Optional[Callable[[], float]] = None,
                 enabled: Optional[bool] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock if clock is not None else time.time
        self.enabled = default_enabled() if enabled is None else bool(enabled)
        self._events: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.started = 0
        self.recorded = 0

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Optional[Dict[str, Any]]]:
        """Record one span; yields the (mutable) args dict, or None when
        disabled — ``with`` bodies may add result fields to it."""
        if not self.enabled:
            yield None
            return
        self.started += 1
        span_id = next(self._ids)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1] if stack else 0
        stack.append(span_id)
        ts = self.clock()
        t0 = time.perf_counter()
        try:
            yield args
        finally:
            dur = time.perf_counter() - t0
            stack.pop()
            args["id"] = span_id
            if parent:
                args["parent"] = parent
            event = {
                "name": name,
                "ph": "X",
                "ts": ts * 1e6,          # trace_event timestamps are µs
                "dur": dur * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
            self._events.append(event)
            self.recorded += 1

    # -- introspection ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans pushed off the ring buffer's front by newer ones."""
        return self.recorded - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events, oldest first (a copy; safe to mutate)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    # -- export -------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one ``trace_event`` object per line; returns event count.

        The stream form is greppable and append-friendly; wrap the lines
        in ``[...]`` (or use :meth:`export_chrome`) for a file Chrome's
        trace viewer loads directly.
        """
        events = self.events()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                return self.export_jsonl(fh)
        for event in events:
            target.write(json.dumps(event, separators=(",", ":")) + "\n")
        return len(events)

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace viewer's JSON object form."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome(self, target: Union[str, IO[str]]) -> int:
        """Write a Chrome-loadable trace document; returns event count."""
        doc = self.chrome_trace()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        else:
            json.dump(doc, target)
        return len(doc["traceEvents"])


_default_tracer = Tracer()


def default_tracer() -> Tracer:
    """The process-default tracer the service instrumentation records to."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-default tracer (tests, per-run capture); returns
    the previous one so callers can restore it."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **args: Any):
    """``with trace.span("uss.exchange", site=...):`` on the default tracer."""
    return _default_tracer.span(name, **args)
