"""Lightweight span tracing for the Aequus stack (DESIGN.md §9).

Usage::

    from repro.obs import trace

    with trace.span("fcs.refresh", site="a"):
        with trace.span("fcs.rollup"):
            ...

Spans nest per thread (a thread-local stack carries the parent id), land
in a bounded in-memory ring buffer as Chrome ``trace_event`` "complete"
(``ph: "X"``) records, and export either as JSONL (one event object per
line, for grep/jq pipelines) or as a Chrome-loadable JSON document
(``{"traceEvents": [...]}`` — open in ``chrome://tracing`` / Perfetto for
a flame view).

Clock semantics match the registry (dual clocks): the ``ts`` timestamp
comes from the tracer's clock (wall by default; pass the sim engine's
clock to stamp spans in virtual time), while ``dur`` is always measured
with ``time.perf_counter`` — in a discrete-event simulation a refresh
takes zero *simulated* time but real milliseconds, and the flame view
exists to show the latter.  Every span also records the raw ``args`` it
was opened with, plus its ``id``/``parent`` so nesting survives even when
virtual timestamps collapse onto one instant.

A disabled tracer's :meth:`Tracer.span` costs one attribute check and
yields ``None``; the ring buffer bounds memory no matter how long a
simulation runs (``dropped`` counts what fell off the front).  Collectors
pull events with :meth:`Tracer.drain` — an exactly-once handoff that
empties the ring without counting the drained events as dropped — and a
tracer bound to a metrics registry (:meth:`Tracer.bind_registry`) exports
the drop count as ``aequus_trace_dropped_total``.
"""

from __future__ import annotations

import fcntl
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Union

from .registry import default_enabled

__all__ = ["Tracer", "TraceSpool", "span", "default_tracer",
           "set_default_tracer"]


class Tracer:
    """Bounded in-memory span recorder (Chrome ``trace_event`` schema)."""

    def __init__(self, capacity: int = 8192,
                 clock: Optional[Callable[[], float]] = None,
                 enabled: Optional[bool] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock if clock is not None else time.time
        self.enabled = default_enabled() if enabled is None else bool(enabled)
        self._events: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.started = 0
        self.recorded = 0
        self._evicted = 0
        self._dropped_counter = None  # optional registry-bound counter

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Optional[Dict[str, Any]]]:
        """Record one span; yields the (mutable) args dict, or None when
        disabled — ``with`` bodies may add result fields to it."""
        if not self.enabled:
            yield None
            return
        self.started += 1
        span_id = next(self._ids)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1] if stack else 0
        stack.append(span_id)
        ts = self.clock()
        t0 = time.perf_counter()
        try:
            yield args
        finally:
            dur = time.perf_counter() - t0
            stack.pop()
            args["id"] = span_id
            if parent:
                args["parent"] = parent
            event = {
                "name": name,
                "ph": "X",
                "ts": ts * 1e6,          # trace_event timestamps are µs
                "dur": dur * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
            if len(self._events) == self.capacity:
                self._evicted += 1
                if self._dropped_counter is not None:
                    self._dropped_counter.inc()
            self._events.append(event)
            self.recorded += 1

    # -- introspection ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans pushed off the ring buffer's front by newer ones.

        Counts only ring evictions — events handed out via :meth:`drain`
        (or discarded with :meth:`clear`) were not *lost* and do not
        count.
        """
        return self._evicted

    def events(self) -> List[Dict[str, Any]]:
        """The buffered events, oldest first (a copy; safe to mutate)."""
        return list(self._events)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return all buffered events, oldest first.

        The exactly-once handoff the TRACE_EXPORT op is built on: each
        recorded event appears in exactly one drain, and drained events
        are not counted as ``dropped``.
        """
        events = []
        while True:
            try:
                events.append(self._events.popleft())
            except IndexError:
                return events

    def clear(self) -> None:
        self._events.clear()

    def bind_registry(self, registry) -> None:
        """Export the drop count as ``aequus_trace_dropped_total``.

        Pre-creates the (unlabeled) family so the zero-valued counter
        renders in METRICS scrapes before any span is ever evicted, and
        folds in evictions that happened before binding.  Idempotent per
        registry (``_family`` is get-or-create); rebinding to another
        registry simply redirects future increments.
        """
        counter = registry.counter(
            "aequus_trace_dropped_total",
            "Spans evicted from the tracer ring buffer before export",
        ).labels()
        if self._evicted:
            counter.set(self._evicted)
        self._dropped_counter = counter

    # -- export -------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one ``trace_event`` object per line; returns event count.

        The stream form is greppable and append-friendly; wrap the lines
        in ``[...]`` (or use :meth:`export_chrome`) for a file Chrome's
        trace viewer loads directly.
        """
        events = self.events()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                return self.export_jsonl(fh)
        for event in events:
            target.write(json.dumps(event, separators=(",", ":")) + "\n")
        return len(events)

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace viewer's JSON object form."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome(self, target: Union[str, IO[str]]) -> int:
        """Write a Chrome-loadable trace document; returns event count."""
        doc = self.chrome_trace()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        else:
            json.dump(doc, target)
        return len(doc["traceEvents"])


class TraceSpool:
    """Flock-guarded JSONL handoff of drained spans between processes.

    The sharded serve plane's TRACE_EXPORT path: the daemon parent (whose
    tracer the services record into) periodically drains its ring into the
    spool file from the tick loop; whichever worker process happens to
    receive a TRACE_EXPORT request drains the spool under the same lock.
    ``flock`` serializes appenders and drainers, so every event reaches
    exactly one export reply no matter which worker answers — and workers
    never export their forked (pre-fork, stale) tracer copies.
    """

    def __init__(self, path: str):
        self.path = path

    def append(self, events: List[Dict[str, Any]]) -> int:
        """Append events as JSON lines (one exclusive lock per batch)."""
        if not events:
            return 0
        lines = "".join(json.dumps(event, separators=(",", ":")) + "\n"
                        for event in events)
        with open(self.path, "a", encoding="utf-8") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            fh.write(lines)
            fh.flush()
        return len(events)

    def drain(self) -> List[Dict[str, Any]]:
        """Read all spooled events and truncate, atomically vs. appenders."""
        try:
            fh = open(self.path, "r+", encoding="utf-8")
        except FileNotFoundError:
            return []
        with fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            events = []
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    continue  # a torn line must not poison the export
            fh.seek(0)
            fh.truncate()
        return events

    def unlink(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


_default_tracer = Tracer()


def default_tracer() -> Tracer:
    """The process-default tracer the service instrumentation records to."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-default tracer (tests, per-run capture); returns
    the previous one so callers can restore it."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **args: Any):
    """``with trace.span("uss.exchange", site=...):`` on the default tracer."""
    return _default_tracer.span(name, **args)
