"""Fleet telemetry collector for multi-daemon grids (DESIGN.md §14).

Every observability surface below this module is per-process: a daemon's
METRICS scrape, INFO reply, and tracer ring describe one site.  The
:class:`FleetCollector` is the fleet-level view the grid harness and the
``aequus-repro top`` / ``report --grid`` CLIs are built on.  It dials
every daemon with the ordinary serve-plane client (front door only — it
observes exactly what an operator could) and on each scrape interval:

* scrapes **METRICS**, parsing the Prometheus exposition and re-rendering
  the merged families under a ``site`` label (:meth:`render_merged`);
* reads **INFO** for the per-origin usage horizons the snapshot serves;
* drains **TRACE_EXPORT** — each daemon's span ring, exactly once — and
  merges the events into one fleet-wide Chrome trace, aligning each
  process's wall-clock span timestamps onto the shared ``virtual_epoch``
  timeline the grid booted with (daemon replies carry their own epoch, so
  a fleet of mixed boots still lines up);
* derives fleet gauges into a :class:`~repro.obs.timeseries.SeriesStore`
  stamped by the collector's virtual-epoch clock: max cross-site snapshot
  staleness, per-link frame backlog (bytes sent by the origin minus bytes
  the destination has received), fleet aggregate QPS, and the cross-site
  spread of the incremental-refresh dirty fraction.

Harness fault events (partition/heal/kill/restart) are injected into the
merged trace as Chrome instant events via :meth:`note_event`, so a
staleness ramp in the series lines up with the cut that caused it in the
flame view.  Everything snapshots to JSONL/CSV (:meth:`snapshot`).
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import (Any, Callable, Dict, IO, List, Mapping, Optional,
                    Tuple, Union)

from .evaluate import parse_exposition
from .timeseries import SeriesStore

__all__ = ["FleetCollector", "bucket_quantile", "merge_exposition"]

#: histogram family the staleness percentiles in ``top`` come from
_STALENESS_FAMILY = "aequus_snapshot_staleness_seconds"


def bucket_quantile(buckets: List[Tuple[float, float]], count: float,
                    q: float) -> float:
    """Upper-bound quantile from cumulative histogram buckets.

    Returns the smallest bucket bound whose cumulative count covers the
    ``q`` quantile (the standard Prometheus approximation, biased up to
    one bucket wide), ``inf`` when only the +Inf bucket covers it, and
    0.0 with no observations.
    """
    if not count or not buckets:
        return 0.0
    target = q * count
    for bound, cumulative in sorted(buckets):
        if cumulative >= target:
            return bound
    return math.inf


def merge_exposition(per_site: Mapping[str, List[Tuple[str, Dict[str, str],
                                                       float]]]) -> str:
    """Re-render parsed per-site samples as one exposition with a
    ``site`` label forced onto every sample (overriding the daemon's own
    constant label of the same name, which it equals anyway)."""
    lines: List[str] = []
    for site in sorted(per_site):
        for name, labels, value in per_site[site]:
            labels = dict(labels, site=site)
            body = ",".join(
                '%s="%s"' % (key, str(val).replace("\\", "\\\\")
                             .replace('"', '\\"').replace("\n", "\\n"))
                for key, val in sorted(labels.items()))
            lines.append(f"{name}{{{body}}} {value!r}")
    return "\n".join(lines) + ("\n" if lines else "")


class FleetCollector:
    """Periodic fleet scraper: metrics + horizons + traces from N daemons.

    ``targets`` maps site name to ``(host, port)`` of that daemon's serve
    plane.  Scraping runs on a background thread (:meth:`start` /
    :meth:`stop`) or under test control via :meth:`scrape_once`.  All
    read surfaces (:meth:`table`, :meth:`chrome_trace`,
    :meth:`render_merged`, the series store) are safe to call from other
    threads: scrape results are swapped in wholesale.
    """

    def __init__(self, targets: Mapping[str, Tuple[str, int]],
                 interval: float = 1.0,
                 virtual_epoch: Optional[float] = None,
                 store: Optional[SeriesStore] = None,
                 timeout: float = 5.0,
                 max_events: int = 200_000,
                 client_factory: Optional[Callable[[str, int], Any]] = None):
        self.targets = dict(targets)
        self.interval = interval
        self.virtual_epoch = virtual_epoch
        self.timeout = timeout
        self.max_events = max_events
        if client_factory is None:
            from ..serve.client import SyncAequusClient

            def client_factory(host: str, port: int) -> Any:
                return SyncAequusClient(host, port, timeout=self.timeout,
                                        retries=1)
        self._client_factory = client_factory
        #: fleet series, stamped by the virtual-epoch clock (monotone by
        #: construction even across daemons booted at different times)
        self.store = store if store is not None else SeriesStore(
            clock=self.now)
        self.scrapes = 0
        self.scrape_errors = 0
        #: merged Chrome trace events (bounded; oldest dropped first)
        self._events: List[Dict[str, Any]] = []
        self._events_dropped = 0
        self._fault_events: List[Dict[str, Any]] = []
        self._meta_emitted: set = set()
        self._clients: Dict[str, Any] = {}
        self._metrics: Dict[str, List[Tuple[str, Dict[str, str], float]]] = {}
        self._info: Dict[str, Dict[str, Any]] = {}
        self._up: Dict[str, bool] = {}
        #: (site, family) -> (cumulative value, fleet time) for rates
        self._last_counter: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._rates: Dict[str, Dict[str, float]] = {}
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # -- clocks ---------------------------------------------------------------

    def now(self) -> float:
        """The fleet timeline: seconds since the shared virtual epoch
        (plain wall time when no epoch is configured)."""
        if self.virtual_epoch is not None:
            return time.time() - self.virtual_epoch
        return time.time()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FleetCollector":
        if self._thread is not None:
            return self
        self._stopping.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="aequus-collector", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(self.timeout + 5.0)
            self._thread = None
        for site in list(self._clients):
            self._drop_client(site)

    def __enter__(self) -> "FleetCollector":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stopping.is_set():
            started = time.monotonic()
            self.scrape_once()
            elapsed = time.monotonic() - started
            self._stopping.wait(max(0.0, self.interval - elapsed))

    # -- clients --------------------------------------------------------------

    def _client(self, site: str) -> Any:
        client = self._clients.get(site)
        if client is None:
            host, port = self.targets[site]
            client = self._client_factory(host, port)
            self._clients[site] = client
        return client

    def _drop_client(self, site: str) -> None:
        client = self._clients.pop(site, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # -- scraping -------------------------------------------------------------

    def scrape_once(self) -> None:
        """One synchronous pass over every target daemon."""
        t = self.now()
        for site in self.targets:
            try:
                client = self._client(site)
                samples = parse_exposition(client.metrics())
                info = client.info().get("info", {})
                export = client.trace_export()
            except Exception:
                self.scrape_errors += 1
                self._up[site] = False
                self._drop_client(site)
                self.store.sample(f"up/{site}", t, 0.0)
                continue
            self._up[site] = True
            self._metrics[site] = samples
            self._info[site] = info
            self.store.sample(f"up/{site}", t, 1.0)
            self._merge_events(site, export)
            self._site_series(site, samples, info, t)
        self._fleet_series(t)
        self.scrapes += 1

    def _merge_events(self, site: str, export: Mapping[str, Any]) -> None:
        """Align one daemon's drained spans onto the fleet timeline."""
        events = export.get("events") or []
        if not events:
            return
        epoch = export.get("virtual_epoch")
        if epoch is None:
            epoch = self.virtual_epoch
        shift = (epoch or 0.0) * 1e6  # span ts are wall-clock µs
        with self._lock:
            for event in events:
                event["ts"] = event.get("ts", 0.0) - shift
                args = event.setdefault("args", {})
                args.setdefault("site", site)
                pid = event.get("pid", 0)
                if (site, pid) not in self._meta_emitted:
                    self._meta_emitted.add((site, pid))
                    self._events.append({
                        "name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0,
                        "args": {"name": f"aequusd {site} [{pid}]"}})
                self._events.append(event)
            overflow = len(self._events) - self.max_events
            if overflow > 0:
                del self._events[:overflow]
                self._events_dropped += overflow

    def _family_sum(self, samples: List[Tuple[str, Dict[str, str], float]],
                    family: str,
                    match: Optional[Dict[str, str]] = None) -> float:
        total = 0.0
        for name, labels, value in samples:
            if name != family:
                continue
            if match and any(labels.get(k) != v for k, v in match.items()):
                continue
            total += value
        return total

    def _rate(self, site: str, family: str, value: float,
              t: float) -> float:
        """Per-second rate of one cumulative counter, clamped at zero
        (a daemon restart resets its counters)."""
        key = (site, family)
        last = self._last_counter.get(key)
        self._last_counter[key] = (value, t)
        if last is None:
            return 0.0
        last_value, last_t = last
        dt = t - last_t
        if dt <= 0.0 or value < last_value:
            return 0.0
        return (value - last_value) / dt

    def _site_series(self, site: str,
                     samples: List[Tuple[str, Dict[str, str], float]],
                     info: Mapping[str, Any], t: float) -> None:
        qps = self._rate(site, "aequus_requests_total",
                         self._family_sum(samples, "aequus_requests_total"),
                         t)
        frames = self._rate(
            site, "aequus_grid_frames_total",
            self._family_sum(samples, "aequus_grid_frames_total",
                             {"direction": "out"}), t)
        self._rates[site] = {"qps": qps, "frames_out": frames}
        self.store.sample(f"qps/{site}", t, qps)
        if frames or f"frames_out/{site}" in self.store:
            self.store.sample(f"frames_out/{site}", t, frames)
        horizons = info.get("usage_horizons") or {}
        remote = [float(entry.get("staleness", 0.0))
                  for origin, entry in horizons.items() if origin != site]
        if remote:
            self.store.sample(f"staleness_max/{site}", t, max(remote))

    def _fleet_series(self, t: float) -> None:
        worst = 0.0
        qps = 0.0
        dirty: List[float] = []
        for site, up in self._up.items():
            if not up:
                continue
            rates = self._rates.get(site) or {}
            qps += rates.get("qps", 0.0)
            series_name = f"staleness_max/{site}"
            if series_name in self.store:
                last = self.store[series_name].last()
                if last is not None:
                    worst = max(worst, last[1])
            samples = self._metrics.get(site) or []
            for name, _labels, value in samples:
                if name == "aequus_refresh_dirty_fraction":
                    dirty.append(value)
        self.store.sample("fleet/max_staleness", t, worst)
        self.store.sample("fleet/qps", t, qps)
        if dirty:
            self.store.sample("fleet/dirty_fraction_spread", t,
                              max(dirty) - min(dirty))
        self._backlog_series(t)

    def _backlog_series(self, t: float) -> None:
        """Per-directed-link frame backlog: bytes the origin has framed
        toward a peer minus bytes that peer has received from it."""
        for src in self.targets:
            if not self._up.get(src):
                continue
            out = self._metrics.get(src) or []
            for dst in self.targets:
                if dst == src or not self._up.get(dst):
                    continue
                sent = self._family_sum(
                    out, "aequus_grid_peer_bytes_total",
                    {"peer": f"uss:{dst}", "direction": "out"})
                received = self._family_sum(
                    self._metrics.get(dst) or [],
                    "aequus_grid_peer_bytes_total",
                    {"peer": f"uss:{src}", "direction": "in"})
                if sent or received:
                    self.store.sample(f"frame_backlog/{src}->{dst}", t,
                                      max(0.0, sent - received))

    # -- fault-event annotation ----------------------------------------------

    def note_event(self, name: str, **args: Any) -> None:
        """Inject a harness fault event as a Chrome instant event (global
        scope) at the current fleet time."""
        event = {"name": name, "ph": "i", "s": "g",
                 "ts": self.now() * 1e6, "pid": 0, "tid": 0,
                 "args": dict(args)}
        with self._lock:
            self._fault_events.append(event)

    # -- read surfaces --------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events) + list(self._fault_events)

    def chrome_trace(self) -> Dict[str, Any]:
        """The merged fleet trace in Chrome trace-viewer object form."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome(self, target: Union[str, IO[str]]) -> int:
        doc = self.chrome_trace()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        else:
            json.dump(doc, target)
        return len(doc["traceEvents"])

    def render_merged(self) -> str:
        """Last-scrape Prometheus exposition of every site, site-labeled."""
        return merge_exposition(self._metrics)

    def snapshot(self, basename: str) -> Dict[str, str]:
        """Write ``<basename>.jsonl``/``.csv`` (series) and
        ``<basename>.trace.json`` (merged Chrome trace)."""
        paths = {"jsonl": basename + ".jsonl", "csv": basename + ".csv",
                 "trace": basename + ".trace.json"}
        self.store.to_jsonl(paths["jsonl"])
        self.store.to_csv(paths["csv"])
        self.export_chrome(paths["trace"])
        return paths

    def table(self) -> List[Dict[str, Any]]:
        """One row per site for ``aequus-repro top``."""
        rows: List[Dict[str, Any]] = []
        for site in sorted(self.targets):
            row: Dict[str, Any] = {"site": site,
                                   "up": bool(self._up.get(site))}
            rates = self._rates.get(site) or {}
            row["qps"] = rates.get("qps", 0.0)
            row["frames_out"] = rates.get("frames_out", 0.0)
            samples = self._metrics.get(site) or []
            row["reconnects"] = self._family_sum(
                samples, "aequus_grid_reconnects_total")
            row["trace_dropped"] = self._family_sum(
                samples, "aequus_trace_dropped_total")
            compiles: Dict[str, float] = {}
            by_bound: Dict[float, float] = {}
            count = 0.0
            for name, labels, value in samples:
                if name == "aequus_compile_total":
                    kind = labels.get("kind", "?")
                    compiles[kind] = compiles.get(kind, 0.0) + value
                elif name == _STALENESS_FAMILY + "_bucket":
                    le = labels.get("le", "+Inf")
                    bound = math.inf if le == "+Inf" else float(le)
                    # the histogram is per-origin: fold every origin's
                    # cumulative count into one bucket set per bound
                    by_bound[bound] = by_bound.get(bound, 0.0) + value
                elif name == _STALENESS_FAMILY + "_count":
                    count += value
            row["compiles"] = compiles
            buckets = sorted(by_bound.items())
            row["staleness_p50"] = bucket_quantile(buckets, count, 0.50)
            row["staleness_p99"] = bucket_quantile(buckets, count, 0.99)
            name = f"staleness_max/{site}"
            last = self.store[name].last() if name in self.store else None
            row["staleness_now"] = last[1] if last else 0.0
            rows.append(row)
        return rows
