"""The factor-smoothing experiment (paper Section IV-A prose).

"Complementary tests with other factors in addition to fairshare have been
performed, and show that other factors have a smoothing effect (with impact
relative to their weight) on the fluctuating behavior natural to
fairshare."

We rerun the baseline scenario with different multifactor weight mixes and
track, per user, the *combined job priority* a scheduler would assign (a
probe job per user, aged from the start of the run).  Fluctuation is the
mean absolute sample-to-sample change of that series after the age factor
saturates; the expectation is fluctuation proportional to the fairshare
weight's fraction of the total weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rms.job import Job
from ..rms.priority import FactorWeights
from ..workload.reference import GRID_IDENTITIES, build_testbed_trace
from .common import TestbedConfig, build_testbed

__all__ = ["SmoothingRun", "smoothing_experiment"]


@dataclass
class SmoothingRun:
    label: str
    weights: FactorWeights
    fluctuation: Dict[str, float]

    @property
    def fairshare_weight_fraction(self) -> float:
        return self.weights.fairshare / self.weights.total

    @property
    def mean_fluctuation(self) -> float:
        return sum(self.fluctuation.values()) / max(1, len(self.fluctuation))

    def row(self) -> str:
        per_user = "  ".join(f"{u.rsplit('=', 1)[-1]}={f:.4f}"
                             for u, f in sorted(self.fluctuation.items()))
        return (f"{self.label:<26} fs-weight={self.fairshare_weight_fraction:.2f}  "
                f"mean fluct={self.mean_fluctuation:.4f}  [{per_user}]")


def _run_one(label: str, weights: FactorWeights, n_jobs: int, span: float,
             n_sites: int, hosts_per_site: int, seed: int) -> SmoothingRun:
    config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                           hosts_per_site=hosts_per_site, weights=weights)
    testbed = build_testbed(config)
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=0.95, seed=seed)
    testbed.host.schedule_trace(trace)

    # one pending probe job per user per scheduler, submitted conceptually
    # at t=0; its combined priority is what the queue sorting would use
    sched = testbed.schedulers[0]
    mapper = testbed.host.mapper
    probes = {}
    for name, dn in GRID_IDENTITIES.items():
        system_user = mapper.system_user(dn, sched.name)
        probes[dn] = Job(system_user=system_user, duration=60.0,
                         submit_time=0.0)
    series: Dict[str, List[float]] = {dn: [] for dn in probes}
    max_age = sched.multifactor.max_age

    def sample() -> None:
        for dn, probe in probes.items():
            series[dn].append(sched.compute_priority(probe, testbed.engine.now))

    testbed.engine.periodic(config.sample_interval, sample,
                            start_offset=config.sample_interval)
    testbed.engine.run_until(span)
    testbed.stop()

    # Fluctuation = mean absolute *detrended* sample-to-sample change of
    # the combined priority.  The age factor contributes a deterministic
    # ramp until it saturates at max_age: when the run is long enough the
    # post-saturation tail is used directly (the ramp is over there); short
    # runs fall back to median-detrending, which removes the constant ramp
    # step.  Either way the measured quantity is the stochastic
    # fairshare-induced movement the paper's smoothing claim is about.
    import numpy as np

    skip = int(max_age / config.sample_interval) + 1
    fluct = {}
    for dn, values in series.items():
        if len(values) - skip >= 10:
            arr = np.asarray(values[skip:], dtype=float)
        else:
            arr = np.asarray(values[1:], dtype=float)
        if arr.size < 3:
            fluct[dn] = 0.0
            continue
        diffs = np.diff(arr)
        fluct[dn] = float(np.mean(np.abs(diffs - np.median(diffs))))
    return SmoothingRun(label=label, weights=weights, fluctuation=fluct)


def smoothing_experiment(n_jobs: int = 6000, span: float = 7200.0,
                         n_sites: int = 2, hosts_per_site: int = 20,
                         seed: int = 3,
                         mixes: Optional[List[FactorWeights]] = None
                         ) -> List[SmoothingRun]:
    """Fairshare-only vs blends with the age (and QoS) factors."""
    mixes = mixes or [
        FactorWeights(fairshare=1.0),
        FactorWeights(fairshare=1.0, age=1.0),
        FactorWeights(fairshare=1.0, age=3.0),
    ]
    runs = []
    for weights in mixes:
        label = (f"fairshare={weights.fairshare:g}"
                 + (f", age={weights.age:g}" if weights.age else "")
                 + (f", qos={weights.qos:g}" if weights.qos else ""))
        runs.append(_run_one(label, weights, n_jobs, span, n_sites,
                             hosts_per_site, seed))
    return runs
