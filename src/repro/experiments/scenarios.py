"""The five integrated-system evaluation scenarios (paper Section IV-A).

Each function builds the matching workload and test-bed configuration and
returns a :class:`ScenarioResult` (plus scenario-specific extras).  The
benchmarks print the resulting series/rows next to the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Optional

from ..services.site import ParticipationMode, SiteConfig
from ..workload.reference import (
    BURSTY_USAGE_SHARES,
    GRID_IDENTITIES,
    USAGE_SHARES,
    build_testbed_trace,
)
from ..workload.trace import Trace
from .common import ScenarioResult, TestbedConfig, run_scenario

__all__ = [
    "baseline",
    "update_delay",
    "non_optimal_policy",
    "partial_participation",
    "bursty",
    "UpdateDelayComparison",
    "PartialParticipationResult",
]

#: Section IV-A.3: "a target policy of 70% for U65, 20% for U30, 8% for U3
#: and 2% for Uoth" — deliberately misaligned with the workload's actual
#: usage (65.25/30.49/2.86/1.40).
NON_OPTIMAL_TARGETS: Dict[str, float] = {
    GRID_IDENTITIES["U65"]: 0.70,
    GRID_IDENTITIES["U30"]: 0.20,
    GRID_IDENTITIES["U3"]: 0.08,
    GRID_IDENTITIES["Uoth"]: 0.02,
}


def _default_config(span: float = 21_600.0, seed: int = 0,
                    **overrides) -> TestbedConfig:
    config = TestbedConfig(span=span, seed=seed)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def baseline(n_jobs: int = 43_200, span: float = 21_600.0,
             seed: int = 0, n_sites: int = 6, hosts_per_site: int = 40,
             load: float = 0.95) -> ScenarioResult:
    """The baseline convergence test (Figure 10a).

    Six clusters, 240 virtual hosts, six hours, 43,200 jobs at 95% load;
    fairshare-only scheduling with the percental projection; policy targets
    equal to the workload's actual usage shares.  Expectation: cumulative
    usage shares and per-user priorities converge toward the targets, with
    total utilization between 93% and 97%.
    """
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed)
    config = _default_config(span=span, seed=seed, n_sites=n_sites,
                             hosts_per_site=hosts_per_site)
    return run_scenario("baseline", trace, config)


@dataclass
class UpdateDelayComparison:
    """Figure 11: time-scaled run vs baseline.

    Scaling the test up 10x in time while keeping all update/cache delays
    the same absolute length makes the delays *relatively* 10x shorter; the
    paper measures a 10%–15% shorter convergence time (as a fraction of the
    test length), eliminating update delay as a major error source at the
    compressed scale.
    """

    baseline: ScenarioResult
    scaled: ScenarioResult
    time_scale: float

    # Convergence is measured on the *decayed* usage-share deviation — the
    # quantity the fairshare loop directly controls.  The cumulative-share
    # convergence point is dominated by late workload noise (it swings tens
    # of percent between otherwise identical runs), while the decayed
    # signal isolates the delay effect cleanly.

    @property
    def baseline_fraction(self) -> Optional[float]:
        if self.baseline.decayed_convergence_seconds is None:
            return None
        return self.baseline.decayed_convergence_seconds / self.baseline.config.span

    @property
    def scaled_fraction(self) -> Optional[float]:
        if self.scaled.decayed_convergence_seconds is None:
            return None
        return self.scaled.decayed_convergence_seconds / self.scaled.config.span

    @property
    def improvement(self) -> Optional[float]:
        """Relative reduction in normalized convergence time."""
        b, s = self.baseline_fraction, self.scaled_fraction
        if b is None or s is None or b == 0:
            return None
        return (b - s) / b


def update_delay(n_jobs: int = 43_200, span: float = 21_600.0,
                 time_scale: float = 10.0, seed: int = 0,
                 n_sites: int = 6, hosts_per_site: int = 40,
                 load: float = 0.95,
                 baseline_result: Optional[ScenarioResult] = None) -> UpdateDelayComparison:
    """The update-delay impact test (Section IV-A.2).

    "We scaled the baseline test case up ten times, adjusting the arrival
    times and job durations while keeping the same number of jobs and same
    internal relations."  Delays (service refreshes, caches, report delay,
    re-prioritization interval) stay the same in absolute seconds.
    """
    base = baseline_result if baseline_result is not None else baseline(
        n_jobs=n_jobs, span=span, seed=seed, n_sites=n_sites,
        hosts_per_site=hosts_per_site, load=load)
    scaled_span = span * time_scale
    trace = build_testbed_trace(n_jobs=n_jobs, span=scaled_span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed)
    config = _default_config(span=scaled_span, seed=seed, n_sites=n_sites,
                             hosts_per_site=hosts_per_site)
    # Delay sources I-IV (reporting delay, service caches, libaequus cache,
    # re-prioritization interval) keep their ABSOLUTE durations — that is
    # the point of the experiment.  Everything that belongs to the workload
    # or the algorithm configuration scales with time: the sampling grid
    # (same relative resolution) and the usage-decay half-life (part of the
    # fairshare parameterization, not an update delay).
    config.sample_interval *= time_scale
    config.site_config.decay_half_life *= time_scale
    scaled = run_scenario("update_delay", trace, config)
    return UpdateDelayComparison(baseline=base, scaled=scaled,
                                 time_scale=time_scale)


def non_optimal_policy(n_jobs: int = 43_200, span: float = 21_600.0,
                       seed: int = 0, n_sites: int = 6,
                       hosts_per_site: int = 40,
                       load: float = 0.95) -> ScenarioResult:
    """The non-optimal policy test (Section IV-A.3, Figure 12).

    Same workload as the baseline, but the policy targets
    (70/20/8/2) do not match the trace's usage mix.  Expectations: the
    system approaches balance mid-run while U65 jobs are plentiful, loses
    it when U65 submissions dry up between phases, converges again when
    U65's next phase arrives, and keeps running U30 jobs at low priority to
    preserve utilization.
    """
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed)
    config = _default_config(span=span, seed=seed, n_sites=n_sites,
                             hosts_per_site=hosts_per_site,
                             policy_targets=dict(NON_OPTIMAL_TARGETS))
    return run_scenario("non_optimal_policy", trace, config,
                        convergence_threshold=0.04)


@dataclass
class PartialParticipationResult:
    """Section IV-A.4 observables."""

    result: ScenarioResult
    read_only_site: str
    local_only_site: str
    full_sites: list

    def priority_alignment(self, identity: str, site: str) -> float:
        """Mean absolute priority gap between ``site`` and the full sites."""
        metrics = self.result.metrics
        site_series = metrics[f"priority/{site}/{identity}"]
        gaps = []
        for i, t in enumerate(site_series.times):
            ref = [metrics[f"priority/{s}/{identity}"].at(t)
                   for s in self.full_sites]
            gaps.append(abs(site_series.values[i] - sum(ref) / len(ref)))
        return sum(gaps) / len(gaps) if gaps else 0.0

    def fluctuation(self, identity: str, site: str) -> float:
        """Mean absolute sample-to-sample priority change at ``site``."""
        series = self.result.metrics[f"priority/{site}/{identity}"]
        values = series.values
        if len(values) < 2:
            return 0.0
        diffs = [abs(values[i + 1] - values[i]) for i in range(len(values) - 1)]
        return sum(diffs) / len(diffs)


def partial_participation(n_jobs: int = 43_200, span: float = 21_600.0,
                          seed: int = 0, n_sites: int = 6,
                          hosts_per_site: int = 40,
                          load: float = 0.95) -> PartialParticipationResult:
    """The partial-participation test (Section IV-A.4).

    One of six sites only *reads* global usage data but does not contribute
    (READ_ONLY); another contributes but only considers local data for
    prioritization (LOCAL_ONLY).  Expectations: the read-only site's
    priorities stay well aligned with fully participating sites; the
    local-only site converges toward the same levels but slower and with
    more fluctuation; the global prioritization is not noticeably affected.
    """
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed)
    config = _default_config(span=span, seed=seed, n_sites=n_sites,
                             hosts_per_site=hosts_per_site)
    names = config.site_names()
    read_only, local_only = names[0], names[1]
    config.participation = {
        read_only: ParticipationMode.READ_ONLY,
        local_only: ParticipationMode.LOCAL_ONLY,
    }
    result = run_scenario("partial_participation", trace, config)
    return PartialParticipationResult(
        result=result, read_only_site=read_only, local_only_site=local_only,
        full_sites=names[2:])


def bursty(n_jobs: int = 43_200, span: float = 21_600.0,
           seed: int = 0, n_sites: int = 6, hosts_per_site: int = 40,
           load: float = 0.95) -> ScenarioResult:
    """The bursty usage test (Section IV-A.5, Figure 13).

    U3's submission rate boosted to 45.5% of jobs (deducted from U65) and
    its burst shifted to start after one third of the run.  Usage shares
    become 47/38.5/12/2.5%.  Expectations: balance is approached before the
    burst (U3's unused allocation divided among the others); when the burst
    lands, the system readjusts toward the target shares; with k = 0.5,
    U3's priority is bounded by 0.5*(1 + 0.12) = 0.56.
    """
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed, bursty=True)
    targets = {GRID_IDENTITIES[u]: s for u, s in BURSTY_USAGE_SHARES.items()}
    config = _default_config(span=span, seed=seed, n_sites=n_sites,
                             hosts_per_site=hosts_per_site,
                             policy_targets=targets)
    return run_scenario("bursty", trace, config, convergence_threshold=0.04)
