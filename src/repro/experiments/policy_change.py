"""Run-time policy change adaptation (paper Section II-A).

"Previous work has shown the stability of the algorithm and its ability to
isolate subgroups and adapt to events such as changing policies during
run-time."  The PDS supports replacing the policy while the system runs;
the FCS picks the new tree up on its next refresh and priorities re-steer
scheduling toward the new targets with no restart.

The experiment runs the baseline workload, swaps the policy mid-run (U65's
and U30's entitlements are exchanged), and measures:

* the priority *crossover*: U30 — suddenly underserved against its new
  large target — must out-prioritize U65 right after the switch;
* re-convergence: the decayed usage shares move toward the new targets in
  the second half (to the extent the fixed workload mix allows).

A second driver exercises *dynamic sub-policy mounting* on the live grid:
a remotely administered VO subtree is mounted into every site's policy
mid-run, and the new users start being prioritized without any restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.policy import PolicyTree
from ..sim.metrics import share_deviation
from ..workload.reference import GRID_IDENTITIES, USAGE_SHARES, build_testbed_trace
from .common import LEAF_FOR_IDENTITY, TestbedConfig, Testbed, build_testbed

__all__ = ["PolicyChangeResult", "runtime_policy_change", "runtime_mount"]


@dataclass
class PolicyChangeResult:
    switch_time: float
    span: float
    #: per-user FCS priority just before / just after the switch settles
    priorities_before: Dict[str, float]
    priorities_after: Dict[str, float]
    #: decayed-share deviation vs the NEW targets, sampled over time
    deviation_times: List[float]
    deviation_values: List[float]
    #: decayed usage shares per user at the switch and at the end
    shares_at_switch: Dict[str, float]
    shares_at_end: Dict[str, float]
    jobs_completed: int

    def deviation_at_switch(self) -> float:
        return next(v for t, v in zip(self.deviation_times, self.deviation_values)
                    if t >= self.switch_time)

    def final_deviation(self) -> float:
        return self.deviation_values[-1]

    def rows(self) -> List[str]:
        rows = [f"policy switched at {self.switch_time / 60:.0f} min "
                f"of {self.span / 60:.0f}"]
        for user in sorted(self.priorities_before):
            rows.append(f"  {user:<5} priority {self.priorities_before[user]:.3f}"
                        f" -> {self.priorities_after[user]:.3f}")
        for user in sorted(self.shares_at_switch):
            rows.append(
                f"  {user:<5} decayed share {self.shares_at_switch[user]:.3f}"
                f" -> {self.shares_at_end[user]:.3f}")
        rows.append(f"deviation vs new targets: {self.deviation_at_switch():.3f}"
                    f" at switch -> {self.final_deviation():.3f} at end")
        return rows


def _swapped_targets() -> Dict[str, float]:
    targets = {GRID_IDENTITIES[u]: s for u, s in USAGE_SHARES.items()}
    u65, u30 = GRID_IDENTITIES["U65"], GRID_IDENTITIES["U30"]
    targets[u65], targets[u30] = targets[u30], targets[u65]
    return targets


def _policy_for(targets: Dict[str, float]) -> PolicyTree:
    tree = PolicyTree()
    for identity, share in targets.items():
        tree.set_share(f"/{LEAF_FOR_IDENTITY[identity]}", share)
    return tree


def runtime_policy_change(n_jobs: int = 6000, span: float = 7200.0,
                          n_sites: int = 2, hosts_per_site: int = 20,
                          seed: int = 3,
                          load: float = 1.25) -> PolicyChangeResult:
    """Swap U65's and U30's entitlements halfway through a baseline run.

    The workload is over-subscribed (default 125% of capacity): priorities
    only move usage shares when the schedulers face a backlog and must
    choose — at the paper's 95% load every job runs eventually and the
    share response to a policy change is invisible.
    """
    config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                           hosts_per_site=hosts_per_site)
    testbed = build_testbed(config)
    trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                total_cores=n_sites * hosts_per_site,
                                load=load, seed=seed)
    testbed.host.schedule_trace(trace)

    switch_time = span / 2.0
    new_targets = _swapped_targets()

    testbed.engine.run_until(switch_time)
    priorities_before = {u: testbed.sites[0].fcs.priority(dn)
                         for u, dn in GRID_IDENTITIES.items()}
    for site in testbed.sites:
        # run-time policy replacement through the PDS, per site admin
        site.pds.set_policy(_policy_for(new_targets))
    # let one FCS refresh cycle pass so the new tree is in effect
    settle = config.site_config.fcs_refresh_interval + \
        config.site_config.ums_refresh_interval + 1.0
    testbed.engine.run_until(switch_time + settle)
    priorities_after = {u: testbed.sites[0].fcs.priority(dn)
                        for u, dn in GRID_IDENTITIES.items()}
    testbed.engine.run_until(span)

    # deviation vs the new targets, over the whole run (pre-switch samples
    # show how far from the new policy the system was)
    dev_t, dev_v = [], []
    series = {dn: testbed.metrics[f"decayed_share/{dn}"]
              for dn in new_targets}
    times = next(iter(series.values())).times
    for i, t in enumerate(times):
        shares = {dn: s.values[i] for dn, s in series.items()}
        dev_t.append(t)
        dev_v.append(share_deviation(shares, new_targets))
    reverse = {dn: u for u, dn in GRID_IDENTITIES.items()}
    shares_at_switch = {reverse[dn]: s.at(switch_time)
                        for dn, s in series.items()}
    shares_at_end = {reverse[dn]: s.values[-1] for dn, s in series.items()}
    completed = sum(s.jobs_completed for s in testbed.schedulers)
    testbed.stop()
    return PolicyChangeResult(
        switch_time=switch_time, span=span,
        priorities_before=priorities_before,
        priorities_after=priorities_after,
        deviation_times=dev_t, deviation_values=dev_v,
        shares_at_switch=shares_at_switch,
        shares_at_end=shares_at_end,
        jobs_completed=completed,
    )


def runtime_mount(span: float = 1800.0, seed: int = 3) -> Dict[str, float]:
    """Mount a remote VO sub-policy into a live site and watch it take.

    Returns the FCS values for the newly mounted users after one refresh —
    present and ordered by their mounted weights, without any restart.
    """
    config = TestbedConfig(span=span, seed=seed, n_sites=1, hosts_per_site=4)
    testbed = build_testbed(config)
    testbed.engine.run_until(span / 3)
    site = testbed.sites[0]
    vo_policy = PolicyTree.from_dict({"climate": 3, "physics": 1})
    site.pds.policy().set_share("/VO", 0.5)
    site.pds.policy().mount("/VO", vo_policy, source="vo-pds")
    settle = config.site_config.fcs_refresh_interval + 1.0
    testbed.engine.run_until(span / 3 + settle)
    values = {path: value for path, value in site.fcs.values().items()
              if path.startswith("/VO/")}
    testbed.stop()
    return values
