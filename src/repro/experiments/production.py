"""Production-deployment experiment (paper Section IV, opening).

Aequus ran alongside SLURM 2.4.3 at HPC2N on a 68-node cluster with dual
quad-core Xeons (544 cores) from the start of 2013, executing about 40,000
jobs per month: "the system has shown to be stable and the transition from
using local fairshare to global fairshare as performed by Aequus has had no
noticeable impact on the performance or the stability of the cluster."

We reproduce the measurable half of that claim: a single production-scale
cluster driven for simulated months through the full Aequus stack, checking

* throughput holds at the expected jobs/month level,
* no user starves (every user keeps completing jobs in every period),
* fairshare priorities stay within bounds and keep responding to usage, and
* switching from local fairshare to Aequus changes per-user shares only
  marginally (the "no noticeable impact" claim), since the local policy
  equals the global one for a single site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..client.libaequus import LibAequus
from ..core.policy import PolicyTree
from ..rms.cluster import Cluster
from ..rms.plugins import LocalFairsharePlugin
from ..rms.priority import FactorWeights
from ..rms.slurm import SlurmScheduler
from ..services.network import Network
from ..services.site import AequusSite, SiteConfig
from ..sim.engine import SimulationEngine
from ..sim.metrics import MetricsRecorder
from ..workload.reference import GRID_IDENTITIES, USAGE_SHARES, build_production_trace
from ..workload.trace import Trace

__all__ = ["ProductionResult", "run_production", "run_production_comparison"]

DAY = 86400.0
MONTH = 30.0 * DAY


@dataclass
class ProductionResult:
    months: float
    jobs_submitted: int
    jobs_completed: int
    jobs_per_month: float
    mean_utilization: float
    per_user_shares: Dict[str, float]
    monthly_completions: List[Dict[str, int]]
    priority_bounds: Dict[str, tuple]

    def starvation_free(self) -> bool:
        """Every user completes jobs in every month of the run."""
        return all(all(count > 0 for count in month.values())
                   for month in self.monthly_completions)

    def summary_rows(self) -> List[str]:
        rows = [
            f"{self.months:.0f} months simulated on 544 cores",
            f"jobs/month: {self.jobs_per_month:.0f} (paper: ~40,000)",
            f"mean utilization: {self.mean_utilization:.1%}",
            f"starvation-free: {self.starvation_free()}",
        ]
        for user, (lo, hi) in sorted(self.priority_bounds.items()):
            rows.append(f"  {user}: priority range [{lo:.3f}, {hi:.3f}]")
        return rows


def _build_single_site(engine: SimulationEngine, use_aequus: bool,
                       n_nodes: int = 68, cores_per_node: int = 8):
    """One production cluster, either Aequus-integrated or local-fairshare."""
    network = Network(engine, base_latency=0.05)
    policy = PolicyTree()
    for user, share in USAGE_SHARES.items():
        policy.set_share(f"/{user}", share)
    config = SiteConfig(
        histogram_interval=3600.0,
        uss_exchange_interval=600.0,
        ums_refresh_interval=600.0,
        fcs_refresh_interval=600.0,
        libaequus_cache_ttl=120.0,
        decay_half_life=7 * DAY,
    )
    site = AequusSite("hpc2n", engine, network, policy=policy, config=config)
    for user, dn in GRID_IDENTITIES.items():
        site.fcs.register_identity(dn, user)
        site.irs.store_mapping(f"sys_{user.lower()}", dn)
    cluster = Cluster("hpc2n", n_nodes=n_nodes, cores_per_node=cores_per_node)
    sched = SlurmScheduler("hpc2n", engine, cluster,
                           weights=FactorWeights(fairshare=1.0),
                           sched_interval=30.0,
                           reprioritize_interval=300.0)
    if use_aequus:
        lib = LibAequus.for_site(site)
        sched.integrate_aequus(lib)
    else:
        local = LocalFairsharePlugin(
            shares={f"sys_{u.lower()}": s for u, s in USAGE_SHARES.items()},
            half_life=7 * DAY)
        sched.register_priority_plugin(local)
        sched.register_completion_plugin(local)
    return site, sched


def _submit(trace: Trace, sched: SlurmScheduler, engine: SimulationEngine) -> None:
    from ..rms.job import Job

    identity_to_user = {dn: f"sys_{u.lower()}" for u, dn in GRID_IDENTITIES.items()}
    for tj in trace:
        user = identity_to_user.get(tj.user, tj.user)
        engine.schedule_at(tj.submit, lambda tj=tj, user=user: sched.submit(
            Job(system_user=user, duration=tj.duration, cores=tj.cores)))


def run_production(months: float = 3.0, seed: int = 0,
                   use_aequus: bool = True,
                   jobs_per_month: int = 40_000) -> ProductionResult:
    """Run the production-scale stability experiment."""
    engine = SimulationEngine()
    site, sched = _build_single_site(engine, use_aequus=use_aequus)
    trace = build_production_trace(months=months, seed=seed,
                                   jobs_per_month=jobs_per_month)
    _submit(trace, sched, engine)
    span = months * MONTH
    metrics = MetricsRecorder()

    n_months = max(1, int(months + 0.999))
    monthly: List[Dict[str, int]] = [dict() for _ in range(n_months)]
    reverse = {f"sys_{u.lower()}": GRID_IDENTITIES[u] for u in USAGE_SHARES}

    def on_complete(job, now):
        month = min(int(now // MONTH), len(monthly) - 1)
        identity = reverse.get(job.system_user, job.system_user)
        monthly[month][identity] = monthly[month].get(identity, 0) + 1

    sched.add_completion_hook(on_complete)

    prio_bounds: Dict[str, List[float]] = {u: [1.0, 0.0] for u in USAGE_SHARES}

    def sample():
        for user in USAGE_SHARES:
            p = site.fcs.priority(GRID_IDENTITIES[user])
            prio_bounds[user][0] = min(prio_bounds[user][0], p)
            prio_bounds[user][1] = max(prio_bounds[user][1], p)

    engine.periodic(3600.0, sample, start_offset=3600.0)
    engine.run_until(span)

    usage: Dict[str, float] = {}
    for job in sched.completed:
        identity = reverse.get(job.system_user, job.system_user)
        usage[identity] = usage.get(identity, 0.0) + job.charge
    total = sum(usage.values()) or 1.0
    shares = {u: usage.get(GRID_IDENTITIES[u], 0.0) / total
              for u in USAGE_SHARES}
    site.stop()
    sched.stop()
    return ProductionResult(
        months=months,
        jobs_submitted=sched.jobs_submitted,
        jobs_completed=sched.jobs_completed,
        jobs_per_month=sched.jobs_completed / months,
        mean_utilization=sched.cluster.utilization(engine.now),
        per_user_shares=shares,
        monthly_completions=monthly,
        priority_bounds={u: (lo, hi) for u, (lo, hi) in prio_bounds.items()},
    )


def run_production_comparison(months: float = 2.0, seed: int = 0,
                              jobs_per_month: int = 40_000) -> Dict[str, ProductionResult]:
    """Local-fairshare vs Aequus on the same workload.

    The transition claim: moving from local to global fairshare on a single
    cluster should have "no noticeable impact" — per-user shares and
    throughput must agree closely (for one site, the global view *is* the
    local view, modulo update delays).
    """
    return {
        "local": run_production(months=months, seed=seed, use_aequus=False,
                                jobs_per_month=jobs_per_month),
        "aequus": run_production(months=months, seed=seed, use_aequus=True,
                                 jobs_per_month=jobs_per_month),
    }
