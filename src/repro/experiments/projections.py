"""Table I regeneration: empirical probes of the projection properties.

The paper states that projecting a fairshare vector to a single float
cannot retain all vector properties, and tabulates which each algorithm
keeps (Table I): infinite depth, infinite precision, subgroup isolation,
proportionality, and combinability.  Rather than restating the table, we
*probe* each property with constructed vector families and report the
observed matrix.

Probe definitions (a property "holds" if every constructed case passes):

depth
    Vectors differing only at a deep level (beyond the bitwise bit budget)
    must still project to different values in the right order.
precision
    Vectors differing by a tiny amount at the top level must project to
    different values in the right order.
isolation
    Changing the balance of an entity in one subgroup must not reorder the
    projected values of users in a *different* subgroup.
proportional
    The projected values must preserve the relative magnitude of vector
    differences: for equally spaced top-level balances the projected
    values must be (close to) equally spaced.
combinable
    The projected value must lie in [0, 1] so schedulers can combine it
    linearly with other factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

import numpy as np

from ..core.distance import FairshareParameters
from ..core.fairshare import FairshareTree, compute_fairshare_tree
from ..core.policy import PolicyTree
from ..core.projection import (
    BitwiseVectorProjection,
    DictionaryOrderingProjection,
    PercentalProjection,
    Projection,
)
from ..core.usage import UsageTree
from ..core.vector import FairshareVector

__all__ = ["ProjectionProbeResult", "probe_projection", "regenerate_table1",
           "PAPER_TABLE1"]

#: Paper Table I as published ("✓"/"✗") — the vector row is the reference.
PAPER_TABLE1: Dict[str, Dict[str, bool]] = {
    "vectors": {"depth": True, "precision": True, "isolation": True,
                "proportional": True, "combinable": False},
    "dictionary": {"depth": True, "precision": True, "isolation": True,
                   "proportional": False, "combinable": True},
    "bitwise": {"depth": False, "precision": False, "isolation": True,
                "proportional": True, "combinable": True},
    "percental": {"depth": True, "precision": True, "isolation": False,
                  "proportional": True, "combinable": True},
}


@dataclass
class ProjectionProbeResult:
    name: str
    properties: Dict[str, bool]

    def render(self) -> str:
        marks = "  ".join(
            f"{prop}={'Y' if ok else 'n'}" for prop, ok in self.properties.items())
        return f"{self.name:<12} {marks}"


def _vector_projector(projection: Projection) -> Callable[[Mapping[str, FairshareVector]], Dict[str, float]]:
    if hasattr(projection, "project_vectors"):
        return projection.project_vectors  # type: ignore[return-value]
    raise TypeError(f"{projection} does not project raw vectors")


# ---------------------------------------------------------------------------
# probes on raw vectors (dictionary / bitwise)
# ---------------------------------------------------------------------------

def _probe_depth_vectors(project) -> bool:
    """A difference at depth 7 (beyond the bitwise bit budget) must survive."""
    base = [0.8, 0.5, 0.5, 0.5, 0.5, 0.5]
    a = FairshareVector.from_scores(base + [0.9])
    b = FairshareVector.from_scores(base + [0.1])
    values = project({"a": a, "b": b})
    return values["a"] > values["b"]


def _probe_precision_vectors(project) -> bool:
    """Tiny (1e-7) top-level differences must survive at several offsets.

    Multiple base points keep a quantizing projection from passing by luck
    of landing on a bucket boundary.
    """
    for base in (0.47, 0.212, 0.681, 0.9033):
        a = FairshareVector.from_scores([base + 5e-8])
        b = FairshareVector.from_scores([base - 5e-8])
        values = project({"a": a, "b": b})
        if not values["a"] > values["b"]:
            return False
    return True


def _probe_isolation_vectors(project) -> bool:
    """Perturbing group g2 must not reorder users inside group g1."""
    g1_u1 = [0.6, 0.7]
    g1_u2 = [0.6, 0.3]
    before = project({
        "g1/u1": FairshareVector.from_scores(g1_u1),
        "g1/u2": FairshareVector.from_scores(g1_u2),
        "g2/u3": FairshareVector.from_scores([0.4, 0.9]),
    })
    after = project({
        "g1/u1": FairshareVector.from_scores(g1_u1),
        "g1/u2": FairshareVector.from_scores(g1_u2),
        "g2/u3": FairshareVector.from_scores([0.4, 0.05]),
    })
    return (before["g1/u1"] > before["g1/u2"]) and (after["g1/u1"] > after["g1/u2"])


def _probe_proportional_vectors(project) -> bool:
    """Unequal balance gaps must be reflected proportionally.

    Input balances 0.1/0.2/0.8 have a 6:1 gap ratio; a proportional
    projection reproduces it (within quantization), a rank-based one
    flattens it to 1:1 ("the resulting fairshare number correctly indicates
    the sorting order, but the relative difference is lost").
    """
    scores = [0.1, 0.2, 0.8]
    vectors = {f"u{i}": FairshareVector.from_scores([s])
               for i, s in enumerate(scores)}
    values = project(vectors)
    small = values["u1"] - values["u0"]
    large = values["u2"] - values["u1"]
    if small <= 0 or large <= 0:
        return False
    ratio = large / small
    return 4.0 < ratio < 8.0  # true ratio 6


def _probe_combinable_vectors(project) -> bool:
    vectors = {f"u{i}": FairshareVector.from_scores([s, 1 - s])
               for i, s in enumerate([0.0, 0.3, 0.5, 0.9, 1.0])}
    values = project(vectors)
    return all(0.0 <= v <= 1.0 for v in values.values())


# ---------------------------------------------------------------------------
# probes through full trees (percental needs total shares)
# ---------------------------------------------------------------------------

def _two_group_tree(u3_usage: float) -> FairshareTree:
    """Two projects with two users each; g2's internal balance is varied."""
    policy = PolicyTree.from_dict({
        "g1": (1, {"u1": 1, "u2": 1}),
        "g2": (1, {"u3": 1, "u4": 1}),
    })
    usage = UsageTree()
    usage.set_usage("/g1/u1", 10.0)
    usage.set_usage("/g1/u2", 40.0)
    usage.set_usage("/g2/u3", u3_usage)
    usage.set_usage("/g2/u4", 50.0)
    usage.roll_up()
    return compute_fairshare_tree(policy, usage=usage)


def _probe_isolation_tree(projection: Projection) -> bool:
    """Two sub-checks of top-down subgroup isolation.

    (a) Perturbing group g2's internal balance must not reorder g1's users.
    (b) Top-down enforcement: when group A is overserved at the top level,
        *all* of A's users must rank below an underserved group B's user,
        however starved they are within A.  The fairshare vectors order
        this lexicographically; percental's total-share products let the
        deep within-group imbalance outweigh the top-level one.
    """
    before = projection.project(_two_group_tree(u3_usage=5.0))
    after = projection.project(_two_group_tree(u3_usage=400.0))
    stable = (before["/g1/u1"] > before["/g1/u2"]) == \
             (after["/g1/u1"] > after["/g1/u2"])

    policy = PolicyTree.from_dict({
        "A": (1, {"a_big": 9, "a_small": 1}),
        "B": (1, {"b_user": 1}),
    })
    usage = UsageTree()
    # A consumed 70% of the system (overserved); within A, the 90%-entitled
    # a_big consumed almost nothing.  B consumed 30% (underserved).
    usage.set_usage("/A/a_big", 1.0)
    usage.set_usage("/A/a_small", 69.0)
    usage.set_usage("/B/b_user", 30.0)
    usage.roll_up()
    tree = compute_fairshare_tree(policy, usage=usage)
    values = projection.project(tree)
    # top-down enforcement: underserved group B's user must outrank both
    top_down = values["/B/b_user"] > values["/A/a_big"]
    return stable and top_down


def _flat_tree(scores: List[float]) -> FairshareTree:
    """Flat tree with equal targets and usage tuned for given balances."""
    policy = PolicyTree.from_dict({f"u{i}": 1 for i in range(len(scores))})
    # balance score b = k*(0.5 + (s-u)/2) + (1-k)*s/(s+u); invert numerically
    usage = UsageTree()
    n = len(scores)
    s = 1.0 / n
    for i, b in enumerate(scores):
        lo, hi = 0.0, 1e6
        for _ in range(80):
            mid = (lo + hi) / 2
            from ..core.distance import balance_score
            if balance_score(s, mid) > b:
                lo = mid
            else:
                hi = mid
        usage.set_usage(f"/u{i}", (lo + hi) / 2)
    usage.roll_up()
    return compute_fairshare_tree(policy, usage=usage)


def _probe_depth_tree(projection: Projection) -> bool:
    """A deep hierarchy: differences at level 5 must survive."""
    deep: Dict = {"lvl": (1, {"a": (1, {"b": (1, {"c": (1, {"ua": 1, "ub": 1})})})})}
    policy = PolicyTree.from_dict(deep)
    usage = UsageTree()
    usage.set_usage("/lvl/a/b/c/ua", 10.0)
    usage.set_usage("/lvl/a/b/c/ub", 90.0)
    usage.roll_up()
    tree = compute_fairshare_tree(policy, usage=usage)
    values = projection.project(tree)
    return values["/lvl/a/b/c/ua"] > values["/lvl/a/b/c/ub"]


def _probe_precision_tree(projection: Projection) -> bool:
    policy = PolicyTree.from_dict({"u1": 1, "u2": 1})
    usage = UsageTree()
    usage.set_usage("/u1", 100.0)
    usage.set_usage("/u2", 100.0 * (1 + 1e-9))
    usage.roll_up()
    tree = compute_fairshare_tree(policy, usage=usage)
    values = projection.project(tree)
    return values["/u1"] > values["/u2"]


def _probe_proportional_tree(projection: Projection) -> bool:
    """Unequal usage gaps must be reflected proportionally in the values."""
    policy = PolicyTree.from_dict({f"u{i}": 1 for i in range(3)})
    usage = UsageTree()
    # usage shares 0.6/0.3/0.1: target-usage diffs -0.267/0.033/0.233,
    # so value gaps have ratio (0.233-0.033)/(0.033+0.267) = 2/3
    for i, u in enumerate([0.6, 0.3, 0.1]):
        usage.set_usage(f"/u{i}", u)
    usage.roll_up()
    tree = compute_fairshare_tree(policy, usage=usage)
    values = projection.project(tree)
    gap_01 = values["/u1"] - values["/u0"]
    gap_12 = values["/u2"] - values["/u1"]
    if gap_01 <= 0 or gap_12 <= 0:
        return False
    ratio = gap_12 / gap_01
    return 0.55 < ratio < 0.80  # true ratio 2/3


def _probe_combinable_tree(projection: Projection) -> bool:
    tree = _two_group_tree(u3_usage=5.0)
    values = projection.project(tree)
    return all(0.0 <= v <= 1.0 for v in values.values())


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------

def probe_projection(name: str) -> ProjectionProbeResult:
    """Run all five property probes against one projection algorithm."""
    if name == "dictionary":
        projection = DictionaryOrderingProjection()
        project = _vector_projector(projection)
        return ProjectionProbeResult(name, {
            "depth": _probe_depth_vectors(project),
            "precision": _probe_precision_vectors(project),
            "isolation": _probe_isolation_vectors(project)
            and _probe_isolation_tree(projection),
            "proportional": _probe_proportional_vectors(project),
            "combinable": _probe_combinable_vectors(project),
        })
    if name == "bitwise":
        projection = BitwiseVectorProjection(bits_per_level=10)
        project = _vector_projector(projection)
        return ProjectionProbeResult(name, {
            "depth": _probe_depth_vectors(project),
            "precision": _probe_precision_vectors(project),
            "isolation": _probe_isolation_vectors(project)
            and _probe_isolation_tree(projection),
            "proportional": _probe_proportional_vectors(project),
            "combinable": _probe_combinable_vectors(project),
        })
    if name == "percental":
        projection = PercentalProjection()
        return ProjectionProbeResult(name, {
            "depth": _probe_depth_tree(projection),
            "precision": _probe_precision_tree(projection),
            "isolation": _probe_isolation_tree(projection),
            "proportional": _probe_proportional_tree(projection),
            "combinable": _probe_combinable_tree(projection),
        })
    if name == "vectors":
        # raw vectors: compare directly (no projection); combinable fails by
        # definition (a vector is not a float in [0, 1])
        return ProjectionProbeResult(name, {
            "depth": FairshareVector.from_scores([0.5, 0.5, 0.5, 0.5, 0.9])
            > FairshareVector.from_scores([0.5, 0.5, 0.5, 0.5, 0.1]),
            "precision": FairshareVector.from_scores([0.5 + 5e-8])
            > FairshareVector.from_scores([0.5 - 5e-8]),
            "isolation": True,   # per-level comparison is isolated by construction
            "proportional": True,  # elements are linear in the balance score
            "combinable": False,
        })
    raise ValueError(f"unknown projection {name!r}")


def regenerate_table1() -> List[ProjectionProbeResult]:
    """All rows of the probed Table I (vectors + three projections)."""
    return [probe_projection(name)
            for name in ("vectors", "dictionary", "bitwise", "percental")]
