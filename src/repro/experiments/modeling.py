"""Workload-characterization experiments: Tables II & III, Figures 4–7.

These drivers run the paper's full modeling pipeline over the reference
trace (the documented stand-in for the 2012 national accounting data):
clean → categorize users → detect U65's phases → fit the 18-family zoo per
data set → select by BIC → validate by KS — then emit rows/series mirroring
the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from ..workload.analysis import (
    UserCategories,
    categorize_users,
    clean_trace,
    detect_phases,
)
from ..workload.composite import CompositeDistribution
from ..workload.fitting import FitResult, best_fit, whole_second_median
from ..workload.reference import (
    CATEGORIES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    generate_reference_trace,
)
from ..workload.trace import Trace

__all__ = [
    "ModelingDataset",
    "prepare_dataset",
    "Table2Row",
    "regenerate_table2",
    "Table3Row",
    "regenerate_table3",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
]

DAY = 86400.0


@dataclass
class ModelingDataset:
    """A cleaned, categorized reference trace ready for fitting."""

    raw: Trace
    clean: Trace
    categories: UserCategories
    labeled: Trace
    u65_phases: List[Tuple[float, float]]
    removed_job_fraction: float
    removed_usage_fraction: float

    def phase_times(self, phase: int) -> np.ndarray:
        """U65 arrival times inside one detected phase (0-based)."""
        lo, hi = self.u65_phases[phase]
        times = self.labeled.arrival_times("U65")
        return times[(times >= lo) & (times < hi)]


def prepare_dataset(n_jobs: int = 60_000, seed: int = 0) -> ModelingDataset:
    """Generate, clean, categorize, and phase-split the reference trace."""
    raw = generate_reference_trace(n_jobs=n_jobs, seed=seed)
    clean, report = clean_trace(raw)
    categories = categorize_users(clean)
    labeled = categories.relabel(clean)
    phases = detect_phases(labeled.arrival_times("U65"), n_phases=4)
    return ModelingDataset(
        raw=raw, clean=clean, categories=categories, labeled=labeled,
        u65_phases=phases,
        removed_job_fraction=report.removed_job_fraction,
        removed_usage_fraction=report.removed_usage_fraction,
    )


# ---------------------------------------------------------------------------
# Table II — job arrival
# ---------------------------------------------------------------------------

@dataclass
class Table2Row:
    """One row of the regenerated Table II."""

    label: str
    median_s: float
    fit: Optional[FitResult]
    composite_ks: Optional[float] = None
    paper: Dict = field(default_factory=dict)

    @property
    def family(self) -> str:
        if self.fit is not None:
            return self.fit.family_name
        return "composite"

    @property
    def ks(self) -> float:
        if self.composite_ks is not None:
            return self.composite_ks
        return self.fit.ks if self.fit is not None else float("nan")

    def render(self) -> str:
        desc = (self.fit.fitted.describe() if self.fit is not None
                else "composite (Eq. 1)")
        paper_med = self.paper.get("median")
        paper_ks = self.paper.get("ks")
        paper_fam = self.paper.get("family")
        return (f"{self.label:<10} median={self.median_s:>8.0f}s "
                f"{desc:<55} KS={self.ks:.2f}   "
                f"[paper: {paper_fam}, median={paper_med}s, KS={paper_ks}]")


def regenerate_table2(dataset: ModelingDataset,
                      subsample: int = 8_000,
                      families: Optional[Sequence[str]] = None,
                      seed: int = 0) -> List[Table2Row]:
    """Fit arrival-time models per user/phase — the regenerated Table II.

    U65 gets one fit per detected phase plus the weighted composite
    (Equation 1, whose KS should beat any single phase); the other users a
    single best-BIC fit.  Medians are whole-second inter-arrival medians,
    the paper's metric.
    """
    rng = np.random.default_rng(seed)
    rows: List[Table2Row] = []
    u65_times = dataset.labeled.arrival_times("U65")
    phase_fits: List[FitResult] = []
    weights: List[float] = []
    for p in range(len(dataset.u65_phases)):
        times = dataset.phase_times(p)
        lo, hi = dataset.u65_phases[p]
        inter = np.diff(np.sort(times))
        fit = best_fit(times, families=families, subsample=subsample, rng=rng)
        phase_fits.append(fit)
        weights.append(times.size / max(1, u65_times.size))
        rows.append(Table2Row(
            label=f"U65 (p{p + 1})",
            median_s=whole_second_median(inter),
            fit=fit,
            paper=PAPER_TABLE2.get(f"U65 (p{p + 1})", {}),
        ))
    composite = CompositeDistribution(
        [(w, f.fitted) for w, f in zip(weights, phase_fits)])
    comp_ks = float(_scipy_stats.kstest(u65_times,
                                        lambda x: composite.cdf(x)).statistic)
    rows.append(Table2Row(
        label="U65",
        median_s=whole_second_median(dataset.labeled.inter_arrival_times("U65")),
        fit=None,
        composite_ks=comp_ks,
        paper=PAPER_TABLE2.get("U65", {}),
    ))
    for user in ("U30", "U3", "Uoth"):
        times = dataset.labeled.arrival_times(user)
        fit = best_fit(times, families=families, subsample=subsample, rng=rng)
        rows.append(Table2Row(
            label=user,
            median_s=whole_second_median(dataset.labeled.inter_arrival_times(user)),
            fit=fit,
            paper=PAPER_TABLE2.get(user, {}),
        ))
    return rows


# ---------------------------------------------------------------------------
# Table III — job duration
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    label: str
    median_s: float
    fit: FitResult
    paper: Dict = field(default_factory=dict)

    def render(self) -> str:
        paper_fam = self.paper.get("family")
        paper_ks = self.paper.get("ks")
        return (f"{self.label:<6} median={self.median_s:>9.0f}s "
                f"{self.fit.fitted.describe():<50} KS={self.fit.ks:.2f}   "
                f"[paper: {paper_fam}, KS={paper_ks}]")


def regenerate_table3(dataset: ModelingDataset,
                      subsample: int = 8_000,
                      families: Optional[Sequence[str]] = None,
                      seed: int = 0) -> List[Table3Row]:
    """Fit job-duration models per user — the regenerated Table III."""
    rng = np.random.default_rng(seed)
    rows: List[Table3Row] = []
    for user in CATEGORIES:
        durations = dataset.labeled.durations(user)
        fit = best_fit(durations, families=families, subsample=subsample, rng=rng)
        rows.append(Table3Row(
            label=user,
            median_s=whole_second_median(durations),
            fit=fit,
            paper=PAPER_TABLE3.get(user, {}),
        ))
    return rows


# ---------------------------------------------------------------------------
# Figures 4–7
# ---------------------------------------------------------------------------

def figure4_series(dataset: ModelingDataset,
                   bin_size: float = DAY) -> Dict[str, np.ndarray]:
    """Figure 4: job arrivals per day, total and U65-only.

    The claim: the total arrival pattern is dominated by U65 (81.03% of all
    jobs), so the two series track each other.
    """
    edges, total = dataset.labeled.arrival_histogram(bin_size)
    _, u65 = dataset.labeled.arrival_histogram(bin_size, user="U65")
    return {"bin_edges": edges, "total": total, "u65": u65}


def figure5_series(dataset: ModelingDataset,
                   table2: Optional[List[Table2Row]] = None,
                   bin_size: float = DAY,
                   subsample: int = 8_000) -> Dict[str, object]:
    """Figure 5: U65 arrival density, detected phases, and the composite fit."""
    if table2 is None:
        table2 = regenerate_table2(dataset, subsample=subsample)
    phase_rows = [r for r in table2 if r.fit is not None and r.label.startswith("U65")]
    u65_times = dataset.labeled.arrival_times("U65")
    weights = []
    for p in range(len(dataset.u65_phases)):
        weights.append(dataset.phase_times(p).size / max(1, u65_times.size))
    composite = CompositeDistribution(
        [(w, r.fit.fitted) for w, r in zip(weights, phase_rows)])
    edges, counts = dataset.labeled.arrival_histogram(bin_size, user="U65")
    density = counts / max(1, counts.sum()) / bin_size
    centers = (edges[:-1] + edges[1:]) / 2.0
    return {
        "phases": dataset.u65_phases,
        "bin_centers": centers,
        "empirical_density": density,
        "composite_density": composite.pdf(centers),
        "composite": composite,
    }


def _ecdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    x = np.sort(np.asarray(values, dtype=float))
    y = np.arange(1, x.size + 1) / x.size
    return x, y


def figure6_series(dataset: ModelingDataset,
                   table2: Optional[List[Table2Row]] = None,
                   subsample: int = 8_000) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 6: arrival CDFs — empirical vs fitted, per user.

    The claim: fits track the empirical CDFs closely everywhere except U3,
    whose burst no single distribution fully captures (worst KS).
    """
    if table2 is None:
        table2 = regenerate_table2(dataset, subsample=subsample)
    by_label = {r.label: r for r in table2}
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for user in CATEGORIES:
        times = dataset.labeled.arrival_times(user)
        x, y = _ecdf(times)
        grid = np.linspace(x[0], x[-1], 512)
        if user == "U65":
            fig5 = figure5_series(dataset, table2=table2)
            fitted = fig5["composite"].cdf(grid)
        else:
            fitted = by_label[user].fit.fitted.cdf(grid)
        out[user] = {"empirical_x": x, "empirical_y": y,
                     "grid": grid, "fitted_cdf": np.asarray(fitted)}
    return out


def figure7_series(dataset: ModelingDataset) -> Dict[str, Dict[str, object]]:
    """Figure 7: empirical job-duration (job size) CDFs per user.

    Claims: U65/U3/Uoth durations concentrate in [0, 6e5] s; U30 exhibits a
    larger tail and generally larger jobs.
    """
    out: Dict[str, Dict[str, object]] = {}
    for user in CATEGORIES:
        durations = dataset.labeled.durations(user)
        x, y = _ecdf(durations)
        out[user] = {
            "empirical_x": x,
            "empirical_y": y,
            "fraction_below_6e5": float(np.mean(durations <= 6e5)),
            "p99": float(np.percentile(durations, 99)),
        }
    return out
