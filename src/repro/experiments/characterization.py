"""Projection characterization (paper Section III-C, planned future work).

"In-depth evaluation, characterization, and fine tuning of the above
mentioned algorithms is part of our planned future work."  This driver
performs that characterization over randomized fairshare trees:

* **order fidelity** — Kendall-style pairwise agreement between the
  projected values and the true lexicographic vector order;
* **proportionality distortion** — how much relative value differences
  deviate from the corresponding vector-balance differences (flat trees,
  where proportionality is well-defined);
* **isolation violations** — fraction of random two-group trees where
  perturbing one group reorders another group's users or breaks top-down
  enforcement.

The vector-factor alternative (``core.vectorfactors``) is the implicit
fourth arm: extended vectors compare exactly, so its order fidelity is 1.0
by construction — the characterization quantifies what the scalar
projections give up relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.fairshare import FairshareTree, compute_fairshare_tree
from ..core.policy import PolicyTree
from ..core.projection import Projection, make_projection
from ..core.usage import UsageTree

__all__ = ["ProjectionCharacterization", "characterize_projections"]


@dataclass
class ProjectionCharacterization:
    name: str
    order_fidelity: float
    proportionality_error: float
    isolation_violations: float
    trees_evaluated: int

    def row(self) -> str:
        return (f"{self.name:<12} order-fidelity={self.order_fidelity:.4f}  "
                f"proportionality-err={self.proportionality_error:.4f}  "
                f"isolation-violations={self.isolation_violations:.3f}")


def _random_tree(rng: np.random.Generator, max_groups: int = 3,
                 max_users: int = 4) -> FairshareTree:
    """A random two-level hierarchy with random weights and usage."""
    spec: Dict = {}
    usage = UsageTree()
    n_groups = int(rng.integers(1, max_groups + 1))
    for g in range(n_groups):
        users = {f"u{g}_{i}": float(rng.uniform(0.2, 5.0))
                 for i in range(int(rng.integers(2, max_users + 1)))}
        spec[f"g{g}"] = (float(rng.uniform(0.2, 5.0)), users)
    policy = PolicyTree.from_dict(spec)
    for leaf in policy.leaves():
        if rng.random() < 0.85:  # some users stay idle
            usage.set_usage(leaf.path, float(rng.exponential(100.0)))
        else:
            usage.ensure_path(leaf.path)
    usage.roll_up()
    return compute_fairshare_tree(policy, usage=usage)


def _order_fidelity(projection: Projection, trees: List[FairshareTree]) -> float:
    agree = total = 0
    for tree in trees:
        vectors = tree.vectors()
        values = projection.project(tree)
        paths = list(vectors)
        for i, a in enumerate(paths):
            for b in paths[i + 1:]:
                if vectors[a] == vectors[b]:
                    continue
                total += 1
                want = vectors[a] > vectors[b]
                got = values[a] > values[b]
                if want == got:
                    agree += 1
    return agree / total if total else 1.0


def _proportionality_error(projection: Projection,
                           rng: np.random.Generator,
                           samples: int = 50) -> float:
    """Mean relative gap-ratio error on random flat trees."""
    errors = []
    for _ in range(samples):
        n = int(rng.integers(3, 6))
        policy = PolicyTree.from_dict({f"u{i}": 1 for i in range(n)})
        usage = UsageTree()
        raw = np.sort(rng.uniform(0.0, 200.0, size=n))
        for i, u in enumerate(raw):
            usage.set_usage(f"/u{i}", float(u))
        usage.roll_up()
        tree = compute_fairshare_tree(policy, usage=usage)
        balances = {leaf.path: leaf.balance for leaf in tree.leaves()}
        values = projection.project(tree)
        order = sorted(balances, key=balances.get)
        for i in range(len(order) - 2):
            a, b, c = order[i], order[i + 1], order[i + 2]
            gap_b1 = balances[b] - balances[a]
            gap_b2 = balances[c] - balances[b]
            gap_v1 = values[b] - values[a]
            gap_v2 = values[c] - values[b]
            if gap_b1 <= 1e-9 or gap_b2 <= 1e-9 or gap_v1 <= 1e-12 or gap_v2 <= 1e-12:
                continue
            true_ratio = gap_b2 / gap_b1
            got_ratio = gap_v2 / gap_v1
            errors.append(abs(np.log(got_ratio / true_ratio)))
    return float(np.mean(errors)) if errors else 0.0


def _isolation_violations(projection: Projection,
                          rng: np.random.Generator,
                          samples: int = 50) -> float:
    """Fraction of perturbation trials breaking isolation / top-down order."""
    violations = 0
    for _ in range(samples):
        base_usage = {
            "/A/a1": float(rng.exponential(50.0)),
            "/A/a2": float(rng.exponential(50.0)),
            "/B/b1": float(rng.exponential(50.0)),
            "/B/b2": float(rng.exponential(50.0)),
        }
        policy = PolicyTree.from_dict({
            "A": (float(rng.uniform(0.5, 2.0)), {"a1": 2, "a2": 1}),
            "B": (float(rng.uniform(0.5, 2.0)), {"b1": 1, "b2": 1}),
        })

        def project(usage_map):
            usage = UsageTree()
            for path, value in usage_map.items():
                usage.set_usage(path, value)
            usage.roll_up()
            tree = compute_fairshare_tree(policy, usage=usage)
            return projection.project(tree), tree

        values1, tree1 = project(base_usage)
        perturbed = dict(base_usage)
        perturbed["/B/b1"] = base_usage["/B/b1"] * float(rng.uniform(5.0, 50.0))
        values2, _ = project(perturbed)
        # (a) within-group stability of the untouched group A
        if (values1["/A/a1"] > values1["/A/a2"]) != \
                (values2["/A/a1"] > values2["/A/a2"]):
            violations += 1
            continue
        # (b) top-down enforcement against the vector order
        vectors = tree1.vectors()
        for a in vectors:
            broken = False
            for b in vectors:
                if vectors[a] > vectors[b] and values1[a] < values1[b]:
                    violations += 1
                    broken = True
                    break
            if broken:
                break
    return violations / samples


def characterize_projections(seed: int = 0, n_trees: int = 60,
                             names: Optional[List[str]] = None
                             ) -> List[ProjectionCharacterization]:
    rng = np.random.default_rng(seed)
    trees = [_random_tree(rng) for _ in range(n_trees)]
    out = []
    for name in names or ("dictionary", "bitwise", "percental"):
        projection = make_projection(name)
        out.append(ProjectionCharacterization(
            name=name,
            order_fidelity=_order_fidelity(projection, trees),
            proportionality_error=_proportionality_error(
                projection, np.random.default_rng(seed + 1)),
            isolation_violations=_isolation_violations(
                projection, np.random.default_rng(seed + 2)),
            trees_evaluated=n_trees,
        ))
    return out
