"""Ablation studies over the design choices the paper leaves configurable.

The paper states several knobs without evaluating them in depth: the
projection algorithm "is configurable and can be changed during run-time"
(Section III-C, in-depth evaluation "part of our planned future work");
dispatch was tried "both stochastic and round-robin ... without any
noticeable difference"; the fairshare algorithm "can be configured with,
e.g., different usage decay functions"; and libaequus caching
"considerably reduces the amount of network traffic and computations".
These drivers quantify each claim on the simulated test bed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.metrics import convergence_time
from ..workload.reference import build_testbed_trace
from .common import ScenarioResult, TestbedConfig, build_testbed, run_scenario

__all__ = [
    "AblationRun",
    "projection_ablation",
    "dispatch_ablation",
    "decay_ablation",
    "cache_ablation",
    "CacheAblationResult",
]


@dataclass
class AblationRun:
    """One arm of an ablation: label plus the scenario result."""

    label: str
    result: ScenarioResult

    @property
    def final_deviation(self) -> float:
        return self.result.series("share_deviation").values[-1]

    @property
    def tail_utilization(self) -> float:
        return self.result.series("utilization").tail_mean(0.5)

    def row(self) -> str:
        conv = self.result.convergence_seconds
        conv_s = f"{conv / 60:.0f} min" if conv is not None else "none"
        return (f"{self.label:<22} deviation={self.final_deviation:.4f}  "
                f"utilization={self.tail_utilization:.1%}  "
                f"convergence={conv_s}")


def _scale(n_jobs, span, n_sites, hosts_per_site, seed):
    return dict(n_jobs=n_jobs, span=span, n_sites=n_sites,
                hosts_per_site=hosts_per_site, seed=seed)


def _run(label: str, config: TestbedConfig, n_jobs: int,
         load: float = 0.95) -> AblationRun:
    total_cores = config.n_sites * config.hosts_per_site
    trace = build_testbed_trace(n_jobs=n_jobs, span=config.span,
                                total_cores=total_cores, load=load,
                                seed=config.seed)
    return AblationRun(label, run_scenario(label, trace, config))


def projection_ablation(n_jobs: int = 6000, span: float = 3600.0,
                        n_sites: int = 2, hosts_per_site: int = 20,
                        seed: int = 3) -> List[AblationRun]:
    """Baseline scenario under each projection algorithm.

    Expectation: all three converge (ordering is what steers scheduling);
    the percental projection is the production configuration.
    """
    runs = []
    for projection in ("percental", "dictionary", "bitwise"):
        config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                               hosts_per_site=hosts_per_site)
        config.site_config.projection = projection
        runs.append(_run(f"projection={projection}", config, n_jobs))
    return runs


def dispatch_ablation(n_jobs: int = 6000, span: float = 3600.0,
                      n_sites: int = 2, hosts_per_site: int = 20,
                      seed: int = 3) -> List[AblationRun]:
    """Stochastic vs round-robin dispatch — the paper found no noticeable
    difference."""
    runs = []
    for dispatch in ("stochastic", "round_robin"):
        config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                               hosts_per_site=hosts_per_site,
                               dispatch=dispatch)
        runs.append(_run(f"dispatch={dispatch}", config, n_jobs))
    return runs


def decay_ablation(n_jobs: int = 6000, span: float = 3600.0,
                   n_sites: int = 2, hosts_per_site: int = 20,
                   seed: int = 3,
                   half_lives: Optional[List[float]] = None) -> List[AblationRun]:
    """Sensitivity to the usage-decay half-life.

    Shorter memory makes the system react faster but fluctuate more; a very
    long memory slows re-convergence after imbalance.  All settings must
    still converge — the "parameterized algorithm" claim.
    """
    runs = []
    for half_life in half_lives or (span / 12, span / 3, span * 3):
        config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                               hosts_per_site=hosts_per_site)
        config.site_config.decay_half_life = half_life
        runs.append(_run(f"half_life={half_life:.0f}s", config, n_jobs))
    return runs


@dataclass
class CacheAblationResult:
    ttl: float
    fairshare_calls: int
    cache_hit_rate: float
    fcs_lookups: int
    final_deviation: float

    def row(self) -> str:
        return (f"ttl={self.ttl:>5.1f}s  libaequus calls={self.fairshare_calls:>7} "
                f"hit rate={self.cache_hit_rate:>6.1%}  "
                f"FCS lookups={self.fcs_lookups:>7}  "
                f"deviation={self.final_deviation:.4f}")


def cache_ablation(n_jobs: int = 6000, span: float = 3600.0,
                   n_sites: int = 2, hosts_per_site: int = 20,
                   seed: int = 3,
                   ttls: Optional[List[float]] = None) -> List[CacheAblationResult]:
    """libaequus caching on vs off.

    The paper: cached values "considerably reduce the amount of network
    traffic and computations required when batches of jobs are submitted
    and processed at the same time".  We measure FCS lookups absorbed by
    the cache while checking the scheduling outcome is unchanged.
    """
    out = []
    total_cores = n_sites * hosts_per_site
    for ttl in ttls if ttls is not None else (0.0, 15.0, 60.0):
        config = TestbedConfig(span=span, seed=seed, n_sites=n_sites,
                               hosts_per_site=hosts_per_site)
        config.site_config.libaequus_cache_ttl = ttl
        testbed = build_testbed(config)
        trace = build_testbed_trace(n_jobs=n_jobs, span=span,
                                    total_cores=total_cores, load=0.95,
                                    seed=seed)
        testbed.host.schedule_trace(trace)
        testbed.engine.run_until(span)
        calls = sum(lib.fairshare_calls for lib in testbed.libs)
        hits = sum(lib.fairshare_cache_stats.hits for lib in testbed.libs)
        misses = sum(lib.fairshare_cache_stats.misses for lib in testbed.libs)
        out.append(CacheAblationResult(
            ttl=ttl,
            fairshare_calls=calls,
            cache_hit_rate=hits / max(1, hits + misses),
            fcs_lookups=misses,
            final_deviation=testbed.metrics["share_deviation"].values[-1],
        ))
        testbed.stop()
    return out
