"""Shared test-bed construction and scenario execution (paper Section IV-A).

The national-grid test bed: "six of the hosts are configured to represent
one cluster with 40 virtual hosts each for a total of 240 hosts,
corresponding roughly to 10% of the national grid capacity ...  Each of the
simulated clusters hosts its own Aequus installation, and they communicate
only by exchanging data through the USS services ...  A unified name
resolution service used by all clusters is co-hosted on the job submission
host."  Fairshare is the only scheduling factor; the percental projection
is used (the production configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..client.libaequus import LibAequus
from ..core.policy import PolicyTree
from ..rms.cluster import Cluster
from ..rms.maui import MauiScheduler, MauiWeights
from ..rms.priority import FactorWeights
from ..rms.scheduler import BaseScheduler
from ..rms.slurm import SlurmScheduler
from ..services.network import Network
from ..services.site import AequusSite, ParticipationMode, SiteConfig, connect_sites
from ..sim.engine import SimulationEngine
from ..sim.grid import GridIdentityMapper, GridSubmissionHost
from ..sim.metrics import MetricsRecorder, TimeSeries, convergence_time, share_deviation
from ..sim.random import RandomStreams
from ..workload.reference import GRID_IDENTITIES, USAGE_SHARES
from ..workload.trace import Trace

__all__ = ["TestbedConfig", "Testbed", "ScenarioResult", "build_testbed",
           "run_scenario"]

#: A leaf name per grid identity (DNs cannot be tree node names).
LEAF_FOR_IDENTITY = {dn: name for name, dn in GRID_IDENTITIES.items()}


@dataclass
class TestbedConfig:
    """Everything that defines one evaluation run."""

    n_sites: int = 6
    hosts_per_site: int = 40
    cores_per_host: int = 1
    span: float = 21_600.0
    #: target policy share per grid identity; defaults to the workload's
    #: actual usage shares ("the actual share from the workloads are used
    #: as targets for most of the tests").
    policy_targets: Optional[Dict[str, float]] = None
    site_config: SiteConfig = field(default_factory=lambda: SiteConfig(
        histogram_interval=60.0,
        uss_exchange_interval=30.0,
        ums_refresh_interval=30.0,
        fcs_refresh_interval=30.0,
        pds_refresh_interval=600.0,
        libaequus_cache_ttl=15.0,
        decay_half_life=7_200.0,
        projection="percental",
    ))
    participation: Dict[str, ParticipationMode] = field(default_factory=dict)
    weights: FactorWeights = field(default_factory=lambda: FactorWeights(fairshare=1.0))
    #: which resource manager runs each cluster: "slurm", "maui", or
    #: "mixed" (alternating) — grids are heterogeneous by nature, and the
    #: whole point of Aequus is that prioritization stays consistent across
    #: different underlying scheduler systems (paper Section I)
    rms: str = "slurm"
    dispatch: str = "stochastic"
    sched_interval: float = 5.0
    reprioritize_interval: float = 30.0
    report_delay: float = 2.0
    sample_interval: float = 60.0
    network_latency: float = 0.1
    seed: int = 0

    def site_names(self) -> List[str]:
        return [f"site{i + 1}" for i in range(self.n_sites)]

    def targets(self) -> Dict[str, float]:
        return dict(self.policy_targets
                    or {GRID_IDENTITIES[u]: s for u, s in USAGE_SHARES.items()})


@dataclass
class Testbed:
    """Live handles of a constructed test bed."""

    config: TestbedConfig
    engine: SimulationEngine
    network: Network
    sites: List[AequusSite]
    schedulers: List[BaseScheduler]
    libs: List[LibAequus]
    host: GridSubmissionHost
    metrics: MetricsRecorder
    usage_by_identity: Dict[str, float] = field(default_factory=dict)

    def stop(self) -> None:
        for site in self.sites:
            site.stop()
        for sched in self.schedulers:
            sched.stop()


def _policy_for_targets(targets: Mapping[str, float]) -> PolicyTree:
    """Flat policy tree: one leaf per identity, weights = target shares."""
    tree = PolicyTree()
    for identity, share in targets.items():
        leaf = LEAF_FOR_IDENTITY.get(identity, identity.rsplit("=", 1)[-1])
        tree.set_share(f"/{leaf}", share)
    return tree


def build_testbed(config: TestbedConfig) -> Testbed:
    """Construct the full multi-site test bed on a fresh engine."""
    streams = RandomStreams(config.seed)
    engine = SimulationEngine()
    network = Network(engine, base_latency=config.network_latency,
                      jitter=config.network_latency / 2,
                      rng=streams.stream("network"))
    targets = config.targets()
    mapper = GridIdentityMapper()
    sites: List[AequusSite] = []
    schedulers: List[BaseScheduler] = []
    libs: List[LibAequus] = []
    metrics = MetricsRecorder()
    for i, name in enumerate(config.site_names()):
        mode = config.participation.get(name, ParticipationMode.FULL)
        # de-phase service loops across sites, as in a real deployment
        site_cfg = SiteConfig(**{**config.site_config.__dict__,
                                 "start_offset": 0.37 * (i + 1)})
        site = AequusSite(name, engine, network,
                          policy=_policy_for_targets(targets),
                          config=site_cfg, mode=mode)
        for identity in targets:
            leaf = LEAF_FOR_IDENTITY.get(identity, identity.rsplit("=", 1)[-1])
            site.fcs.register_identity(identity, leaf)
        mapper.register_with(site.irs, name)
        cluster = Cluster(name, n_nodes=config.hosts_per_site,
                          cores_per_node=config.cores_per_host)
        lib = LibAequus.for_site(site, report_delay=config.report_delay)
        kind = config.rms
        if kind == "mixed":
            kind = "slurm" if i % 2 == 0 else "maui"
        if kind == "slurm":
            sched = SlurmScheduler(
                name, engine, cluster,
                weights=config.weights,
                sched_interval=config.sched_interval,
                reprioritize_interval=config.reprioritize_interval,
                start_offset=0.11 * (i + 1))
            sched.integrate_aequus(lib)
        elif kind == "maui":
            sched = MauiScheduler(
                name, engine, cluster,
                weights=MauiWeights(fairshare=config.weights.fairshare,
                                    queuetime=config.weights.age),
                sched_interval=config.sched_interval,
                reprioritize_interval=config.reprioritize_interval,
                start_offset=0.11 * (i + 1))
            sched.apply_aequus_patch(lib)
        else:
            raise ValueError(f"unknown rms kind {config.rms!r}")
        sites.append(site)
        schedulers.append(sched)
        libs.append(lib)
    connect_sites(sites)
    host = GridSubmissionHost(engine, schedulers, mapper=mapper,
                              dispatch=config.dispatch,
                              rng=streams.stream("dispatch"))
    testbed = Testbed(config=config, engine=engine, network=network,
                      sites=sites, schedulers=schedulers, libs=libs,
                      host=host, metrics=metrics)
    _install_sampler(testbed, targets)
    return testbed


def _install_sampler(testbed: Testbed, targets: Mapping[str, float]) -> None:
    """Periodic metric sampling: usage shares, priorities, utilization."""
    cfg = testbed.config
    engine = testbed.engine
    identities = list(targets)

    # cumulative completed usage per grid identity, fed by completion hooks
    for site, sched in zip(testbed.sites, testbed.schedulers):
        def hook(job, now, site=site):
            identity = site.irs.resolve(job.system_user)
            testbed.usage_by_identity[identity] = (
                testbed.usage_by_identity.get(identity, 0.0) + job.charge)
        sched.add_completion_hook(hook)

    def current_shares() -> Dict[str, float]:
        """Instantaneous cumulative usage shares incl. in-flight runtime."""
        usage = dict(testbed.usage_by_identity)
        now = engine.now
        for site, sched in zip(testbed.sites, testbed.schedulers):
            for job in sched.running:
                identity = site.irs.resolve(job.system_user)
                usage[identity] = usage.get(identity, 0.0) + \
                    (now - job.start_time) * job.cores
        total = sum(usage.values())
        if total <= 0:
            return {i: 0.0 for i in identities}
        return {i: usage.get(i, 0.0) / total for i in identities}

    # a site with the global usage view, for the decayed-share series
    global_view_site = next(
        (s for s in testbed.sites if s.mode.consumes_remote), testbed.sites[0])

    def decayed_shares() -> Dict[str, float]:
        """Usage shares as the fairshare algorithm sees them (decayed)."""
        totals = global_view_site.ums.usage_totals()
        total = sum(totals.values())
        if total <= 0:
            return {i: 0.0 for i in identities}
        return {i: totals.get(i, 0.0) / total for i in identities}

    def sample() -> None:
        now = engine.now
        shares = current_shares()
        testbed.metrics.record_many("usage_share", now, shares)
        testbed.metrics.record(
            "share_deviation", now, share_deviation(shares, targets))
        dshares = decayed_shares()
        testbed.metrics.record_many("decayed_share", now, dshares)
        testbed.metrics.record(
            "decayed_deviation", now, share_deviation(dshares, targets))
        busy = sum(s.cluster.busy_cores for s in testbed.schedulers)
        total = sum(s.cluster.total_cores for s in testbed.schedulers)
        testbed.metrics.record("utilization", now, busy / total)
        queued = sum(s.queue_length for s in testbed.schedulers)
        testbed.metrics.record("queue_length", now, queued)
        for site in testbed.sites:
            for identity in identities:
                testbed.metrics.record(
                    f"priority/{site.name}/{identity}", now,
                    site.fcs.priority(identity))
        # grid-mean priority per identity (the paper's per-user priority plot)
        for identity in identities:
            values = [site.fcs.priority(identity) for site in testbed.sites]
            testbed.metrics.record(f"priority/{identity}", now,
                                   sum(values) / len(values))

    engine.periodic(cfg.sample_interval, sample, start_offset=cfg.sample_interval)


@dataclass
class ScenarioResult:
    """Outcome of one evaluation run: series plus headline numbers."""

    name: str
    config: TestbedConfig
    metrics: MetricsRecorder
    targets: Dict[str, float]
    jobs_submitted: int
    jobs_completed: int
    final_shares: Dict[str, float]
    mean_utilization: float
    throughput_per_minute: float
    peak_submission_rate: float
    convergence_seconds: Optional[float]
    #: convergence of the *decayed* usage-share deviation — the quantity the
    #: fairshare loop directly controls; a much less noisy convergence
    #: signal than the cumulative shares (used by the Figure 11 comparison)
    decayed_convergence_seconds: Optional[float] = None

    def series(self, name: str) -> TimeSeries:
        return self.metrics[name]

    def priority_series(self, identity: str, site: Optional[str] = None) -> TimeSeries:
        key = f"priority/{site}/{identity}" if site else f"priority/{identity}"
        return self.metrics[key]

    def usage_share_series(self, identity: str) -> TimeSeries:
        return self.metrics[f"usage_share/{identity}"]

    def summary_rows(self) -> List[str]:
        rows = [
            f"jobs submitted/completed: {self.jobs_submitted}/{self.jobs_completed}",
            f"mean utilization: {self.mean_utilization:.1%}",
            f"throughput: {self.throughput_per_minute:.0f} jobs/min "
            f"(peak {self.peak_submission_rate:.0f})",
        ]
        if self.convergence_seconds is not None:
            rows.append(f"share convergence at {self.convergence_seconds / 60:.0f} min")
        else:
            rows.append("shares did not converge within the run")
        for identity in sorted(self.targets):
            label = LEAF_FOR_IDENTITY.get(identity, identity)
            rows.append(
                f"  {label}: final usage share {self.final_shares.get(identity, 0.0):.3f}"
                f" vs target {self.targets[identity]:.3f}")
        return rows


def run_scenario(name: str, trace: Trace, config: TestbedConfig,
                 convergence_threshold: float = 0.02,
                 drain: bool = False) -> ScenarioResult:
    """Build the test bed, replay ``trace``, and collect results.

    The run stops at ``config.span`` like the paper's six-hour tests unless
    ``drain`` asks to let the queues empty.
    """
    testbed = build_testbed(config)
    testbed.host.schedule_trace(trace)
    testbed.engine.run_until(config.span)
    if drain:
        # periodic service tasks keep the event heap non-empty forever, so
        # draining advances the horizon until the queues are actually empty
        horizon = config.span
        limit = config.span * 10
        while horizon < limit and any(
                s.queue_length > 0 or s.running for s in testbed.schedulers):
            horizon += max(config.sample_interval, config.span * 0.05)
            testbed.engine.run_until(horizon)
    submitted = sum(s.jobs_submitted for s in testbed.schedulers)
    completed = sum(s.jobs_completed for s in testbed.schedulers)
    busy = sum(s.cluster.busy_core_seconds(testbed.engine.now)
               for s in testbed.schedulers)
    total_capacity = sum(s.cluster.total_cores for s in testbed.schedulers) * \
        testbed.engine.now
    targets = config.targets()
    shares_now = {i: testbed.metrics[f"usage_share/{i}"].values[-1]
                  for i in targets if f"usage_share/{i}" in testbed.metrics}
    conv = convergence_time(testbed.metrics["share_deviation"],
                            convergence_threshold, hold=5 * config.sample_interval)
    dconv = convergence_time(testbed.metrics["decayed_deviation"],
                             0.05, hold=5 * config.sample_interval)
    result = ScenarioResult(
        name=name,
        config=config,
        metrics=testbed.metrics,
        targets=targets,
        jobs_submitted=submitted,
        jobs_completed=completed,
        final_shares=shares_now,
        mean_utilization=busy / total_capacity if total_capacity else 0.0,
        throughput_per_minute=completed / (testbed.engine.now / 60.0)
        if testbed.engine.now > 0 else 0.0,
        peak_submission_rate=trace.peak_submission_rate(60.0),
        convergence_seconds=conv,
        decayed_convergence_seconds=dconv,
    )
    testbed.stop()
    return result
