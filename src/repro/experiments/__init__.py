"""Experiment drivers regenerating every table and figure of the paper's
evaluation (see DESIGN.md Section 4 for the full index)."""

from .common import ScenarioResult, Testbed, TestbedConfig, build_testbed, run_scenario
from .modeling import (
    ModelingDataset,
    Table2Row,
    Table3Row,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    prepare_dataset,
    regenerate_table2,
    regenerate_table3,
)
from .production import ProductionResult, run_production, run_production_comparison
from .projections import (
    PAPER_TABLE1,
    ProjectionProbeResult,
    probe_projection,
    regenerate_table1,
)
from .scenarios import (
    PartialParticipationResult,
    UpdateDelayComparison,
    baseline,
    bursty,
    non_optimal_policy,
    partial_participation,
    update_delay,
)

__all__ = [
    "ScenarioResult", "Testbed", "TestbedConfig", "build_testbed", "run_scenario",
    "ModelingDataset", "Table2Row", "Table3Row",
    "figure4_series", "figure5_series", "figure6_series", "figure7_series",
    "prepare_dataset", "regenerate_table2", "regenerate_table3",
    "ProductionResult", "run_production", "run_production_comparison",
    "PAPER_TABLE1", "ProjectionProbeResult", "probe_projection", "regenerate_table1",
    "PartialParticipationResult", "UpdateDelayComparison",
    "baseline", "bursty", "non_optimal_policy", "partial_participation",
    "update_delay",
]
