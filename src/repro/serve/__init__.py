"""aequusd — the stand-alone query-serving plane (DESIGN.md §8).

The paper runs Aequus as a separate system that SLURM and Maui query
through ``libaequus`` over a network boundary.  This package provides that
boundary for real: an atomic snapshot store fed by FCS refreshes, an
asyncio TCP server speaking a versioned length-prefixed JSON protocol, and
a resilient client transport the RMS integrations can run over unmodified.

Layering: ``repro.serve`` imports from ``repro.services`` (it wraps a site
stack), never the other way around — the simulation core stays free of any
serving concern.
"""

from .backend import SiteBackend
from .client import (AequusClient, AequusServerError, AequusTransportError,
                     SyncAequusClient)
from .protocol import PROTOCOL_VERSION
from .server import AequusServer, ServerThread
from .snapshot import FairshareSnapshot, SnapshotStore

__all__ = [
    "AequusClient",
    "AequusServer",
    "AequusServerError",
    "AequusTransportError",
    "FairshareSnapshot",
    "PROTOCOL_VERSION",
    "ServerThread",
    "SiteBackend",
    "SnapshotStore",
    "SyncAequusClient",
]
