"""Shared-memory snapshot plane: fairshare epochs as flat arrays in shm.

The sharded serve plane (``serve --workers N``) runs one writer — the
daemon process driving the FCS — and N reader processes serving queries.
Each FCS refresh is published into ``multiprocessing.shared_memory`` as
flat arrays plus a sorted key table, so a worker answers GET_FAIRSHARE
with two array reads and zero parent-heap access.

Layout
------
One small **control segment** names the current epoch::

    offset 0   seqlock u64 | layout_gen u64 | snapshot_seq u64
    offset 24  active u8 | pad | meta_len u32
    offset 32  meta JSON: {"segments": [name0, name1], "caps": {...}}

and two double-buffered **data segments** hold the payload::

    offset 0   seqlock u64 | seq u64
    offset 16  computed_at f64 | unknown f64 | leaf_gen u32 | n_leaves u32
               | max_depth u32 | resolution u32 | n_keys u32
               | key_blob_len u32 | tail_len u32 | key_epoch u32
    offset 64  values   f64[cap_leaves]
               matrix   f64[cap_leaves * cap_depth]   (vector elements)
               depths   u32[cap_leaves]
               key_offs u32[cap_keys + 1]
               key_ids  u32[cap_keys]
               key_blob bytes[cap_blob]   (sorted UTF-8 keys, concatenated)
               tail     JSON[cap_tail]    (site, epoch, horizons, IRS, ...)

Torn-epoch impossibility is a seqlock pair: the writer bumps a segment's
counter to odd, writes, bumps it to even; a reader samples the counter
(must be even), reads, and re-samples — a changed counter means the read
raced a republish and is retried against a fresh view.  Because publishes
alternate between the two data buffers, a reader's buffer is only
rewritten two publishes after it became active, so retries are vanishing
rare in practice but the check makes torn reads *impossible*, not just
unlikely.  (CPython byte-level stores through ``memoryview`` under the
GIL plus x86-TSO ordering make the counter protocol sound without
explicit fences.)

The **key table** maps every resolvable identity — leaf path, bare leaf
name, and identity-map alias, merged with exactly
:meth:`~repro.serve.snapshot.FairshareSnapshot.resolve_path` precedence
(aliases win) — to its leaf row.  Readers copy it out once per
``key_epoch`` (validated by the seqlock) and binary-search locally, with
an LRU dict in front for hot keys.  Leaf rows double as the binary
protocol's integer leaf ids, tagged with ``leaf_gen``.

Layout changes (policy recompile, alias growth beyond headroom) allocate
a *new* segment pair under ``layout_gen + 1`` names; the old pair is
unlinked only after a grace period so readers mid-request never lose the
mapping under their feet.  Capacities carry headroom (an eighth, at least
64 entries) so steady-state publishes — values moved, keys unchanged —
rewrite only the values block, the header, and the small JSON tail.

``resource_tracker`` hygiene: CPython registers a segment with the
tracker on *attach* as well as on create, so a reader process exiting
would spuriously unlink segments it never owned (and warn about "leaked"
objects).  Readers therefore unregister every segment right after
attaching; the writer keeps its registrations and unlinks on close.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .protocol import NO_LEAF_ID
from .snapshot import FairshareSnapshot

__all__ = ["ShmSnapshotWriter", "ShmSnapshotReader", "ShmEpochView",
           "ShmBackend", "control_name"]

CTL_HEAD = struct.Struct(">QQQ")          # seqlock, layout_gen, snapshot_seq
CTL_META = struct.Struct(">BxxxI")        # active index, meta_len
CTL_META_AT = CTL_HEAD.size               # 24
CTL_JSON_AT = CTL_META_AT + CTL_META.size  # 32
CTL_SIZE = 4096

DATA_HEAD = struct.Struct(">QQ")          # seqlock, snapshot seq
DATA_META = struct.Struct(">dd8I")        # computed_at, unknown, leaf_gen,
#                                           n_leaves, max_depth, resolution,
#                                           n_keys, key_blob_len, tail_len,
#                                           key_epoch
DATA_META_AT = DATA_HEAD.size             # 16
ARRAYS_AT = 64
_U64 = struct.Struct(">Q")

# array regions use NATIVE byte order: shm never leaves the machine, and
# a big-endian view would byteswap on every hot-path read
_F8 = np.dtype(np.float64)
_U4 = np.dtype(np.uint32)


def control_name(token: str) -> str:
    """The control-segment name for a writer token (what readers attach)."""
    return f"aqshm_{token}_ctl"


_attach_lock = threading.Lock()

#: closed-reader segments still pinned by live numpy views — kept
#: referenced so SharedMemory.__del__ never runs against an exported
#: buffer (see ShmSnapshotReader.close)
_UNREAPED: List[shared_memory.SharedMemory] = []


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment WITHOUT adopting tracker ownership.

    CPython < 3.13 registers a segment with the resource tracker on
    *attach* too (there is no ``track=False`` yet).  Un-registering after
    the fact is worse than it looks: the tracker keeps one shared
    name-set across the writer and every forked worker, so a reader's
    unregister erases the writer's legitimate registration and its later
    ``unlink`` draws a tracker KeyError traceback.  Suppressing the
    registration for the duration of the attach leaves the tracker
    exactly as the writer set it up.
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class _Layout:
    """Byte offsets of one data segment, derived from its capacities."""

    __slots__ = ("cap_leaves", "cap_depth", "cap_keys", "cap_blob",
                 "cap_tail", "o_values", "o_matrix", "o_depths", "o_koff",
                 "o_kid", "o_blob", "o_tail", "size")

    def __init__(self, cap_leaves: int, cap_depth: int, cap_keys: int,
                 cap_blob: int, cap_tail: int):
        self.cap_leaves = cap_leaves
        self.cap_depth = cap_depth
        self.cap_keys = cap_keys
        self.cap_blob = cap_blob
        self.cap_tail = cap_tail
        self.o_values = ARRAYS_AT
        self.o_matrix = self.o_values + cap_leaves * 8
        self.o_depths = self.o_matrix + cap_leaves * cap_depth * 8
        self.o_koff = self.o_depths + cap_leaves * 4
        self.o_kid = self.o_koff + (cap_keys + 1) * 4
        self.o_blob = self.o_kid + cap_keys * 4
        self.o_tail = self.o_blob + cap_blob
        self.size = max(self.o_tail + cap_tail, ARRAYS_AT + 8)

    def caps(self) -> Dict[str, int]:
        return {"leaves": self.cap_leaves, "depth": self.cap_depth,
                "keys": self.cap_keys, "blob": self.cap_blob,
                "tail": self.cap_tail}

    @classmethod
    def from_caps(cls, caps: Mapping[str, int]) -> "_Layout":
        return cls(caps["leaves"], caps["depth"], caps["keys"],
                   caps["blob"], caps["tail"])


def _headroom(n: int) -> int:
    return n + max(64, n // 8)


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------

class ShmSnapshotWriter:
    """Single-writer publisher of fairshare epochs into shared memory.

    ``token`` names the plane (readers derive every segment name from it);
    it defaults to a pid-qualified site tag so concurrent daemons never
    collide.  Call :meth:`publish` per FCS refresh (or hook it up with
    :meth:`attach_fcs`) and :meth:`close` on shutdown — close unlinks
    every segment the writer ever created.
    """

    def __init__(self, site: str = "site", token: Optional[str] = None,
                 grace: float = 2.0,
                 irs_table: Optional[Mapping[str, str]] = None):
        safe = "".join(c if c.isalnum() else "-" for c in site)[:16]
        self.token = token if token is not None \
            else f"{safe}-{os.getpid():x}-{os.urandom(3).hex()}"
        self.grace = grace
        self.site = site
        self._ctl = shared_memory.SharedMemory(
            name=control_name(self.token), create=True, size=CTL_SIZE)
        self._ctl.buf[:CTL_SIZE] = b"\x00" * CTL_SIZE
        self._layout_gen = 0
        self._layout: Optional[_Layout] = None
        self._bufs: List[shared_memory.SharedMemory] = []
        self._active = 0
        self._key_epoch = 0
        self._key_sig: Optional[Tuple[Any, ...]] = None
        self._key_blob = b""
        self._key_offs = np.zeros(1, dtype=_U4)
        self._key_ids = np.zeros(0, dtype=_U4)
        self._aliases: Dict[str, str] = {}
        self._irs_table = dict(irs_table or {})
        #: (wall deadline, shm) pairs awaiting their grace-period unlink
        self._retired: List[Tuple[float, shared_memory.SharedMemory]] = []
        self.publishes = 0
        self.relayouts = 0
        self._closed = False

    @property
    def name(self) -> str:
        """The control-segment name readers attach."""
        return self._ctl.name.lstrip("/")

    # -- publication ---------------------------------------------------------

    def attach_fcs(self, fcs, irs=None) -> "ShmSnapshotWriter":
        """Publish on every FCS refresh (and once now, for the last one)."""
        from .snapshot import snapshot_from_fcs

        def _on_refresh(f):
            if irs is not None:
                self._irs_table = irs.known_users()
            self.publish(snapshot_from_fcs(f))

        fcs.add_refresh_listener(_on_refresh)
        return self

    def set_irs_table(self, table: Mapping[str, str]) -> None:
        """Replace the published system-user -> identity table."""
        self._irs_table = dict(table)

    def publish(self, snap: FairshareSnapshot) -> None:
        """Publish one snapshot epoch (arrays derived from the snapshot)."""
        result = snap.result
        if result is None:
            return
        flat = result.flat
        values = snap.values_vec
        if values is None:
            values = np.asarray(
                [snap.values.get(p, snap.unknown_user_value)
                 for p in flat.leaf_paths], dtype=np.float64)
        self.publish_arrays(
            seq=snap.seq, leaf_gen=snap.leaf_gen,
            computed_at=snap.computed_at,
            unknown_user_value=snap.unknown_user_value,
            resolution=snap.resolution,
            values=values,
            matrix=result.element_matrix(),
            depths=np.asarray(result.leaf_depths, dtype=np.uint32),
            keys=self._merged_keys(snap, flat),
            key_sig=(snap.leaf_gen, id(snap.values), len(snap.identity_map),
                     len(self._irs_table)),
            tail={
                "site": snap.site,
                "projection": snap.projection,
                "epoch": list(snap.epoch) if isinstance(snap.epoch, tuple)
                else snap.epoch,
                "horizons": dict(snap.horizons),
                "identity_map": dict(snap.identity_map),
                "irs": self._irs_table,
            })

    def _merged_keys(self, snap: FairshareSnapshot, flat) -> Dict[str, int]:
        """Identity -> leaf row, resolve_path precedence (aliases win)."""
        keys: Dict[str, int] = dict(flat.leaf_slot)
        for name, path in snap.by_name.items():
            row = flat.leaf_slot.get(path)
            if row is not None:
                keys[name] = row
        for alias, target in snap.identity_map.items():
            path = target if target.startswith("/") \
                else snap.by_name.get(target)
            row = flat.leaf_slot.get(path) if path is not None else None
            if row is not None:
                keys[alias] = row
            else:
                # the alias redirects to an unresolvable target: it must
                # shadow any same-named leaf, exactly like resolve_path
                keys.pop(alias, None)
        return keys

    def publish_arrays(self, *, seq: int, leaf_gen: int, computed_at: float,
                       unknown_user_value: float, resolution: int,
                       values: np.ndarray,
                       keys: Mapping[str, int],
                       matrix: Optional[np.ndarray] = None,
                       depths: Optional[np.ndarray] = None,
                       key_sig: Optional[Tuple[Any, ...]] = None,
                       tail: Optional[Dict[str, Any]] = None) -> None:
        """Low-level publish: arrays in, one epoch out.

        Benchmarks use this to serve synthetic populations without
        building a full site stack; :meth:`publish` is sugar over it.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        n_leaves = int(values.shape[0])
        if matrix is None:
            matrix = np.zeros((n_leaves, 1), dtype=np.float64)
        if depths is None:
            depths = np.ones(n_leaves, dtype=np.uint32)
        max_depth = int(matrix.shape[1]) if matrix.size else 1

        sig = key_sig if key_sig is not None else (leaf_gen, len(keys))
        if sig != self._key_sig:
            items = sorted((k.encode("utf-8"), int(row))
                           for k, row in keys.items())
            blob = b"".join(k for k, _ in items)
            offs = np.zeros(len(items) + 1, dtype=_U4)
            if items:
                lens = np.fromiter((len(k) for k, _ in items),
                                   dtype=np.int64, count=len(items))
                offs[1:] = np.cumsum(lens)
            self._key_offs = offs
            self._key_ids = np.asarray([row for _, row in items], dtype=_U4)
            self._key_blob = blob
            self._key_sig = sig
            self._key_epoch += 1
        n_keys = int(self._key_ids.shape[0])

        tail_doc = dict(tail or {})
        tail_doc.setdefault("site", self.site)
        tail_doc["clock_now"] = computed_at
        tail_doc["wall_now"] = time.time()
        tail_bytes = json.dumps(tail_doc, separators=(",", ":")).encode()

        lay = self._layout
        fits = (lay is not None
                and n_leaves == lay.cap_leaves
                and max_depth == lay.cap_depth
                and n_keys <= lay.cap_keys
                and len(self._key_blob) <= lay.cap_blob
                and len(tail_bytes) <= lay.cap_tail)
        if not fits:
            self._relayout(n_leaves, max_depth, n_keys,
                           len(self._key_blob), len(tail_bytes))
            lay = self._layout

        target = self._bufs[1 - self._active]
        self._write_epoch(target, lay, seq=seq, leaf_gen=leaf_gen,
                          computed_at=computed_at,
                          unknown=unknown_user_value, resolution=resolution,
                          n_leaves=n_leaves, max_depth=max_depth,
                          n_keys=n_keys, values=values, matrix=matrix,
                          depths=depths, tail=tail_bytes)
        self._flip(1 - self._active, seq)
        self.publishes += 1
        self._reap_retired()

    # -- internals -----------------------------------------------------------

    def _segment_name(self, gen: int, i: int) -> str:
        return f"aqshm_{self.token}_{gen}_{i}"

    def _relayout(self, n_leaves: int, max_depth: int, n_keys: int,
                  blob_len: int, tail_len: int) -> None:
        gen = self._layout_gen + 1
        lay = _Layout(n_leaves, max_depth, _headroom(n_keys),
                      _headroom(blob_len), _headroom(tail_len) + 512)
        bufs = [shared_memory.SharedMemory(
            name=self._segment_name(gen, i), create=True, size=lay.size)
            for i in (0, 1)]
        for shm in bufs:
            DATA_HEAD.pack_into(shm.buf, 0, 0, 0)
        old = self._bufs
        self._bufs = bufs
        self._layout = lay
        self._layout_gen = gen
        self._active = 1  # first publish after a relayout writes buffer 0
        deadline = time.monotonic() + self.grace
        self._retired.extend((deadline, shm) for shm in old)
        self.relayouts += 1

    def _write_epoch(self, shm, lay: _Layout, *, seq, leaf_gen, computed_at,
                     unknown, resolution, n_leaves, max_depth, n_keys,
                     values, matrix, depths, tail: bytes) -> None:
        buf = shm.buf
        (s,) = _U64.unpack_from(buf, 0)
        _U64.pack_into(buf, 0, s + 1)          # odd: epoch under construction
        DATA_META.pack_into(buf, DATA_META_AT, computed_at, unknown,
                            leaf_gen, n_leaves, max_depth, resolution,
                            n_keys, len(self._key_blob), len(tail),
                            self._key_epoch)
        _U64.pack_into(buf, 8, seq)
        if n_leaves:
            np.frombuffer(buf, dtype=_F8, count=n_leaves,
                          offset=lay.o_values)[:] = values
            np.frombuffer(buf, dtype=_F8, count=n_leaves * max_depth,
                          offset=lay.o_matrix)[:] = matrix.reshape(-1)
            np.frombuffer(buf, dtype=_U4, count=n_leaves,
                          offset=lay.o_depths)[:] = depths
        np.frombuffer(buf, dtype=_U4, count=n_keys + 1,
                      offset=lay.o_koff)[:] = self._key_offs[:n_keys + 1]
        if n_keys:
            np.frombuffer(buf, dtype=_U4, count=n_keys,
                          offset=lay.o_kid)[:] = self._key_ids
            buf[lay.o_blob:lay.o_blob + len(self._key_blob)] = self._key_blob
        buf[lay.o_tail:lay.o_tail + len(tail)] = tail
        _U64.pack_into(buf, 0, s + 2)          # even: epoch stable

    def _flip(self, new_active: int, seq: int) -> None:
        buf = self._ctl.buf
        (s, _, _) = CTL_HEAD.unpack_from(buf, 0)
        CTL_HEAD.pack_into(buf, 0, s + 1, self._layout_gen, seq)
        meta = json.dumps({
            "segments": [self._segment_name(self._layout_gen, i)
                         for i in (0, 1)],
            "caps": self._layout.caps(),
            "site": self.site,
        }, separators=(",", ":")).encode()
        CTL_META.pack_into(buf, CTL_META_AT, new_active, len(meta))
        buf[CTL_JSON_AT:CTL_JSON_AT + len(meta)] = meta
        CTL_HEAD.pack_into(buf, 0, s + 2, self._layout_gen, seq)
        self._active = new_active

    def _reap_retired(self, drain: bool = False) -> None:
        now = time.monotonic()
        keep = []
        for deadline, shm in self._retired:
            if drain or deadline <= now:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            else:
                keep.append((deadline, shm))
        self._retired = keep

    def close(self) -> None:
        """Unlink every segment this writer created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._reap_retired(drain=True)
        for shm in self._bufs:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._bufs = []
        self._ctl.close()
        try:
            self._ctl.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def __enter__(self) -> "ShmSnapshotWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------

class ShmEpochView:
    """Read surface over one published epoch (one data buffer).

    Mirrors the slice of :class:`FairshareSnapshot` the server touches —
    ``seq``/``epoch``/``horizons``/``lookup``/``vector``/``describe`` —
    plus the by-id accessors the binary protocol needs.  Scalar reads are
    validated with the buffer's seqlock; a racing republish surfaces as a
    retry inside :class:`ShmSnapshotReader`, never as a torn value.
    """

    __slots__ = ("_shm", "_lay", "seq", "computed_at", "unknown_user_value",
                 "leaf_gen", "n_leaves", "max_depth", "resolution",
                 "n_keys", "key_epoch", "_values", "_matrix", "_depths",
                 "_tail", "_keys", "_attached_wall")

    def __init__(self, shm: shared_memory.SharedMemory, lay: _Layout,
                 keys: "_KeyTable", tail: Dict[str, Any],
                 meta: Tuple[Any, ...], seq: int):
        self._shm = shm
        self._lay = lay
        (self.computed_at, self.unknown_user_value, self.leaf_gen,
         self.n_leaves, self.max_depth, self.resolution, self.n_keys,
         _blob_len, _tail_len, self.key_epoch) = meta
        self.seq = seq
        self._values = np.frombuffer(shm.buf, dtype=_F8,
                                     count=self.n_leaves,
                                     offset=lay.o_values) \
            if self.n_leaves else np.zeros(0, dtype=_F8)
        self._matrix = None
        self._depths = None
        self._tail = tail
        self._keys = keys
        self._attached_wall = time.time()

    # -- seqlock -------------------------------------------------------------

    def stamp(self) -> Optional[int]:
        """The buffer's seqlock if stable (even), else None."""
        (s,) = _U64.unpack_from(self._shm.buf, 0)
        return s if s % 2 == 0 else None

    def still(self, stamp: int) -> bool:
        (s,) = _U64.unpack_from(self._shm.buf, 0)
        return s == stamp

    # -- identity resolution --------------------------------------------------

    def resolve_leaf_id(self, identity: str) -> Optional[int]:
        """Leaf row for any resolvable identity (path, name, alias)."""
        return self._keys.cached_find(identity)

    def value_by_id(self, leaf_id: int) -> Optional[float]:
        if 0 <= leaf_id < self.n_leaves:
            return float(self._values[leaf_id])
        return None

    def values_for_ids(self, ids: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """(values, known) arrays for a batch of leaf rows."""
        if self.n_leaves == 0:
            n = len(ids)
            return (np.full(n, self.unknown_user_value),
                    np.zeros(n, dtype=bool))
        known = (ids >= 0) & (ids < self.n_leaves)
        values = np.where(known,
                          self._values[np.clip(ids, 0, self.n_leaves - 1)],
                          self.unknown_user_value)
        return values, known

    # -- snapshot-compatible query surface ------------------------------------

    def resolve_path(self, identity: str) -> Optional[str]:
        return identity if self.resolve_leaf_id(identity) is not None else None

    def lookup(self, identity: str) -> Tuple[float, bool]:
        row = self.resolve_leaf_id(identity)
        if row is None:
            return self.unknown_user_value, False
        return float(self._values[row]), True

    def resolve_leaf(self, identity: str) -> Tuple[float, bool, int]:
        """(value, known, leaf id) — the binary GET_FAIRSHARE triple."""
        row = self.resolve_leaf_id(identity)
        if row is None:
            return self.unknown_user_value, False, NO_LEAF_ID
        return float(self._values[row]), True, row

    def lookup_id(self, leaf_id: int) -> Optional[float]:
        return self.value_by_id(leaf_id)

    def vector_elements(self, leaf_id: int) -> Optional[List[float]]:
        if not (0 <= leaf_id < self.n_leaves):
            return None
        if self._matrix is None:
            lay = self._lay
            self._matrix = np.frombuffer(
                self._shm.buf, dtype=_F8,
                count=self.n_leaves * self.max_depth,
                offset=lay.o_matrix).reshape(self.n_leaves, self.max_depth)
            self._depths = np.frombuffer(self._shm.buf, dtype=_U4,
                                         count=self.n_leaves,
                                         offset=lay.o_depths)
        depth = int(self._depths[leaf_id])
        return self._matrix[leaf_id, :depth].tolist()

    def vector(self, identity: str):
        from ..core.vector import FairshareVector
        row = self.resolve_leaf_id(identity)
        if row is None:
            return None
        elems = self.vector_elements(row)
        if elems is None:
            return None
        return FairshareVector(elems, self.resolution)

    def vector_error_code(self, identity: str) -> str:
        # the shm key table only carries leaves; anything unresolved is
        # simply unknown here (internal-node classification needs the
        # in-process snapshot)
        from .protocol import ERR_UNKNOWN_USER
        return ERR_UNKNOWN_USER

    # -- metadata -------------------------------------------------------------

    @property
    def site(self) -> str:
        return self._tail.get("site", "")

    @property
    def epoch(self):
        epoch = self._tail.get("epoch")
        return tuple(epoch) if isinstance(epoch, list) else epoch

    @property
    def projection(self) -> str:
        return self._tail.get("projection", "")

    @property
    def horizons(self) -> Dict[str, float]:
        return self._tail.get("horizons", {})

    @property
    def identity_map(self) -> Dict[str, str]:
        return self._tail.get("identity_map", {})

    @property
    def irs_table(self) -> Dict[str, str]:
        return self._tail.get("irs", {})

    def now(self) -> float:
        """Estimated virtual time: publish-time clock + wall time since."""
        wall = self._tail.get("wall_now")
        clock = self._tail.get("clock_now", self.computed_at)
        if wall is None:
            return clock
        return clock + max(0.0, time.time() - wall)

    def age(self, now: float) -> float:
        return max(0.0, now - self.computed_at)

    def staleness(self, now: float) -> Dict[str, float]:
        return {origin: max(0.0, now - horizon)
                for origin, horizon in self.horizons.items()}

    def describe(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "seq": self.seq,
            "epoch": list(self.epoch) if isinstance(self.epoch, tuple)
            else self.epoch,
            "computed_at": self.computed_at,
            "projection": self.projection,
            "users": self.n_leaves,
            "origins": len(self.horizons),
        }


class _KeyTable:
    """Process-local copy of one key_epoch's sorted key table.

    The LRU in front of the binary search lives here (not on the per-
    publish epoch view) because the name -> row mapping only changes with
    the key epoch — hot keys stay dict-fast across value republishes.
    """

    __slots__ = ("offs", "ids", "blob", "n", "_cache")

    CACHE_SIZE = 65536

    def __init__(self, offs: np.ndarray, ids: np.ndarray, blob: bytes):
        self.offs = offs
        self.ids = ids
        self.blob = blob
        self.n = int(ids.shape[0])
        self._cache: "OrderedDict[str, int]" = OrderedDict()

    def cached_find(self, identity: str) -> Optional[int]:
        row = self._cache.get(identity)
        if row is not None:
            self._cache.move_to_end(identity)
            return row if row != -1 else None
        found = self.find(identity.encode("utf-8"))
        if len(self._cache) >= self.CACHE_SIZE:
            self._cache.popitem(last=False)
        self._cache[identity] = found if found is not None else -1
        return found

    def find(self, key: bytes) -> Optional[int]:
        lo, hi = 0, self.n
        offs, blob = self.offs, self.blob
        while lo < hi:
            mid = (lo + hi) // 2
            probe = blob[offs[mid]:offs[mid + 1]]
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                return int(self.ids[mid])
        return None


class ShmSnapshotReader:
    """Attach to a writer's plane and serve validated epoch views.

    One reader per worker process.  :meth:`view` returns the current
    :class:`ShmEpochView`, revalidating the control block (a 24-byte read)
    on every call and transparently re-attaching when the writer
    relayouts.  Scalar convenience methods (:meth:`lookup`, ...) wrap the
    view access in the seqlock retry loop.
    """

    MAX_RETRIES = 128

    def __init__(self, name: str):
        self._ctl = _attach(name)
        #: (seqlock value, decoded control tuple) — the control block only
        #: changes when the writer publishes, so an unchanged (even)
        #: seqlock value proves the cached decode is still exact and the
        #: per-request JSON parse can be skipped entirely
        self._ctl_cache: Optional[
            Tuple[int, Tuple[int, int, int, Dict[str, Any]]]] = None
        self._layout_gen = -1
        self._segs: List[shared_memory.SharedMemory] = []
        self._lay: Optional[_Layout] = None
        self._seg_names: List[str] = []
        #: segments from previous layouts whose numpy views may still be
        #: alive somewhere — closing them while a view exists raises
        #: BufferError, so they are closed opportunistically instead
        self._old_segs: List[shared_memory.SharedMemory] = []
        self._views: List[Optional[ShmEpochView]] = [None, None]
        self._key_tables: Dict[int, _KeyTable] = {}
        self.reattaches = 0
        self.retries = 0

    # -- control-plane tracking ----------------------------------------------

    @staticmethod
    def _contended(attempt: int) -> None:
        """Back off a contended seqlock read.

        A same-process writer descheduled mid-write leaves the seqlock odd
        until it gets the GIL back — a pure spin here would burn every
        retry without ever letting it finish.  Sleeping (even 0) releases
        the GIL / yields the core so the writer can complete.
        """
        if attempt >= 4:
            time.sleep(0.00005 * min(attempt, 64))

    def _read_control(self) -> Optional[Tuple[int, int, int, Dict[str, Any]]]:
        """(layout_gen, seq, active, meta) — seqlock-validated."""
        buf = self._ctl.buf
        for attempt in range(self.MAX_RETRIES):
            self._contended(attempt)
            s0, gen, seq = CTL_HEAD.unpack_from(buf, 0)
            if s0 == 0:
                return None  # nothing published yet
            if s0 % 2:
                continue
            cached = self._ctl_cache
            if cached is not None and cached[0] == s0:
                # only s0 is trusted from this (unvalidated) read; the
                # returned tuple is entirely the previously validated one
                return cached[1]
            active, meta_len = CTL_META.unpack_from(buf, CTL_META_AT)
            meta_raw = bytes(buf[CTL_JSON_AT:CTL_JSON_AT + meta_len])
            s1, _, _ = CTL_HEAD.unpack_from(buf, 0)
            if s1 != s0:
                self.retries += 1
                continue
            decoded = (gen, seq, active, json.loads(meta_raw))
            self._ctl_cache = (s0, decoded)
            return decoded
        raise RuntimeError("control block would not stabilize")

    def _sweep_old_segs(self) -> None:
        still_pinned = []
        for shm in self._old_segs:
            try:
                shm.close()
            except BufferError:
                still_pinned.append(shm)
        self._old_segs = still_pinned

    def _ensure_attached(self, gen: int, meta: Dict[str, Any]) -> None:
        if gen == self._layout_gen:
            return
        self._old_segs.extend(self._segs)
        self._views = [None, None]  # drop our own pins before sweeping
        self._sweep_old_segs()
        self._segs = [_attach(n) for n in meta["segments"]]
        self._lay = _Layout.from_caps(meta["caps"])
        self._layout_gen = gen
        self._seg_names = list(meta["segments"])
        self._views = [None, None]
        self._key_tables.clear()
        self.reattaches += 1

    def _build_view(self, idx: int, seq: int) -> Optional[ShmEpochView]:
        shm, lay = self._segs[idx], self._lay
        buf = shm.buf
        for attempt in range(self.MAX_RETRIES):
            self._contended(attempt)
            (s0,) = _U64.unpack_from(buf, 0)
            if s0 == 0 or s0 % 2:
                return None
            meta = DATA_META.unpack_from(buf, DATA_META_AT)
            (dseq,) = _U64.unpack_from(buf, 8)
            (_ca, _unk, _lg, _nl, _md, _res, n_keys, blob_len, tail_len,
             key_epoch) = meta
            keys = self._key_tables.get(key_epoch)
            if keys is None:
                offs = np.frombuffer(buf, dtype=_U4, count=n_keys + 1,
                                     offset=lay.o_koff).copy()
                ids = np.frombuffer(buf, dtype=_U4, count=n_keys,
                                    offset=lay.o_kid).copy() \
                    if n_keys else np.zeros(0, dtype=_U4)
                blob = bytes(buf[lay.o_blob:lay.o_blob + blob_len])
                keys = _KeyTable(offs, ids, blob)
            tail_raw = bytes(buf[lay.o_tail:lay.o_tail + tail_len])
            (s1,) = _U64.unpack_from(buf, 0)
            if s1 != s0:
                self.retries += 1
                continue
            # the copy is now known-consistent: safe to cache
            self._key_tables[key_epoch] = keys
            if len(self._key_tables) > 4:
                oldest = min(k for k in self._key_tables if k != key_epoch)
                self._key_tables.pop(oldest, None)
            tail = json.loads(tail_raw) if tail_raw else {}
            return ShmEpochView(shm, lay, keys, tail, meta, dseq)
        raise RuntimeError("data segment would not stabilize")

    def view(self) -> Optional[ShmEpochView]:
        """The current epoch view, or None before the first publish."""
        for attempt in range(self.MAX_RETRIES):
            self._contended(attempt)
            ctl = self._read_control()
            if ctl is None:
                return None
            gen, seq, active, meta = ctl
            try:
                self._ensure_attached(gen, meta)
            except FileNotFoundError:
                # raced a relayout past its grace period: control has
                # moved on, reread it
                self._layout_gen = -1
                self.retries += 1
                continue
            cached = self._views[active]
            if cached is not None and cached.seq == seq \
                    and cached.stamp() is not None:
                return cached
            view = self._build_view(active, seq)
            if view is None:
                self.retries += 1
                continue
            self._views[active] = view
            return view
        raise RuntimeError("snapshot plane would not stabilize")

    # -- validated scalar reads ----------------------------------------------

    def lookup(self, identity: str) -> Tuple[float, bool, Optional[ShmEpochView]]:
        """(value, known, view) with torn-read protection."""
        for attempt in range(self.MAX_RETRIES):
            self._contended(attempt)
            view = self.view()
            if view is None:
                return 0.5, False, None
            stamp = view.stamp()
            if stamp is None:
                self.retries += 1
                continue
            value, known = view.lookup(identity)
            if view.still(stamp):
                return value, known, view
            self.retries += 1
        raise RuntimeError("lookup would not stabilize")

    def close(self) -> None:
        self._old_segs.extend(self._segs)
        self._segs = []
        self._views = [None, None]
        self._sweep_old_segs()
        # anything still pinned by caller-held views must outlive us: if
        # its __del__ ran while the view was alive it would raise (and
        # noisily swallow) BufferError.  Park it for the process lifetime;
        # the OS reclaims the mapping at exit.
        _UNREAPED.extend(self._old_segs)
        self._old_segs = []
        self._ctl.close()

    def __enter__(self) -> "ShmSnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# backend adapter
# ---------------------------------------------------------------------------

class ShmBackend:
    """A :class:`~repro.serve.backend.SiteBackend`-shaped query surface
    over a shared-memory plane — what each worker process serves from.

    Reads come straight from the mapped arrays; usage reports go through
    the injected ``usage_sink`` (the worker's pipe to the parent), and
    identity resolution answers from the *published* IRS table (workers
    never query the IRS endpoint, so unknown system users stay unknown
    until the next publish refreshes the table).
    """

    def __init__(self, reader: ShmSnapshotReader, site: str = "",
                 registry=None, usage_sink=None,
                 refresh_interval: float = 30.0):
        from ..obs.registry import MetricsRegistry
        self.reader = reader
        self.site = site
        self.refresh_interval = refresh_interval
        self.registry = registry if registry is not None else MetricsRegistry(
            constant_labels={"site": site or "shm", "component": "worker"})
        self._usage_sink = usage_sink
        self.info_extra: Dict[str, Any] = {}

    @classmethod
    def attach(cls, name: str, **kwargs) -> "ShmBackend":
        return cls(ShmSnapshotReader(name), **kwargs)

    def now(self) -> float:
        view = self.reader.view()
        return view.now() if view is not None else 0.0

    # -- snapshot reads -------------------------------------------------------

    def snapshot(self) -> Optional[ShmEpochView]:
        return self.reader.view()

    def lookup_fairshare(self, identity: str, snapshot=None):
        if snapshot is not None:
            value, known = snapshot.lookup(identity)
            return value, known, snapshot
        return self.reader.lookup(identity)

    def vector(self, identity: str, snapshot=None):
        snap = snapshot if snapshot is not None else self.reader.view()
        if snap is None:
            return None
        return snap.vector(identity)

    # -- identity -------------------------------------------------------------

    def resolve_identity(self, system_user: str) -> Optional[str]:
        view = self.reader.view()
        if view is None:
            return None
        return view.irs_table.get(system_user)

    # -- usage ingress --------------------------------------------------------

    def report_usage(self, user: str, start: float, end: float,
                     cores: int = 1) -> bool:
        if self._usage_sink is None:
            return False
        return bool(self._usage_sink(user, float(start), float(end),
                                     int(cores)))

    # -- introspection --------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        view = self.reader.view()
        payload: Dict[str, Any] = {
            "site": self.site or (view.site if view is not None else ""),
            "refresh_interval": self.refresh_interval,
            "time": self.now(),
        }
        if view is not None:
            now = view.now()
            payload["snapshot"] = view.describe()
            payload["snapshot_age"] = view.age(now)
            age = view.age(now)
            if age <= self.refresh_interval:
                verdict = "fresh"
            elif age <= 3 * self.refresh_interval:
                verdict = "stale"
            else:
                verdict = "dead"
            payload["staleness"] = verdict
            if view.horizons:
                payload["usage_horizons"] = {
                    origin: {"horizon": horizon,
                             "staleness": max(0.0, now - horizon)}
                    for origin, horizon in sorted(view.horizons.items())}
        payload.update(self.info_extra)
        return payload
